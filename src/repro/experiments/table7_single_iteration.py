"""Table 7 — single-iteration performance on 8 datasets.

One generation (up to 15 error-correction attempts) per dataset/LLM for
CatDB and CatDB Chain, against CAAFE, AIDE, AutoGen, the four AutoML
tools, and the cleaning+AutoML workflow.  The AutoML time budget follows
the paper's protocol: the measured CatDB end-to-end runtime.  Reproduced
shapes: CatDB/Chain succeed everywhere; CAAFE-TabPFN OOMs on large data;
Auto-Sklearn OOMs on multi-table data and times out on CMC; workflow
cleaning helps but does not catch CatDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.cleaning import Learn2CleanLike
from repro.experiments.common import (
    LLM_PROFILES,
    format_table,
    grid_rows,
    metric_str,
    prepare_dataset,
    run_automl,
    run_catdb,
    run_grid,
    run_llm_baseline,
)
from repro.runner import JobGraph

__all__ = ["Table7Result", "run", "TABLE7_DATASETS"]

TABLE7_DATASETS = ("airline", "imdb", "accidents", "financial",
                   "cmc", "bike_sharing", "house_sales", "nyc")
_LLM_SYSTEMS = ("catdb", "catdb-chain", "caafe-tabpfn", "caafe-rforest",
                "aide", "autogen")
_AUTOML = ("autosklearn", "h2o", "flaml", "autogluon")


@dataclass
class Table7Result:
    rows: list[dict] = field(default_factory=list)

    def cell(self, dataset: str, llm: str | None, system: str) -> dict | None:
        for row in self.rows:
            if (row["dataset"], row["system"]) == (dataset, system) and (
                llm is None or row["llm"] == llm
            ):
                return row
        return None

    def render(self) -> str:
        headers = ["dataset", "llm"] + list(_LLM_SYSTEMS) + list(_AUTOML) + [
            f"clean+{t}" for t in _AUTOML
        ]
        table_rows = []
        datasets = list(dict.fromkeys(r["dataset"] for r in self.rows))
        llms = list(dict.fromkeys(r["llm"] for r in self.rows if r["llm"]))
        for dataset in datasets:
            for llm in llms:
                cells = [dataset, llm]
                for system in _LLM_SYSTEMS:
                    row = self.cell(dataset, llm, system)
                    cells.append(
                        metric_str(row["metric"], row["failure"]) if row else "-"
                    )
                for system in list(_AUTOML) + [f"clean+{t}" for t in _AUTOML]:
                    row = self.cell(dataset, None, system)
                    cells.append(
                        metric_str(row["metric"], row["failure"]) if row else "-"
                    )
                table_rows.append(cells)
        return format_table(headers, table_rows,
                            title="Table 7: single-iteration test metric")


def run(
    datasets: tuple[str, ...] = TABLE7_DATASETS,
    llms: tuple[str, ...] = LLM_PROFILES,
    max_fix_attempts: int = 15,
    quick: bool = True,
    seed: int = 0,
    workers: int | None = None,
    resume: bool = False,
    progress: bool = False,
) -> Table7Result:
    graph = JobGraph()
    catdb_cells: dict[str, list[str]] = {}
    for name in datasets:
        graph.add(
            f"prepare:{name}",
            lambda name=name: prepare_dataset(name, seed=seed, quick=quick),
            seed=seed,
        )
        catdb_cells[name] = []
        for llm in llms:
            for system in _LLM_SYSTEMS:
                if system in ("catdb", "catdb-chain"):

                    def catdb_cell(prepared, name=name, llm=llm,
                                   system=system):
                        report = run_catdb(
                            prepared, llm_name=llm,
                            beta=1 if system == "catdb" else 2,
                            max_fix_attempts=max_fix_attempts, seed=seed,
                        )
                        return {
                            "dataset": name, "llm": llm, "system": system,
                            "metric": report.primary_metric
                            if report.success else None,
                            "failure": "" if report.success else "N/A",
                            "tokens": report.total_tokens,
                            "seconds": report.end_to_end_seconds,
                        }

                    graph.add(
                        f"cell:{name}:{llm}:{system}", catdb_cell,
                        deps=(f"prepare:{name}",),
                        config={"dataset": name, "llm": llm,
                                "system": system, "seed": seed,
                                "quick": quick},
                        seed=seed,
                    )
                    catdb_cells[name].append(f"cell:{name}:{llm}:{system}")
                else:

                    def baseline_cell(prepared, name=name, llm=llm,
                                      system=system):
                        baseline = run_llm_baseline(prepared, system,
                                                    llm_name=llm, seed=seed)
                        return {
                            "dataset": name, "llm": llm, "system": system,
                            "metric": baseline.primary_metric
                            if baseline.success else None,
                            "failure": "" if baseline.success
                            else _short(baseline.failure_reason),
                            "tokens": baseline.total_tokens,
                            "seconds": baseline.end_to_end_seconds,
                        }

                    graph.add(
                        f"cell:{name}:{llm}:{system}", baseline_cell,
                        deps=(f"prepare:{name}",),
                        config={"dataset": name, "llm": llm,
                                "system": system, "seed": seed,
                                "quick": quick},
                        seed=seed,
                    )

        # AutoML tools run once per dataset, budgeted by CatDB's runtime
        # (capped so the quick-mode suite stays fast on one core); the
        # budget node fans in from every catdb/chain cell of the dataset.
        def budget_node(*rows):
            catdb_runtime = max(
                (row["seconds"] for row in rows), default=0.0
            )
            return max(3.0, min(5.0, catdb_runtime))

        graph.add(f"budget:{name}", budget_node,
                  deps=tuple(catdb_cells[name]), seed=seed)

        def clean_node(prepared):
            return Learn2CleanLike(seed=seed).clean(
                prepared.train, prepared.target, prepared.task_type
            )

        graph.add(f"clean:{name}", clean_node, deps=(f"prepare:{name}",),
                  seed=seed)

        for tool in _AUTOML:

            def automl_cell(prepared, budget, name=name, tool=tool):
                report = run_automl(prepared, tool,
                                    time_budget_seconds=budget, seed=seed)
                return {
                    "dataset": name, "llm": "", "system": tool,
                    "metric": report.primary_metric
                    if report.success else None,
                    "failure": "" if report.success
                    else _short(report.failure_reason),
                    "tokens": 0, "seconds": report.end_to_end_seconds,
                }

            graph.add(
                f"cell:{name}:{tool}", automl_cell,
                deps=(f"prepare:{name}", f"budget:{name}"),
                config={"dataset": name, "system": tool, "seed": seed,
                        "quick": quick},
                seed=seed,
            )

        for tool in _AUTOML:

            def clean_cell(prepared, budget, clean, name=name, tool=tool):
                if not clean.success or clean.cleaned is None:
                    return {
                        "dataset": name, "llm": "",
                        "system": f"clean+{tool}", "metric": None,
                        "failure": "N/A", "tokens": 0, "seconds": 0.0,
                    }
                report = run_automl(
                    prepared, tool, time_budget_seconds=budget, seed=seed,
                    train=clean.cleaned, test=prepared.test,
                )
                return {
                    "dataset": name, "llm": "", "system": f"clean+{tool}",
                    "metric": report.primary_metric
                    if report.success else None,
                    "failure": "" if report.success
                    else _short(report.failure_reason),
                    "tokens": 0,
                    "seconds":
                        report.end_to_end_seconds + clean.runtime_seconds,
                }

            graph.add(
                f"cell:{name}:clean+{tool}", clean_cell,
                deps=(f"prepare:{name}", f"budget:{name}", f"clean:{name}"),
                config={"dataset": name, "system": f"clean+{tool}",
                        "seed": seed, "quick": quick},
                seed=seed,
            )

    results = run_grid(graph, workers=workers, resume=resume,
                       progress=progress, label="table7")
    result = Table7Result()
    result.rows = grid_rows(graph, results, fallback=lambda config, res: {
        "dataset": config["dataset"], "llm": config.get("llm", ""),
        "system": config["system"], "metric": None, "failure": "N/A",
        "tokens": 0, "seconds": 0.0,
    })
    return result


def _short(reason: str) -> str:
    if reason.startswith("OOM"):
        return "OOM"
    if reason.startswith("TO"):
        return "TO"
    return "N/A"
