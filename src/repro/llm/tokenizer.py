"""Token counting for the cost model (Section 4.1, Equations 1-2).

A deterministic approximation of BPE token counts: words, numbers,
punctuation runs, and a sub-word penalty for long words (BPE splits long
rare words into multiple tokens).  Exactness does not matter — relative
comparisons between systems and prompt variants do.
"""

from __future__ import annotations

import re

__all__ = ["count_tokens"]

_TOKEN_RE = re.compile(r"[A-Za-z]+|\d+|[^\sA-Za-z\d]")
_SUBWORD_LENGTH = 6  # avg characters per BPE piece inside a long word


def count_tokens(text: str) -> int:
    """Approximate LLM token count of ``text``."""
    if not text:
        return 0
    total = 0
    for token in _TOKEN_RE.findall(text):
        if token.isalpha() and len(token) > _SUBWORD_LENGTH:
            total += -(-len(token) // _SUBWORD_LENGTH)  # ceil division
        elif token.isdigit() and len(token) > 3:
            total += -(-len(token) // 3)
        else:
            total += 1
    return total
