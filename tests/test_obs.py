"""Tests for the observability subsystem: tracer, metrics, ledger, sessions.

Covers span nesting (including under ProfilerExecutor thread workers),
metrics counter atomicity, ledger round-trips (write -> list -> show ->
diff), the no-op tracer's overhead bound, and the traced CLI path end to
end.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.catalog.profiler import profile_table
from repro.cli import main
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    default_ledger_path,
    render_diff,
    render_record,
    render_records_table,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    metric_key,
    set_metrics,
)
from repro.obs.session import (
    active_session,
    disable_tracing,
    enable_tracing,
    run_session,
    tracing_enabled,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    aggregate_spans,
    get_tracer,
    render_span_tree,
    set_tracer,
    traced,
)
from repro.table.table import Table


@pytest.fixture
def tracer():
    """Install a live tracer for the test, restoring the previous one."""
    t = Tracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


@pytest.fixture
def registry():
    r = MetricsRegistry()
    previous = set_metrics(r)
    yield r
    set_metrics(previous)


class TestSpans:
    def test_nesting_builds_parent_links(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_attributes_at_open_and_late(self, tracer):
        with tracer.span("s", rows=10) as s:
            s.set(cols=3)
        assert s.attributes == {"rows": 10, "cols": 3}

    def test_durations_recorded(self, tracer):
        with tracer.span("s"):
            time.sleep(0.01)
        assert tracer.spans[0].duration_seconds >= 0.01

    def test_exception_marks_error_and_type(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad")
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.attributes["error_type"] == "ValueError"

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].parent_id == parent.span_id
        assert by_name["b"].parent_id == parent.span_id

    def test_null_tracer_is_free_of_state(self):
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")
        assert NULL_TRACER.to_dicts() == []
        assert not NULL_TRACER.enabled

    def test_traced_decorator_only_wraps_when_enabled(self, tracer):
        calls = []

        @traced("fn.call", lambda x: {"x": x})
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        assert tracer.spans[0].name == "fn.call"
        assert tracer.spans[0].attributes == {"x": 3}

        set_tracer(NULL_TRACER)
        assert fn(4) == 8  # no new span, no attrs_fn evaluation errors
        assert len(tracer.spans) == 1


class TestThreadedSpans:
    def test_attach_roots_worker_spans_under_parent(self, tracer):
        with tracer.span("submit") as parent:
            captured = tracer.current()

            def work(i):
                with tracer.attach(captured):
                    with tracer.span("item", i=i):
                        pass

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        items = [s for s in tracer.spans if s.name == "item"]
        assert len(items) == 4
        assert all(s.parent_id == parent.span_id for s in items)

    def test_profile_table_worker_spans_parent_correctly(self, tracer):
        """ProfilerExecutor workers attach per-column spans to the
        submitting thread's profile.columns span."""
        n = 200
        data = {f"c{i}": list(range(n)) for i in range(6)}
        data["label"] = ["a", "b"] * (n // 2)
        table = Table.from_dict(data, name="threaded")
        profile_table(table, target="label", task_type="binary", workers=4)

        by_name: dict[str, list] = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        columns_span = by_name["profile.columns"][0]
        column_spans = by_name["profile.column"]
        assert len(column_spans) == len(data)
        assert all(
            s.parent_id == columns_span.span_id for s in column_spans
        )


class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
        assert metric_key("m", {}) == "m"

    def test_counters_gauges_histograms(self, registry):
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.gauge("depth", 7)
        registry.observe("latency", 1.0)
        registry.observe("latency", 3.0)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 3
        assert snap["gauges"]["depth"] == 7
        assert snap["histograms"]["latency"]["count"] == 2
        assert snap["histograms"]["latency"]["mean"] == 2.0
        assert snap["histograms"]["latency"]["min"] == 1.0
        assert snap["histograms"]["latency"]["max"] == 3.0

    def test_counter_atomicity_under_threads(self, registry):
        n_threads, n_incs = 8, 1000

        def bump():
            for _ in range(n_incs):
                registry.inc("atomic", type="x")

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert registry.counter_value("atomic", type="x") == n_threads * n_incs

    def test_null_metrics_records_nothing(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.gauge("y", 1)
        NULL_METRICS.observe("z", 1)
        snap = NULL_METRICS.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestLedger:
    def _record(self, run_id, seconds=1.0, tokens=100, **outcome):
        return RunRecord(
            run_id=run_id,
            kind="catdb",
            created_at="2026-01-01T00:00:00Z",
            dataset="wifi",
            llm="gpt-4o",
            config={"beta": 1},
            outcome=outcome,
            metrics={"counters": {
                "llm.tokens_prompt": tokens, "llm.tokens_completion": 0,
            }},
            spans=[
                {"name": "run.catdb", "span_id": 1, "parent_id": None,
                 "attributes": {}, "duration_seconds": seconds,
                 "status": "ok"},
                {"name": "llm.call", "span_id": 2, "parent_id": 1,
                 "attributes": {"prompt_tokens": tokens,
                                "completion_tokens": 0},
                 "duration_seconds": seconds / 2, "status": "ok"},
            ],
        )

    def test_round_trip_write_list_show_diff(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._record("aaaa111111", seconds=1.0, tokens=100))
        ledger.append(self._record("bbbb222222", seconds=2.0, tokens=150))

        records = ledger.records()
        assert [r.run_id for r in records] == ["aaaa111111", "bbbb222222"]
        assert records[0].wall_seconds == 1.0
        assert records[0].total_tokens == 100

        listing = render_records_table(records)
        assert "aaaa111111" in listing and "bbbb222222" in listing

        shown = render_record(ledger.get("aaaa"))  # unique prefix
        assert "run aaaa111111" in shown
        assert "llm.call" in shown

        diff = ledger.diff("aaaa", "bbbb")
        rows = {r["phase"]: r for r in diff.phase_rows()}
        assert rows["run.catdb"]["delta_seconds"] == pytest.approx(1.0)
        assert rows["llm.call"]["delta_tokens"] == 50
        rendered = render_diff(diff)
        assert "per-phase wall time and tokens" in rendered
        assert "+50" in rendered

    def test_get_unknown_and_ambiguous(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._record("abc1111111"))
        ledger.append(self._record("abc2222222"))
        with pytest.raises(KeyError):
            ledger.get("zzz")
        with pytest.raises(KeyError):
            ledger.get("abc")  # ambiguous prefix
        assert ledger.get("abc1").run_id == "abc1111111"

    def test_dir_and_file_paths_agree(self, tmp_path):
        assert RunLedger(tmp_path).path == tmp_path / "ledger.jsonl"
        explicit = RunLedger(tmp_path / "other.jsonl")
        assert explicit.path == tmp_path / "other.jsonl"

    def test_default_path_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "obs"))
        assert default_ledger_path() == tmp_path / "obs" / "ledger.jsonl"

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self._record("aaaa111111"))
        lines = ledger.path.read_text().strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["run_id"] == "aaaa111111"


class TestRunSession:
    def test_disabled_by_default_yields_none(self):
        assert not tracing_enabled()
        with run_session("catdb", dataset="wifi") as session:
            assert session is None

    def test_enabled_records_to_ledger(self, tmp_path):
        enable_tracing(tmp_path)
        try:
            with run_session("catdb", dataset="wifi", llm="gpt-4o",
                             config={"beta": 1}) as session:
                assert session is active_session()
                with get_tracer().span("llm.call", prompt_tokens=10):
                    pass
                get_metrics().inc("llm.calls")
                session.outcome["success"] = True
        finally:
            disable_tracing()
        assert isinstance(get_tracer(), NullTracer)
        assert isinstance(get_metrics(), NullMetrics)
        record = session.record
        assert record is not None
        assert record.outcome["success"] is True
        assert record.metrics["counters"]["llm.calls"] == 1
        names = {s["name"] for s in record.spans}
        assert names == {"run.catdb", "llm.call"}
        assert RunLedger(tmp_path).get(record.run_id).dataset == "wifi"

    def test_nested_sessions_share_one_record(self, tmp_path):
        enable_tracing(tmp_path)
        try:
            with run_session("generate", dataset="wifi") as outer:
                with run_session("catdb", dataset="wifi") as inner:
                    assert inner is outer
        finally:
            disable_tracing()
        assert len(RunLedger(tmp_path).records()) == 1

    def test_env_variable_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert tracing_enabled()
        with run_session("catdb", dataset="wifi") as session:
            assert session is not None
        assert len(RunLedger(tmp_path).records()) == 1

    def test_concurrent_sessions_emit_disjoint_records(self, tmp_path):
        """Two threads, two sessions, two disjoint span trees.

        Session/tracer/metrics tracking is contextvars-based; with the
        old module-global tracking, the second thread would nest into
        the first session and the ledger would get one conflated record.
        """
        enable_tracing(tmp_path)
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def observed_run(name: str) -> None:
            try:
                with run_session("catdb", dataset=name) as session:
                    barrier.wait(timeout=10)  # both sessions open at once
                    assert active_session() is session
                    with get_tracer().span(f"work.{name}"):
                        get_metrics().inc("llm.calls")
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=observed_run, args=(name,))
                   for name in ("alpha", "beta")]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        finally:
            disable_tracing()
        assert not errors
        records = RunLedger(tmp_path).records()
        assert sorted(r.dataset for r in records) == ["alpha", "beta"]
        by_dataset = {r.dataset: r for r in records}
        for name in ("alpha", "beta"):
            record = by_dataset[name]
            assert {s["name"] for s in record.spans} == {
                "run.catdb", f"work.{name}"
            }
            assert record.metrics["counters"]["llm.calls"] == 1
            roots = [s for s in record.spans if s["parent_id"] is None]
            assert len(roots) == 1  # its own tree, not a shared one
        # disjoint trees: neither session saw the other's work span
        assert not any(s["name"] == "work.beta"
                       for s in by_dataset["alpha"].spans)
        assert not any(s["name"] == "work.alpha"
                       for s in by_dataset["beta"].spans)


class TestOverhead:
    def test_null_tracer_overhead_under_5_percent(
        self, small_classification_table
    ):
        """The disabled tracer's per-span cost, scaled to the span count a
        traced profile_table produces, must stay below 5% of the profiling
        call itself (deterministic proxy for enabled-vs-disabled timing)."""
        table = small_classification_table
        # Count the spans a traced run emits.
        probe = Tracer()
        previous = set_tracer(probe)
        try:
            profile_table(table, target="label", task_type="binary")
        finally:
            set_tracer(previous)
        n_spans = len(probe.spans)
        assert n_spans > 0

        baseline = min(
            _timed(lambda: profile_table(
                table, target="label", task_type="binary"
            ))
            for _ in range(3)
        )
        null_cost = min(
            _timed(lambda: _null_spans(n_spans)) for _ in range(3)
        )
        assert null_cost < 0.05 * baseline, (
            f"{n_spans} null spans cost {null_cost:.6f}s vs "
            f"profile baseline {baseline:.6f}s"
        )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _null_spans(n):
    tracer = NULL_TRACER
    for i in range(n):
        with tracer.span("x", i=i) as s:
            s.set(done=True)


class TestCLI:
    def test_generate_trace_writes_acceptance_record(self, tmp_path, capsys):
        """Acceptance: a traced generate run persists profile, prompt,
        llm-call, validate, and execute spans with token attributes."""
        rc = main([
            "generate", "wifi", "--rows", "120",
            "--trace", "--runs-dir", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace: run" in out

        records = RunLedger(tmp_path).records()
        assert len(records) == 1
        names = {s["name"] for s in records[0].spans}
        assert {"run.generate", "profile.table", "prompt.build",
                "llm.call", "generate.validate",
                "execute.pipeline"} <= names
        llm_spans = [s for s in records[0].spans if s["name"] == "llm.call"]
        assert llm_spans[0]["attributes"]["prompt_tokens"] > 0
        execs = [
            s for s in records[0].spans if s["name"] == "execute.pipeline"
        ]
        assert all("success" in s["attributes"] for s in execs)
        assert records[0].total_tokens > 0

    def test_runs_list_show_diff(self, tmp_path, capsys):
        for seed in ("0", "3"):
            assert main([
                "generate", "wifi", "--rows", "120", "--seed", seed,
                "--trace", "--runs-dir", str(tmp_path),
            ]) == 0
        capsys.readouterr()

        assert main(["runs", "list", "--dir", str(tmp_path)]) == 0
        listing = capsys.readouterr().out
        assert "2 recorded run(s)" in listing

        records = RunLedger(tmp_path).records()
        a, b = records[0].run_id, records[1].run_id
        assert main(["runs", "show", a, "--dir", str(tmp_path)]) == 0
        shown = capsys.readouterr().out
        assert f"run {a}" in shown and "span tree" in shown

        assert main(["runs", "diff", a, b, "--dir", str(tmp_path)]) == 0
        diffed = capsys.readouterr().out
        assert "per-phase wall time and tokens" in diffed
        assert "llm.call" in diffed

    def test_runs_show_unknown_id_fails(self, tmp_path, capsys):
        assert main(["runs", "show", "nope", "--dir", str(tmp_path)]) == 1
        assert "no run" in capsys.readouterr().err

    def test_untraced_generate_leaves_no_ledger(self, tmp_path, monkeypatch,
                                                capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["generate", "wifi", "--rows", "120"]) == 0
        assert not (tmp_path / "ledger.jsonl").exists()


class TestRendering:
    def test_aggregate_spans_counts_and_tokens(self):
        spans = [
            {"name": "llm.call", "span_id": 1, "parent_id": None,
             "duration_seconds": 0.5,
             "attributes": {"prompt_tokens": 40, "completion_tokens": 10}},
            {"name": "llm.call", "span_id": 2, "parent_id": None,
             "duration_seconds": 0.25, "attributes": {"prompt_tokens": 50}},
        ]
        agg = aggregate_spans(spans)
        assert agg["llm.call"]["count"] == 2
        assert agg["llm.call"]["seconds"] == pytest.approx(0.75)
        assert agg["llm.call"]["tokens"] == 100

    def test_render_span_tree_collapses_siblings(self):
        spans = [{"name": "root", "span_id": 0, "parent_id": None,
                  "duration_seconds": 1.0, "attributes": {}}]
        spans += [
            {"name": "profile.column", "span_id": i, "parent_id": 0,
             "duration_seconds": 0.01, "attributes": {}}
            for i in range(1, 7)
        ]
        tree = render_span_tree(spans)
        assert "profile.column x6" in tree
        assert tree.count("profile.column") == 1
