"""Figure 9 — profiling runtime and data type distribution (all 20 datasets)."""

from benchmarks.conftest import QUICK, save_result
from repro.experiments import fig9_profiling


def test_fig09_profiling(benchmark):
    result = benchmark.pedantic(
        lambda: fig9_profiling.run(quick=QUICK), rounds=1, iterations=1
    )
    save_result("fig09_profiling", result.render())

    seconds = result.profiling_seconds()
    assert len(seconds) == 20
    # shape: large datasets profile slower than the smallest dataset
    assert seconds["kdd98"] > seconds["wifi"]
    assert seconds["volkert"] > seconds["wifi"]
    # shape: a healthy mix of numerical and categorical features overall
    types = result.type_distribution()
    total_numerical = sum(t.get("Numerical", 0) for t in types.values())
    total_categorical = sum(t.get("Categorical", 0) for t in types.values())
    assert total_numerical > 0 and total_categorical > 0


def test_fig09_profiling_parallel(benchmark):
    """Same experiment on the worker pool; types must match sequential."""
    result = benchmark.pedantic(
        lambda: fig9_profiling.run(quick=QUICK, workers=4), rounds=1, iterations=1
    )
    save_result("fig09_profiling_parallel", result.render())

    assert len(result.profiling_seconds()) == 20
    sequential = fig9_profiling.run(quick=QUICK)
    assert result.type_distribution() == sequential.type_distribution()
