"""Shared experiment plumbing: dataset preparation, system runners,
grid scheduling, and paper-style table rendering.

Grid-shaped drivers (dataset x system x LLM cells) build a
:class:`~repro.runner.job.JobGraph` and hand it to :func:`run_grid`,
which executes it on the parallel experiment scheduler
(``workers``/``REPRO_EXPERIMENT_WORKERS``) with per-cell failure
isolation and ledger-backed resume; rows come back in cell-definition
order regardless of completion order, so rendered tables are identical
at any worker count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.baselines.aide import AIDEBaseline
from repro.baselines.autogen import AutoGenBaseline
from repro.baselines.automl import AutoGluonLike, AutoSklearnLike, FlamlLike, H2OLike
from repro.baselines.base import BaselineReport
from repro.baselines.caafe import CAAFEBaseline
from repro.catalog.catalog import DataCatalog
from repro.datasets.registry import DatasetBundle, load_dataset
from repro.generation.generator import CatDB, CatDBChain, GenerationReport
from repro.llm import build_client
from repro.obs.session import configured_ledger_path, run_session, tracing_enabled
from repro.resilience.breaker import CircuitBreaker
from repro.runner import JobGraph, JobResult, Scheduler
from repro.ml.model_selection import train_test_split
from repro.table.table import Table

__all__ = [
    "PreparedDataset",
    "prepare_dataset",
    "run_catdb",
    "run_llm_baseline",
    "run_automl",
    "run_grid",
    "grid_rows",
    "AUTOML_TOOLS",
    "LLM_PROFILES",
    "format_table",
    "metric_str",
]

LLM_PROFILES = ("gpt-4o", "gemini-1.5", "llama3.1-70b")

AUTOML_TOOLS = {
    "h2o": H2OLike,
    "flaml": FlamlLike,
    "autogluon": AutoGluonLike,
    "autosklearn": AutoSklearnLike,
}

# dataset-size overrides used in quick mode (benchmark suite)
_QUICK_SIZES = {
    "imdb": 800, "kdd98": 500, "walking": 800, "accidents": 700,
    "financial": 700, "airline": 600, "gas_drift": 600, "volkert": 700,
    "yelp": 600, "bike_sharing": 800, "nyc": 800, "house_sales": 800,
    "survey": 700, "eu_it": 700, "cmc": 700, "diabetes": 500,
    "utility": 700, "etailing": 439, "tictactoe": 600, "wifi": 98,
}


@dataclass
class PreparedDataset:
    """A loaded, split, and profiled dataset ready for any system."""

    bundle: DatasetBundle
    train: Table
    test: Table
    catalog: DataCatalog

    @property
    def name(self) -> str:
        return self.bundle.name

    @property
    def target(self) -> str:
        return self.bundle.target

    @property
    def task_type(self) -> str:
        return self.bundle.task_type

    @property
    def meta(self) -> dict[str, Any]:
        spec = self.bundle.spec
        return {
            "paper_cells": spec.paper_rows * spec.paper_cols,
            "paper_rows": spec.paper_rows,
            "paper_cols": spec.paper_cols,
        }


def _streaming_defaults() -> tuple[bool, int | None]:
    """Env-configured streaming knobs for ``prepare:`` nodes.

    ``REPRO_PROFILE_STREAMING=1`` switches every experiment's profiling
    step to the sketch-based streaming path; ``REPRO_PROFILE_CHUNK_ROWS``
    overrides the chunk size.  Same seed + same chunk size produce an
    identical catalog at any worker count, so flipping these is safe for
    ledger-resumed grids.
    """
    streaming = os.environ.get("REPRO_PROFILE_STREAMING", "").strip().lower()
    chunk_env = os.environ.get("REPRO_PROFILE_CHUNK_ROWS", "").strip()
    chunk_rows = int(chunk_env) if chunk_env else None
    return streaming in {"1", "true", "yes", "on"}, chunk_rows


def prepare_dataset(
    name: str,
    seed: int = 0,
    quick: bool = True,
    test_size: float = 0.3,
    streaming: bool | None = None,
    chunk_rows: int | None = None,
    **overrides: Any,
) -> PreparedDataset:
    """Load, 70/30-split, and profile one dataset.

    ``streaming``/``chunk_rows`` default from ``REPRO_PROFILE_STREAMING``
    and ``REPRO_PROFILE_CHUNK_ROWS`` so grid drivers inherit the
    streaming profiler without threading new parameters through every
    ``prepare:`` node.
    """
    env_streaming, env_chunk_rows = _streaming_defaults()
    if streaming is None:
        streaming = env_streaming
    if chunk_rows is None:
        chunk_rows = env_chunk_rows
    if quick and name in _QUICK_SIZES and "n" not in overrides:
        overrides["n"] = _QUICK_SIZES[name]
    bundle = load_dataset(name, seed=seed, **overrides)
    unified = bundle.unified
    if bundle.task_type == "regression":
        train, test = train_test_split(
            unified, test_size=test_size, random_state=seed
        )
    else:
        labels = [str(v) for v in unified[bundle.target]]
        train, test = train_test_split(
            unified, test_size=test_size, random_state=seed, stratify=labels
        )
    catalog = bundle.profile(
        seed=seed, streaming=streaming, chunk_rows=chunk_rows
    )
    return PreparedDataset(bundle=bundle, train=train, test=test, catalog=catalog)


def run_catdb(
    prepared: PreparedDataset,
    llm_name: str = "gpt-4o",
    beta: int = 1,
    alpha: int | None = None,
    combination: int = 11,
    iteration: int = 0,
    seed: int = 0,
    max_fix_attempts: int = 5,
    fault_injection: bool = True,
    catalog: DataCatalog | None = None,
    train: Table | None = None,
    test: Table | None = None,
    fault_rate: float = 0.0,
    max_retries: int | None = None,
    llm_timeout: float | None = None,
    exec_timeout: float | None = None,
    exec_mode: str | None = None,
    exec_memory_mb: int | None = None,
    retry_base_delay: float = 0.05,
    breaker: CircuitBreaker | None = None,
) -> GenerationReport:
    """Run CatDB (beta=1) or CatDB Chain (beta>1) on a prepared dataset.

    When tracing is enabled (``repro --trace`` / ``REPRO_TRACE=1``), each
    call records one run-ledger entry with the full span tree, so every
    figure/table experiment leaves an audit trail of where its time and
    tokens went.

    The resilience knobs (``fault_rate``, ``max_retries``, ``llm_timeout``,
    ``exec_timeout``, ``breaker``) assemble the
    FlakyLLM/ResilientLLM transport stack and the executor's wall-clock
    budget; ``exec_mode="pool"`` moves pipeline execution into isolated
    subprocess workers (``exec_memory_mb`` caps each one's address
    space).  All defaults leave the legacy bit-identical MockLLM path.
    """
    llm = build_client(
        llm_name, seed=seed, fault_injection=fault_injection,
        fault_rate=fault_rate, max_retries=max_retries,
        llm_timeout=llm_timeout, retry_base_delay=retry_base_delay,
        breaker=breaker,
    )
    if beta <= 1:
        generator: CatDB = CatDB(
            llm, alpha=alpha, combination=combination,
            max_fix_attempts=max_fix_attempts,
            exec_timeout_seconds=exec_timeout,
            exec_mode=exec_mode, exec_memory_mb=exec_memory_mb,
        )
    else:
        generator = CatDBChain(
            llm, beta=beta, alpha=alpha, combination=combination,
            max_fix_attempts=max_fix_attempts,
            exec_timeout_seconds=exec_timeout,
            exec_mode=exec_mode, exec_memory_mb=exec_memory_mb,
        )
    with run_session(
        "catdb", dataset=prepared.name, llm=llm_name,
        config={
            "beta": beta, "alpha": alpha, "combination": combination,
            "iteration": iteration, "seed": seed,
            "max_fix_attempts": max_fix_attempts,
            "fault_injection": fault_injection,
            "fault_rate": fault_rate, "max_retries": max_retries,
            "llm_timeout": llm_timeout, "exec_timeout": exec_timeout,
            "exec_mode": exec_mode,
        },
    ) as session:
        report = generator.generate(
            train if train is not None else prepared.train,
            test if test is not None else prepared.test,
            catalog if catalog is not None else prepared.catalog,
            iteration=iteration,
        )
        if session is not None:
            session.outcome.update(
                success=report.success,
                variant=report.variant,
                primary_metric=report.primary_metric,
                total_tokens=report.total_tokens,
                fix_attempts=report.fix_attempts,
                fallback_used=report.fallback_used,
                degraded=report.degraded,
                end_to_end_seconds=round(report.end_to_end_seconds, 4),
            )
    return report


def run_llm_baseline(
    prepared: PreparedDataset,
    system: str,
    llm_name: str = "gpt-4o",
    seed: int = 0,
    train: Table | None = None,
    test: Table | None = None,
) -> BaselineReport:
    """Run one of the LLM-based comparators: 'caafe-tabpfn',
    'caafe-rforest', 'aide', 'autogen'."""
    llm = build_client(llm_name, seed=seed)
    description = prepared.bundle.spec.description
    if system == "caafe-tabpfn":
        runner: Any = CAAFEBaseline(llm, model="tabpfn", seed=seed)
    elif system == "caafe-rforest":
        runner = CAAFEBaseline(llm, model="rforest", seed=seed)
    elif system == "aide":
        runner = AIDEBaseline(llm, description=description, seed=seed)
    elif system == "autogen":
        runner = AutoGenBaseline(llm, description=description, seed=seed)
    else:
        raise ValueError(f"unknown LLM baseline {system!r}")
    with run_session(
        "baseline", dataset=prepared.name, llm=llm_name,
        config={"system": system, "seed": seed},
    ) as session:
        report = runner.run(
            train if train is not None else prepared.train,
            test if test is not None else prepared.test,
            prepared.target,
            prepared.task_type,
            meta=prepared.meta,
        )
        if session is not None:
            session.outcome.update(
                success=report.success,
                system=report.system,
                primary_metric=report.primary_metric,
                total_tokens=report.total_tokens,
            )
    return report


def run_automl(
    prepared: PreparedDataset,
    tool: str,
    time_budget_seconds: float = 8.0,
    seed: int = 0,
    train: Table | None = None,
    test: Table | None = None,
) -> BaselineReport:
    """Run one mini-AutoML tool: 'h2o', 'flaml', 'autogluon', 'autosklearn'."""
    if tool not in AUTOML_TOOLS:
        raise ValueError(f"unknown AutoML tool {tool!r}; have {sorted(AUTOML_TOOLS)}")
    runner = AUTOML_TOOLS[tool](time_budget_seconds=time_budget_seconds, seed=seed)
    with run_session(
        "automl", dataset=prepared.name,
        config={"tool": tool, "time_budget_seconds": time_budget_seconds,
                "seed": seed},
    ) as session:
        report = runner.run(
            train if train is not None else prepared.train,
            test if test is not None else prepared.test,
            prepared.target,
            prepared.task_type,
            meta=prepared.meta,
        )
        if session is not None:
            session.outcome.update(
                success=report.success,
                system=report.system,
                primary_metric=report.primary_metric,
            )
    return report


def run_grid(
    graph: JobGraph,
    workers: int | None = None,
    resume: bool = False,
    ledger_path: Any = None,
    progress: bool = False,
    label: str = "grid",
) -> dict[str, JobResult]:
    """Execute one experiment grid on the parallel scheduler.

    ``workers=None`` consults ``REPRO_EXPERIMENT_WORKERS`` and defaults
    to sequential; ``workers=1`` and ``workers=N`` are bit-identical by
    the scheduler's determinism contract.  A ledger is attached whenever
    one is configured (``--trace``) or resume is requested, so every
    cell leaves a ``runner.cell`` record that a later ``--resume`` run
    can restore instead of re-executing.
    """
    if ledger_path is None and (resume or tracing_enabled()):
        ledger_path = configured_ledger_path()
    scheduler = Scheduler(
        workers=workers, ledger_path=ledger_path, resume=resume,
        progress=progress, label=label,
    )
    return scheduler.run(graph)


def grid_rows(
    graph: JobGraph,
    results: dict[str, JobResult],
    fallback: Callable[[dict[str, Any], JobResult], Any] | None = None,
) -> list[Any]:
    """Collect cell values in cell-definition order (never completion
    order), flattening list-valued cells.

    A failed/skipped cell is rendered through ``fallback(config,
    result)`` — the driver's "recorded failure row" — or dropped when no
    fallback is given.
    """
    rows: list[Any] = []
    for job in graph.cells():
        result = results[job.job_id]
        if result.ok:
            value = result.value
        elif fallback is not None:
            value = fallback(dict(job.config or {}), result)
        else:
            value = None
        if value is None:
            continue
        if isinstance(value, list):
            rows.extend(value)
        else:
            rows.append(value)
    return rows


def metric_str(value: float | None, failure: str = "") -> str:
    """Render one cell: a percentage-style metric or a failure marker.

    Badly negative R^2 values (train-only preprocessing can destroy test
    scale entirely) are clamped for readability.
    """
    if failure:
        return failure
    if value is None:
        return "N/A"
    scaled = 100.0 * value
    if scaled < -999.9:
        return "<-999.9"
    return f"{scaled:.1f}"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width text table for paper-style rendering."""
    columns = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def line(cells: Sequence[Any]) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in rows)
    return "\n".join(out)
