"""Data catalog: profiling, metadata, refinement, and materialization.

Implements paper Sections 3.1-3.2: Algorithm 1 (PROFILING), the data
catalog store, LLM-assisted catalog refinement (feature type inference,
composite/sentence splitting, categorical deduplication), and the
materialization of the prepared single-table dataset.
"""

from repro.catalog.cache import (
    ProfileCache,
    clear_default_cache,
    column_fingerprint,
    get_default_cache,
)
from repro.catalog.catalog import ColumnProfile, DataCatalog, DatasetInfo
from repro.catalog.executor import ProfilerExecutor, resolve_workers
from repro.catalog.feature_types import FeatureType
from repro.catalog.materialize import join_multi_table, materialize_refined
from repro.catalog.profiler import profile_dataset, profile_table
from repro.catalog.refinement import RefinementResult, refine_catalog
from repro.catalog.streaming import (
    chunks_from_table,
    peak_rss_bytes,
    profile_table_streaming,
)
from repro.catalog.validation import Expectation, ExpectationSuite, ValidationReport

__all__ = [
    "ColumnProfile",
    "DataCatalog",
    "DatasetInfo",
    "FeatureType",
    "join_multi_table",
    "materialize_refined",
    "profile_dataset",
    "profile_table",
    "profile_table_streaming",
    "chunks_from_table",
    "peak_rss_bytes",
    "ProfileCache",
    "ProfilerExecutor",
    "clear_default_cache",
    "column_fingerprint",
    "get_default_cache",
    "resolve_workers",
    "RefinementResult",
    "refine_catalog",
    "Expectation",
    "ExpectationSuite",
    "ValidationReport",
]
