"""Algorithm 3 — PROMPT(D, M, alpha, beta): the overall prompt builder.

For ``beta == 1`` (CatDB default) one self-contained prompt combines all
schema messages and rules.  For ``beta > 1`` (CatDB Chain) the catalog is
split into ``beta`` column chunks; each chunk gets a pre-processing and a
feature-engineering prompt (carrying the pipeline generated so far), and a
single final model-selection prompt integrates everything (Figure 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.catalog.catalog import DataCatalog
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.prompt.combinations import MetadataCombination, get_combination
from repro.prompt.projection import clean_catalog, project_schema, select_top_k_columns
from repro.prompt.rules import (
    SECTION_FE,
    SECTION_MODEL,
    SECTION_PREPROCESSING,
    Rule,
    build_rules,
)
from repro.prompt.templates import render_pipeline_prompt

__all__ = ["Prompt", "ChainPromptPlan", "build_prompt_plan"]


@dataclass
class Prompt:
    """One rendered prompt plus the structured pieces it was built from."""

    text: str
    schema: list[dict[str, Any]]
    rules: list[Rule]
    subtasks: list[str]
    chunk: int = 0


@dataclass
class ChainPromptPlan:
    """The ordered prompt sequence for one generation run.

    For ``beta == 1`` this is a single prompt; for chains the plan knows
    its column chunks, and chain-step prompts are (re)rendered on demand so
    the caller can thread the previously generated code through
    (:meth:`chain_step`).
    """

    catalog: DataCatalog
    combination: MetadataCombination
    beta: int
    schema_chunks: list[list[dict[str, Any]]]
    rules: list[Rule]
    iteration: int = 0
    single: Prompt | None = None
    _full_schema: list[dict[str, Any]] = field(default_factory=list)

    @property
    def is_chain(self) -> bool:
        return self.beta > 1

    def rules_for(self, section: str) -> list[Rule]:
        return [r for r in self.rules if r.section == section]

    def chain_step(
        self, section: str, chunk_index: int, previous_code: str | None
    ) -> Prompt:
        """Render chain-step ``section`` for ``chunk_index``.

        ``previous_schema`` accumulates all earlier chunks (their content is
        recoverable from the appended code, which the prompt carries) so the
        simulated LLM can regenerate the cumulative pipeline.
        """
        if not self.is_chain:
            raise ValueError("chain_step is only valid for beta > 1")
        if section == SECTION_MODEL:
            schema: list[dict[str, Any]] = self._full_schema
            previous_schema: list[dict[str, Any]] = []
            rules = self.rules_for(SECTION_MODEL)
            subtasks = [SECTION_MODEL]
        else:
            schema = self.schema_chunks[chunk_index]
            previous_schema = [
                entry
                for earlier in self.schema_chunks[:chunk_index]
                for entry in earlier
            ]
            if section == SECTION_FE:
                # fe prompts follow all preprocessing prompts: the pipeline
                # so far spans every chunk's preprocessing
                previous_schema = [
                    entry
                    for other_index, chunk in enumerate(self.schema_chunks)
                    if other_index != chunk_index
                    for entry in chunk
                ]
            rules = self.rules_for(section)
            subtasks = [section]
        text = render_pipeline_prompt(
            self.catalog.info,
            schema,
            rules,
            subtasks=subtasks,
            previous_code=previous_code,
            previous_schema=previous_schema,
            iteration=self.iteration,
        )
        return Prompt(text=text, schema=list(schema), rules=rules,
                      subtasks=subtasks, chunk=chunk_index)


def build_prompt_plan(
    catalog: DataCatalog,
    alpha: int | None = None,
    beta: int = 1,
    combination: MetadataCombination | int = 11,
    iteration: int = 0,
    few_shot: int = 0,
) -> ChainPromptPlan:
    """Algorithm 3: clean the catalog, select top-K columns, build prompts."""
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if isinstance(combination, int):
        combination = get_combination(combination)
    with get_tracer().span(
        "prompt.build", dataset=catalog.info.name, beta=beta,
        combination=combination.number,
        alpha=alpha if alpha is not None else -1,
    ) as span:
        plan = _build_prompt_plan_impl(
            catalog, alpha, beta, combination, iteration, few_shot
        )
        span.set(
            schema_entries=len(plan._full_schema),
            rules=len(plan.rules),
            prompt_chars=len(plan.single.text) if plan.single else 0,
        )
        get_metrics().inc("prompt.plans")
        return plan


def _build_prompt_plan_impl(
    catalog: DataCatalog,
    alpha: int | None,
    beta: int,
    combination: MetadataCombination,
    iteration: int,
    few_shot: int,
) -> ChainPromptPlan:
    working = clean_catalog(catalog)
    working = select_top_k_columns(working, alpha)
    schema = project_schema(working, combination)
    rules = build_rules(working)

    target = working.info.target
    feature_entries = [e for e in schema if e["name"] != target]
    target_entries = [e for e in schema if e["name"] == target]

    if beta == 1:
        plan = ChainPromptPlan(
            catalog=working, combination=combination, beta=1,
            schema_chunks=[schema], rules=rules, iteration=iteration,
        )
        plan._full_schema = schema
        plan.single = Prompt(
            text=render_pipeline_prompt(
                working.info, schema, rules, iteration=iteration,
                few_shot=few_shot,
            ),
            schema=schema,
            rules=rules,
            subtasks=[SECTION_PREPROCESSING, SECTION_FE, SECTION_MODEL],
        )
        return plan

    k = math.ceil(len(feature_entries) / beta)
    chunks = [
        feature_entries[i * k : min((i + 1) * k, len(feature_entries))]
        for i in range(beta)
    ]
    chunks = [c + target_entries for c in chunks if c]
    plan = ChainPromptPlan(
        catalog=working, combination=combination, beta=len(chunks),
        schema_chunks=chunks, rules=rules, iteration=iteration,
    )
    plan._full_schema = schema
    return plan
