"""Per-dataset synthetic generators (one per row of the paper's Table 3).

Shared machinery first: a latent-factor tabular generator whose features
carry real signal toward the target, plus decorators that add the paper's
data-quality quirks (mixed categorical spellings, sentence / list /
composite columns, missing cells, label imbalance).  Each public
``make_<dataset>`` function returns ``(tables, target, task_type,
join_plan, n_classes)``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.datasets.multi_table import split_into_dimensions as _split_dimensions
from repro.table.table import Table

__all__ = [
    "make_wifi", "make_diabetes", "make_tictactoe", "make_imdb", "make_kdd98",
    "make_walking", "make_cmc", "make_eu_it", "make_survey", "make_etailing",
    "make_accidents", "make_financial", "make_airline", "make_gas_drift",
    "make_volkert", "make_yelp", "make_bike_sharing", "make_utility",
    "make_nyc", "make_house_sales",
]

GeneratorResult = tuple[list[Table], str, str, list[tuple[str, str, str]], int]


# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------

def _latent(rng: np.random.Generator, n: int, k: int = 6) -> np.ndarray:
    """Latent factors that features and target both load on."""
    return rng.normal(size=(n, k))


def _numeric_features(
    rng: np.random.Generator, latent: np.ndarray, d: int, noise: float = 0.6
) -> np.ndarray:
    """``d`` numeric features, each a noisy mix of latent factors."""
    n, k = latent.shape
    loadings = rng.normal(size=(k, d))
    return latent @ loadings + noise * rng.normal(size=(n, d))


def _score(rng: np.random.Generator, latent: np.ndarray, nonlinear: bool = True) -> np.ndarray:
    w = rng.normal(size=latent.shape[1])
    score = latent @ w
    if nonlinear:
        score = score + 0.5 * latent[:, 0] * latent[:, 1]
    return score


def _classify(score: np.ndarray, n_classes: int, names: Sequence[str] | None = None,
              imbalance: float = 0.0, rng: np.random.Generator | None = None) -> list[str]:
    """Quantile-bin a score into class labels; optional imbalance skew."""
    if names is None:
        names = [f"class_{i}" for i in range(n_classes)]
    if imbalance > 0.0:
        # power-law quantiles: earlier classes get more mass
        raw = np.linspace(0, 1, n_classes + 1) ** (1.0 + imbalance)
        edges = np.quantile(score, raw[1:-1])
    else:
        edges = np.quantile(score, np.linspace(0, 1, n_classes + 1)[1:-1])
    codes = np.searchsorted(edges, score)
    return [names[int(c)] for c in codes]


def _categorical_from(
    rng: np.random.Generator,
    values: np.ndarray,
    levels: Sequence[str],
    noise: float = 0.1,
) -> list[str]:
    """Bin a numeric vector into named levels with label noise."""
    edges = np.quantile(values, np.linspace(0, 1, len(levels) + 1)[1:-1])
    codes = np.searchsorted(edges, values)
    out = []
    for code in codes:
        if noise > 0 and rng.random() < noise:
            code = rng.integers(0, len(levels))
        out.append(levels[int(code)])
    return out


def _dirty_spellings(
    rng: np.random.Generator, values: list[str], variants: dict[str, list[str]],
    rate: float = 0.5,
) -> list[str]:
    """Replace clean category values with messy synonymous spellings."""
    out = []
    for value in values:
        alternates = variants.get(value)
        if alternates and rng.random() < rate:
            out.append(alternates[rng.integers(0, len(alternates))])
        else:
            out.append(value)
    return out


def _puncture(
    rng: np.random.Generator, values: list[Any], rate: float
) -> list[Any]:
    """Blank out a fraction of values (None)."""
    return [None if rng.random() < rate else v for v in values]




# ---------------------------------------------------------------------------
# binary classification
# ---------------------------------------------------------------------------

def make_wifi(n: int = 98, seed: int = 0) -> GeneratorResult:
    """Tiny binary dataset with a constant column and a messy, highly
    target-correlated categorical (the paper's Wifi refinement case)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 4)
    X = _numeric_features(rng, latent, 5)
    score = _score(rng, latent)
    label = ["connected" if s > 0 else "dropped" for s in score]
    quality_clean = _categorical_from(rng, score, ["Low", "Medium", "High"], noise=0.05)
    quality = _dirty_spellings(rng, quality_clean, {
        "Low": ["low", "LO", "small"],
        "Medium": ["med", "MEDIUM", "moderate"],
        "High": ["hi", "HIGH", "large"],
    })
    table = Table.from_dict({
        "signal_db": X[:, 0], "noise_db": X[:, 1], "latency_ms": X[:, 2],
        "throughput": X[:, 3], "retries": np.abs(X[:, 4]).round(0),
        "band": ["5GHz"] * n,  # constant column
        "quality": quality,
        "channel": _categorical_from(rng, X[:, 1], ["1", "6", "11"]),
        "status": label,
    }, name="wifi")
    return [table], "status", "binary", [], 2


def make_diabetes(n: int = 768, seed: int = 0) -> GeneratorResult:
    """Pima-style numeric binary task with zeros acting as hidden missing."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 5)
    X = _numeric_features(rng, latent, 8, noise=0.5)
    X = X * [3.5, 30, 12, 8, 80, 7, 0.3, 10] + [4, 120, 70, 20, 80, 32, 0.5, 33]
    # the outcome depends on the recorded measurements themselves
    score = (
        0.02 * X[:, 1] + 0.04 * X[:, 5] + 0.9 * X[:, 6] + 0.05 * X[:, 7]
        + 0.3 * rng.normal(size=n)
    )
    label = ["positive" if s > np.quantile(score, 0.65) else "negative" for s in score]
    columns = ["pregnancies", "glucose", "blood_pressure", "skin_thickness",
               "insulin", "bmi", "pedigree", "age"]
    data = {name: X[:, j] for j, name in enumerate(columns)}
    # clinical zeros = unrecorded measurements
    for name in ("glucose", "blood_pressure", "insulin"):
        values = data[name].copy()
        zeros = rng.random(n) < 0.08
        values[zeros] = np.nan
        data[name] = values
    data["outcome"] = label
    return [Table.from_dict(data, name="diabetes")], "outcome", "binary", [], 2


def make_tictactoe(n: int = 958, seed: int = 0) -> GeneratorResult:
    """Pure-categorical binary task (board positions)."""
    rng = np.random.default_rng(seed)
    cells = rng.choice(["x", "o", "b"], size=(n, 9), p=[0.4, 0.4, 0.2])
    def wins(row: np.ndarray, mark: str) -> bool:
        lines = [(0,1,2),(3,4,5),(6,7,8),(0,3,6),(1,4,7),(2,5,8),(0,4,8),(2,4,6)]
        return any(all(row[i] == mark for i in line) for line in lines)
    label = ["win" if wins(row, "x") else "loss" for row in cells]
    data = {f"square_{i}": cells[:, i].tolist() for i in range(9)}
    data["result"] = label
    return [Table.from_dict(data, name="tictactoe")], "result", "binary", [], 2


def make_imdb(n: int = 3000, seed: int = 0) -> GeneratorResult:
    """7-table star schema, binary sentiment-style task (paper: 30.5M rows)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 6)
    X = _numeric_features(rng, latent, 6)
    score = _score(rng, latent)
    label = ["hit" if s > 0 else "flop" for s in score]
    fact = Table.from_dict({
        "rating": 5 + 2 * X[:, 0], "votes": np.abs(X[:, 1]) * 1000,
        "runtime": 90 + 20 * X[:, 2], "budget": np.abs(X[:, 3]) * 1e6,
        "revenue": np.abs(X[:, 4]) * 1e6, "buzz": X[:, 5],
        "genre": _categorical_from(rng, X[:, 0], ["drama", "comedy", "action", "horror"]),
        "country": _categorical_from(rng, X[:, 1], ["US", "UK", "FR", "IN"]),
        "outcome": label,
    }, name="imdb")
    tables, join_plan = _split_dimensions(fact, {
        "studios": ["budget"], "genres": ["genre"], "countries": ["country"],
        "scores": ["buzz"], "finance": ["revenue"], "meta": ["runtime"],
    }, rng)
    return tables, "outcome", "binary", join_plan, 2


def make_kdd98(n: int = 1500, d: int = 160, seed: int = 0) -> GeneratorResult:
    """Very wide, sparse, imbalanced direct-mail response task
    (paper: 82,318 x 478)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 8)
    X = _numeric_features(rng, latent, d - 10, noise=1.0)
    score = _score(rng, latent)
    label = ["donor" if s > np.quantile(score, 0.9) else "non_donor" for s in score]
    data: dict[str, Any] = {f"v{i}": X[:, i] for i in range(d - 10)}
    # many near-empty promotional-history columns
    for i in range(8):
        values = np.where(rng.random(n) < 0.03, rng.normal(size=n), np.nan)
        data[f"promo_{i}"] = values
    data["state"] = _categorical_from(rng, X[:, 0], ["CA", "TX", "NY", "FL", "WA"])
    data["wealth"] = _categorical_from(rng, X[:, 1], ["1", "2", "3", "4", "5", "6", "7"])
    # random missingness across the wide block
    for i in range(0, d - 10, 3):
        data[f"v{i}"] = _puncture(rng, list(data[f"v{i}"]), 0.15)
    data["target_b"] = label
    return [Table.from_dict(data, name="kdd98")], "target_b", "binary", [], 2


# ---------------------------------------------------------------------------
# multi-class classification
# ---------------------------------------------------------------------------

def make_walking(n: int = 3000, seed: int = 0) -> GeneratorResult:
    """Narrow accelerometer data, 22 classes (paper: 149,332 x 5)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 4)
    X = _numeric_features(rng, latent, 4, noise=0.3)
    score = _score(rng, latent, nonlinear=False)
    label = _classify(score + 0.3 * X[:, 0], 22, [f"person_{i}" for i in range(22)])
    data = {
        "acc_x": X[:, 0], "acc_y": X[:, 1], "acc_z": X[:, 2], "time_step": X[:, 3],
        "person": label,
    }
    return [Table.from_dict(data, name="walking")], "person", "multiclass", [], 22


def make_cmc(n: int = 1473, seed: int = 0) -> GeneratorResult:
    """Contraceptive-method-choice style: integer-coded categoricals that a
    naive profiler reads as numeric (the paper's Section 3.4 example)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 5)
    X = _numeric_features(rng, latent, 4, noise=0.5)
    score = _score(rng, latent)
    label = _classify(score, 3, ["no_use", "long_term", "short_term"])
    data = {
        "wife_age": (25 + 8 * X[:, 0]).round(0),
        "wife_education": np.clip((2.5 + X[:, 1]).round(0), 1, 4),
        "husband_education": np.clip((2.5 + X[:, 2]).round(0), 1, 4),
        "children": np.clip(np.abs(2 + 2 * X[:, 3]).round(0), 0, 12),
        "wife_religion": (rng.random(n) < 0.85).astype(int),
        "wife_working": (rng.random(n) < 0.25).astype(int),
        "husband_occupation": np.clip((2.5 + X[:, 0] * 0.5).round(0), 1, 4),
        "standard_of_living": np.clip((2.5 + score * 0.8).round(0), 1, 4),
        "media_exposure": (rng.random(n) < 0.92).astype(int),
        "method": label,
    }
    return [Table.from_dict(data, name="cmc")], "method", "multiclass", [], 3


def make_eu_it(n: int = 1253, seed: int = 0) -> GeneratorResult:
    """IT-salary-survey style: categorical-only features, and a *dirty
    target* whose classes appear under multiple spellings — the paper's
    headline refinement case (39.2% -> 91.8% test accuracy).

    Features are deterministic-with-noise functions of the clean role
    (department, primary language, tooling, certification), so a model
    trained on *refined* labels recovers high accuracy, while the dirty
    duplicate spellings cap exact-match accuracy before refinement.
    """
    rng = np.random.default_rng(seed)
    roles = ["Developer", "Data Scientist", "DevOps", "Manager", "QA",
             "Architect", "Analyst", "Support", "Designer", "Consultant",
             "Researcher", "Admin"]
    role_codes = rng.integers(0, len(roles), size=n)
    clean_label = [roles[c] for c in role_codes]
    dirty_label = _dirty_spellings(rng, clean_label, {
        role: [role.lower(), role.upper(), f" {role}", f"{role} "]
        for role in roles
    }, rate=0.45)

    def role_feature(levels: list[str], noise: float) -> list[str]:
        """Feature = deterministic role mapping with label noise."""
        out = []
        for code in role_codes:
            if rng.random() < noise:
                code = int(rng.integers(0, len(roles)))
            out.append(levels[code % len(levels)])
        return out

    departments = ["Engineering", "Data", "Platform", "Management",
                   "Quality", "Architecture", "Business", "Operations",
                   "Design", "Advisory", "Research", "IT"]
    languages = ["Python", "Java", "Go", "SQL", "JS", "C++", "Bash", "R"]
    tools = [f"tool_{i}" for i in range(12)]
    certs = [f"cert_{i}" for i in range(6)]

    seniority = _dirty_spellings(
        rng,
        role_feature(["Junior", "Medium", "Senior"], noise=0.25),
        {"Junior": ["junior", "JUNIOR"], "Medium": ["med", "mid"],
         "Senior": ["senior", "SR"]},
    )
    experience = _dirty_spellings(
        rng,
        role_feature(["1 year", "2 years", "3 years", "5 years"], noise=0.3),
        {"1 year": ["12 Months", "one year"], "2 years": ["24 months", "two years"],
         "3 years": ["36 months"], "5 years": ["60 months"]},
    )
    data: dict[str, Any] = {
        "department": role_feature(departments, noise=0.08),
        "primary_language": role_feature(languages, noise=0.12),
        "main_tool": role_feature(tools, noise=0.10),
        "certification": role_feature(certs, noise=0.15),
        "seniority": seniority,
        "experience": experience,
        "city": rng.choice(["Berlin", "Munich", "Hamburg", "Cologne"], size=n).tolist(),
        "company_size": role_feature(["small", "medium", "large"], noise=0.35),
        "contract": rng.choice(["permanent", "contractor"], size=n).tolist(),
        "education": role_feature(["BSc", "MSc", "PhD", "None"], noise=0.3),
    }
    for i in range(11):
        levels = [f"opt{i}_{j}" for j in range(int(rng.integers(2, 6)))]
        noise = 0.2 if i % 3 == 0 else 0.9  # a few informative survey answers
        values = role_feature(levels, noise=noise)
        data[f"survey_q{i}"] = _puncture(rng, values, 0.10)
    data["position"] = dirty_label
    return [Table.from_dict(data, name="eu_it")], "position", "multiclass", [], len(roles)


def make_survey(n: int = 1500, seed: int = 0) -> GeneratorResult:
    """Survey responses with a sentence feature that refines to categorical."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 5)
    X = _numeric_features(rng, latent, 8, noise=0.5)
    score = _score(rng, latent)
    label = _classify(score, 9, [f"segment_{i}" for i in range(9)])
    satisfaction_levels = ["Low", "Medium", "High"]
    satisfaction_clean = _categorical_from(rng, score, satisfaction_levels, noise=0.08)
    sentence_forms = {
        "Low": ["not satisfied at all", "2 out of 10", "very low satisfaction"],
        "Medium": ["it is okay overall", "5 out of 10", "moderate satisfaction"],
        "High": ["extremely satisfied user", "9 out of 10", "very high satisfaction"],
    }
    satisfaction = [
        sentence_forms[v][rng.integers(0, 3)] if rng.random() < 0.8 else v
        for v in satisfaction_clean
    ]
    data: dict[str, Any] = {f"answer_{i}": X[:, i] for i in range(8)}
    for i in range(16):
        levels = [f"choice_{j}" for j in range(rng.integers(2, 5))]
        data[f"q{i}"] = _categorical_from(rng, X[:, i % 8], levels)
    data["satisfaction_text"] = satisfaction
    data["region"] = _categorical_from(rng, X[:, 1], ["north", "south", "east", "west"])
    data["age_group"] = _categorical_from(rng, X[:, 2], ["18-25", "26-40", "41-60", "60+"])
    data["segment"] = label
    return [Table.from_dict(data, name="survey")], "segment", "multiclass", [], 9


def make_etailing(n: int = 439, seed: int = 0) -> GeneratorResult:
    """Small, wide retail survey whose duplicate category spellings correlate
    with the target (refinement lifts accuracy ~30%, Table 5)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 6)
    X = _numeric_features(rng, latent, 10, noise=0.5)
    score = _score(rng, latent)
    label = _classify(score, 5, [f"tier_{i}" for i in range(5)])
    data: dict[str, Any] = {}
    # categorical features tied to the target, but with messy spellings
    for i in range(12):
        levels = [f"level_{j}" for j in range(3)]
        clean = _categorical_from(rng, score + 0.4 * rng.normal(size=n), levels, noise=0.1)
        variants = {lv: [lv.upper(), lv.replace("_", " "), f" {lv}"] for lv in levels}
        data[f"behavior_{i}"] = _dirty_spellings(rng, clean, variants, rate=0.5)
    for i in range(10):
        data[f"metric_{i}"] = X[:, i % 10]
    for i in range(20):
        levels = [f"v{j}" for j in range(rng.integers(2, 5))]
        data[f"pref_{i}"] = _categorical_from(rng, X[:, i % 10], levels)
    data["spending_tier"] = label
    return [Table.from_dict(data, name="etailing")], "spending_tier", "multiclass", [], 5


def make_accidents(n: int = 2500, seed: int = 0) -> GeneratorResult:
    """3-table traffic-accidents schema, 6 severity classes."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 6)
    X = _numeric_features(rng, latent, 12, noise=0.6)
    score = _score(rng, latent)
    label = _classify(score, 6, [f"severity_{i}" for i in range(6)])
    data: dict[str, Any] = {f"sensor_{i}": X[:, i] for i in range(12)}
    data["weather"] = _categorical_from(rng, X[:, 0], ["clear", "rain", "snow", "fog"])
    data["road"] = _categorical_from(rng, X[:, 1], ["highway", "urban", "rural"])
    data["vehicle"] = _categorical_from(rng, X[:, 2], ["car", "truck", "bike", "bus"])
    data["hour"] = np.clip((12 + 6 * X[:, 3]).round(0), 0, 23)
    data["severity"] = label
    fact = Table.from_dict(data, name="accidents")
    tables, join_plan = _split_dimensions(fact, {
        "locations": ["road", "weather"], "vehicles": ["vehicle"],
    }, rng)
    return tables, "severity", "multiclass", join_plan, 6


def make_financial(n: int = 2200, seed: int = 0) -> GeneratorResult:
    """8-table loan-status schema (PKDD financial), 4 classes."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 7)
    X = _numeric_features(rng, latent, 24, noise=0.6)
    score = _score(rng, latent)
    label = _classify(score, 4, ["A", "B", "C", "D"])
    data: dict[str, Any] = {f"txn_{i}": X[:, i] for i in range(24)}
    data["district"] = _categorical_from(rng, X[:, 0], [f"d{i}" for i in range(8)])
    data["frequency"] = _categorical_from(rng, X[:, 1], ["monthly", "weekly", "after_txn"])
    data["card_type"] = _categorical_from(rng, X[:, 2], ["classic", "junior", "gold"])
    data["loan_status"] = label
    fact = Table.from_dict(data, name="financial")
    groups = {
        "accounts": ["txn_0", "txn_1"], "districts": ["district"],
        "cards": ["card_type"], "orders": ["txn_2", "txn_3"],
        "disps": ["txn_4"], "clients": ["txn_5"], "loans": ["frequency"],
    }
    tables, join_plan = _split_dimensions(fact, groups, rng)
    return tables, "loan_status", "multiclass", join_plan, 4


def make_airline(n: int = 2000, seed: int = 0) -> GeneratorResult:
    """19-table flight-delay schema (paper: 445,827 x 115), 3 classes."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 8)
    X = _numeric_features(rng, latent, 28, noise=0.7)
    score = _score(rng, latent)
    label = _classify(score, 3, ["on_time", "delayed", "cancelled"], imbalance=0.5)
    data: dict[str, Any] = {f"op_{i}": X[:, i] for i in range(28)}
    data["carrier"] = _categorical_from(rng, X[:, 0], ["AA", "DL", "UA", "WN", "B6"])
    data["origin"] = _categorical_from(rng, X[:, 1], [f"apt{i}" for i in range(12)])
    data["dest"] = _categorical_from(rng, X[:, 2], [f"apt{i}" for i in range(12)])
    data["status"] = label
    fact = Table.from_dict(data, name="airline")
    groups = {f"dim_{i}": [f"op_{i}"] for i in range(16)}
    groups["carriers"] = ["carrier"]
    groups["airports"] = ["origin"]
    tables, join_plan = _split_dimensions(fact, groups, rng)
    return tables, "status", "multiclass", join_plan, 3


def make_gas_drift(n: int = 2000, d: int = 96, seed: int = 0) -> GeneratorResult:
    """Wide all-numeric sensor array, 6 classes (paper: 13,910 x 129)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 8)
    X = _numeric_features(rng, latent, d, noise=0.8)
    score = _score(rng, latent)
    label = _classify(score, 6, [f"gas_{i}" for i in range(6)])
    data = {f"sensor_{i}": X[:, i] for i in range(d)}
    data["gas"] = label
    return [Table.from_dict(data, name="gas_drift")], "gas", "multiclass", [], 6


def make_volkert(n: int = 2400, d: int = 120, seed: int = 0) -> GeneratorResult:
    """Wide numeric 10-class task (paper: 58,310 x 181)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 10)
    X = _numeric_features(rng, latent, d, noise=0.9)
    score = _score(rng, latent)
    label = _classify(score + 0.4 * latent[:, 2], 10, [f"c{i}" for i in range(10)])
    data = {f"f{i}": X[:, i] for i in range(d)}
    data["label"] = label
    return [Table.from_dict(data, name="volkert")], "label", "multiclass", [], 10


def make_yelp(n: int = 1500, seed: int = 0) -> GeneratorResult:
    """4-table business-review schema with a *list* feature (categories) and
    hashed day-columns that look like missing data (paper's Yelp case)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 7)
    X = _numeric_features(rng, latent, 16, noise=0.6)
    score = _score(rng, latent)
    label = _classify(score, 9, [f"stars_{i}" for i in range(9)])
    vocabulary = ["Golf", "Roofing", "Movers", "Taxis", "Food", "Bars",
                  "Gyms", "Salons", "Auto", "Books", "Cafes", "Vets"]
    weights = latent[:, :4]
    categories = []
    for i in range(n):
        k = 1 + int(abs(weights[i, 0]) * 1.5) % 4
        picks = rng.choice(len(vocabulary), size=k, replace=False)
        # category membership correlates with the target score
        biased = [vocabulary[(p + int(score[i] > 0) * 3) % len(vocabulary)] for p in picks]
        categories.append(", ".join(dict.fromkeys(biased)))
    data: dict[str, Any] = {f"review_{i}": X[:, i] for i in range(16)}
    # "hashed days": sparse integer-coded day columns that naive tools
    # misread as mostly-missing numerics
    for day in ("mon", "tue", "wed"):
        values = np.where(rng.random(n) < 0.3, rng.integers(0, 24, n).astype(float), np.nan)
        data[f"open_{day}"] = values
    data["categories"] = categories
    data["city"] = _categorical_from(rng, X[:, 0], [f"city{i}" for i in range(9)])
    data["stars_bucket"] = label
    fact = Table.from_dict(data, name="yelp")
    tables, join_plan = _split_dimensions(fact, {
        "businesses": ["review_0", "review_1"], "users": ["review_2"],
        "cities": ["city"],
    }, rng)
    return tables, "stars_bucket", "multiclass", join_plan, 9


# ---------------------------------------------------------------------------
# regression
# ---------------------------------------------------------------------------

def make_bike_sharing(n: int = 2500, seed: int = 0) -> GeneratorResult:
    """Hourly rental counts (paper: 17,379 x 12, 869 distinct targets)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 5)
    X = _numeric_features(rng, latent, 5, noise=0.4)
    hour = rng.integers(0, 24, size=n)
    workday = (rng.random(n) < 0.7).astype(int)
    season_effect = np.sin(hour / 24.0 * 2 * np.pi) * 40
    target = np.maximum(
        0, 120 + 60 * latent[:, 0] + season_effect + 30 * workday
        + 15 * rng.normal(size=n)
    ).round(0)
    data = {
        "temp": 15 + 8 * X[:, 0], "humidity": 50 + 15 * X[:, 1],
        "windspeed": np.abs(8 + 4 * X[:, 2]),
        "visibility": np.abs(10 + 2 * X[:, 3]), "pressure": 1013 + 5 * X[:, 4],
        "hour": hour, "workingday": workday,
        "season": _categorical_from(rng, X[:, 0], ["spring", "summer", "fall", "winter"]),
        "weather": _categorical_from(rng, X[:, 1], ["clear", "mist", "rain"]),
        "count": target,
    }
    return [Table.from_dict(data, name="bike_sharing")], "count", "regression", [], 0


def make_utility(n: int = 2000, seed: int = 0) -> GeneratorResult:
    """Utility-consumption regression (paper: 4,574 x 13)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 5)
    X = _numeric_features(rng, latent, 8, noise=0.4)
    target = (
        200 + 80 * latent[:, 0] - 40 * latent[:, 1]
        + 20 * latent[:, 0] * latent[:, 2] + 10 * rng.normal(size=n)
    )
    data: dict[str, Any] = {
        "sqft": np.abs(1500 + 500 * X[:, 0]),
        "occupants": np.clip((2.5 + X[:, 1]).round(0), 1, 8),
        "hvac_age": np.abs(8 + 4 * X[:, 2]),
        "insulation": X[:, 3], "ambient_temp": 18 + 8 * X[:, 4],
        "solar": np.abs(X[:, 5]), "ev_charging": (rng.random(n) < 0.2).astype(int),
        "meter_reading": X[:, 6],
        "building_type": _categorical_from(rng, X[:, 0], ["house", "apartment", "duplex"]),
        "tariff": _dirty_spellings(
            rng,
            _categorical_from(rng, X[:, 1], ["standard", "economy", "peak"]),
            {"standard": ["STANDARD", "std"], "economy": ["eco", "ECONOMY"],
             "peak": ["PEAK", "pk"]},
        ),
        "usage_kwh": target,
    }
    return [Table.from_dict(data, name="utility")], "usage_kwh", "regression", [], 0


def make_nyc(n: int = 3000, seed: int = 0) -> GeneratorResult:
    """Taxi-fare style regression (paper: 581,835 x 17)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 6)
    X = _numeric_features(rng, latent, 10, noise=0.5)
    distance = np.abs(3 + 2.5 * latent[:, 0])
    duration = distance * (8 + 2 * np.abs(latent[:, 1])) + np.abs(rng.normal(size=n))
    target = 2.5 + 1.8 * distance + 0.4 * duration + 2 * rng.normal(size=n)
    data = {
        "distance_km": distance, "duration_min": duration,
        "pickup_lon": -74 + 0.1 * X[:, 0], "pickup_lat": 40.7 + 0.1 * X[:, 1],
        "dropoff_lon": -74 + 0.1 * X[:, 2], "dropoff_lat": 40.7 + 0.1 * X[:, 3],
        "passengers": np.clip((1.5 + X[:, 4]).round(0), 1, 6),
        "tolls": np.where(rng.random(n) < 0.15, 5.76, 0.0),
        "hour": rng.integers(0, 24, size=n),
        "payment": _categorical_from(rng, X[:, 5], ["card", "cash"]),
        "vendor": _categorical_from(rng, X[:, 6], ["vts", "cmt"]),
        "rate_code": _categorical_from(rng, X[:, 7], ["1", "2", "5"]),
        "fare": target,
    }
    return [Table.from_dict(data, name="nyc")], "fare", "regression", [], 0


def make_house_sales(n: int = 2500, seed: int = 0) -> GeneratorResult:
    """King-County-style house price regression (paper: 21,613 x 18)."""
    rng = np.random.default_rng(seed)
    latent = _latent(rng, n, 6)
    X = _numeric_features(rng, latent, 10, noise=0.4)
    sqft = np.abs(1800 + 700 * latent[:, 0])
    grade = np.clip((7 + 1.5 * latent[:, 1]).round(0), 3, 13)
    target = (
        150_000 + 180 * sqft + 40_000 * (grade - 7)
        + 25_000 * latent[:, 2] + 20_000 * rng.normal(size=n)
    )
    data = {
        "sqft_living": sqft, "grade": grade,
        "bedrooms": np.clip((3 + X[:, 0]).round(0), 1, 8),
        "bathrooms": np.clip(np.abs(2 + 0.7 * X[:, 1]).round(1), 1, 5),
        "floors": np.clip((1.5 + 0.5 * X[:, 2]).round(0), 1, 3),
        "sqft_lot": np.abs(5000 + 3000 * X[:, 3]),
        "yr_built": np.clip((1975 + 20 * X[:, 4]).round(0), 1900, 2015),
        "condition": np.clip((3 + X[:, 5]).round(0), 1, 5),
        "view_score": np.clip(np.abs(X[:, 6]).round(0), 0, 4),
        "waterfront": (rng.random(n) < 0.02).astype(int),
        "zipcode": _categorical_from(rng, X[:, 7], [f"981{i:02d}" for i in range(12)]),
        "price": target,
    }
    return [Table.from_dict(data, name="house_sales")], "price", "regression", [], 0
