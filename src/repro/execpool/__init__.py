"""Process-isolated pipeline execution pool.

Public surface of the executor's ``mode="pool"`` backend: warm subprocess
workers with per-execution rlimits, hard kill-on-timeout, and crash
classification onto the RE taxonomy.  See ``docs/execution_pool.md``.
"""

from repro.execpool.config import (
    EXEC_MODES,
    PoolConfig,
    pool_config_from_env,
    resolve_exec_mode,
    resolve_memory_mb,
)

# The pool/protocol layers import ExecutionResult from the executor, and
# the executor imports this package's config at module load — so those
# symbols resolve lazily (PEP 562) to keep the import graph acyclic.
_LAZY = {
    "ExecPool": "repro.execpool.pool",
    "PoolWorker": "repro.execpool.pool",
    "get_pool": "repro.execpool.pool",
    "shutdown_pool": "repro.execpool.pool",
    "ExecJob": "repro.execpool.protocol",
    "WorkerReply": "repro.execpool.protocol",
    "classify_worker_death": "repro.execpool.protocol",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "EXEC_MODES",
    "PoolConfig",
    "pool_config_from_env",
    "resolve_exec_mode",
    "resolve_memory_mb",
    "ExecPool",
    "PoolWorker",
    "get_pool",
    "shutdown_pool",
    "ExecJob",
    "WorkerReply",
    "classify_worker_death",
]
