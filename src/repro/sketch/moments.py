"""Streaming moments (count / mean / M2 / extrema) with a parallel merge.

Per-chunk statistics are computed with vectorized numpy (one pass), then
folded via Chan's parallel update of Welford's recurrence:

    delta = mean_b - mean_a
    mean  = mean_a + delta * n_b / (n_a + n_b)
    M2    = M2_a + M2_b + delta^2 * n_a * n_b / (n_a + n_b)

The merge is associative up to floating-point rounding; the streaming
profiler folds chunks in canonical (start-row) order so the result is
*bit*-identical at any worker count and chunk arrival order.  Exactness
versus the batch path (which calls ``values.mean()`` on the full array)
holds whenever the stream fits the exact row buffer — the profiler then
recomputes numpy statistics from the buffer instead of this sketch, so
:class:`MomentsSketch` only answers once the data is genuinely
out-of-core.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["MomentsSketch"]


class MomentsSketch:
    """Mergeable count/mean/variance/min/max over present numeric values."""

    __slots__ = ("n", "mean", "m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- updates ---------------------------------------------------------------

    def update(self, values: np.ndarray) -> None:
        """Fold a chunk of present (non-nan) float64 values."""
        values = np.asarray(values, dtype=np.float64)
        n_b = int(values.size)
        if n_b == 0:
            return
        mean_b = float(values.mean())
        m2_b = float(np.sum((values - mean_b) ** 2))
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        self._combine(n_b, mean_b, m2_b)

    def _combine(self, n_b: int, mean_b: float, m2_b: float) -> None:
        n_a = self.n
        if n_a == 0:
            self.n, self.mean, self.m2 = n_b, mean_b, m2_b
            return
        n = n_a + n_b
        delta = mean_b - self.mean
        self.mean += delta * n_b / n
        self.m2 += m2_b + delta * delta * n_a * n_b / n
        self.n = n

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "MomentsSketch") -> "MomentsSketch":
        if other.n:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            self._combine(other.n, other.mean, other.m2)
        return self

    def copy(self) -> "MomentsSketch":
        clone = MomentsSketch()
        clone.n, clone.mean, clone.m2 = self.n, self.mean, self.m2
        clone.min, clone.max = self.min, self.max
        return clone

    # -- queries ---------------------------------------------------------------

    def variance(self) -> float:
        """Population variance (matching ``ndarray.std()``'s ddof=0)."""
        return self.m2 / self.n if self.n else 0.0

    def std(self) -> float:
        return math.sqrt(max(self.variance(), 0.0))

    def statistics(self) -> dict[str, float]:
        """min/max/mean/std in the batch ``numeric_statistics`` shape
        (median is supplied separately by the quantile reservoir)."""
        if self.n == 0:
            return {}
        return {
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std(),
        }

    def canonical_state(self) -> tuple:
        return (self.n, self.mean, self.m2, self.min, self.max)

    def __repr__(self) -> str:
        return f"MomentsSketch(n={self.n}, mean={self.mean}, std={self.std()})"
