"""Table 5 — accuracy on the six cleaning datasets (original vs refined vs
baselines vs cleaning+AutoML workflows)."""

from benchmarks.conftest import AUTOML_BUDGET, QUICK, save_result
from repro.experiments import table5_accuracy


def test_table05_cleaning_accuracy(benchmark):
    result = benchmark.pedantic(
        lambda: table5_accuracy.run(
            llm_name="gemini-1.5", automl_budget=AUTOML_BUDGET, quick=QUICK
        ),
        rounds=1, iterations=1,
    )
    save_result("table05_cleaning_accuracy", result.render())

    datasets = {r["dataset"] for r in result.rows}
    assert datasets == {"eu_it", "wifi", "etailing", "survey", "utility", "yelp"}

    # shape: refinement lifts CatDB's test metric on the dirty-label datasets
    gains = []
    for name in ("eu_it", "etailing"):
        original = result.cell(name, "catdb-original")
        refined = result.cell(name, "catdb-refined")
        if original and refined and original["test"] and refined["test"]:
            gains.append(refined["test"] - original["test"])
    assert gains and max(gains) > 0.05

    # shape: refined CatDB is never catastrophically below original
    for name in datasets:
        original = result.cell(name, "catdb-original")
        refined = result.cell(name, "catdb-refined")
        if original and refined and original["test"] and refined["test"]:
            assert refined["test"] >= original["test"] - 0.10
