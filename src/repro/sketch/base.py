"""Shared substrate for the mergeable-summary sketches.

Every sketch in this package follows one contract:

- ``update(...)`` folds a batch of values (with their *global* row
  indices where ordering matters) into the summary;
- ``merge(other)`` combines two summaries of disjoint row ranges into
  the summary of their union — the operation is associative and
  commutative, so shards and chunks can be summarized independently and
  combined in any grouping;
- an *exact mode* keeps the raw state while it stays below a
  configurable cardinality bound, so small inputs round-trip through the
  sketch without any approximation (and the streaming profiler can
  reproduce the batch profiler bit-for-bit).

Determinism is seeded, never salted: hashes are keyed by material drawn
from a :class:`numpy.random.SeedSequence`, so two processes with the
same seed produce identical summaries (unlike builtin ``hash``, which is
``PYTHONHASHSEED``-salted).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "SketchConfig",
    "encode_value",
    "hash64",
    "hash64_many",
    "priority_for_tokens",
    "priority_for_floats",
    "seed_material",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class SketchConfig:
    """Size/threshold knobs shared by every sketch of one profiling run.

    ``exact_threshold`` is the cardinality (or buffer-size) bound below
    which sketches keep exact state; ``kmv_k`` bounds the distinct-count
    sketch (relative error ~ 1/sqrt(k-2)); ``heavy_k`` bounds the
    SpaceSaving counter table after exact mode overflows.
    """

    seed: int = 0
    kmv_k: int = 1024
    heavy_k: int = 256
    exact_threshold: int = 8192
    quantile_k: int = 2048
    evidence_k: int = 200
    stats_cap: int = 5000
    corr_category_cap: int = 512
    contingency_cap: int = 4096

    def spawn_key(self, *scope: Any) -> int:
        """A stable 64-bit hash key for one (seed, scope) combination."""
        seq = np.random.SeedSequence(
            [self.seed] + [zlib.crc32(str(part).encode("utf-8")) for part in scope]
        )
        state = seq.generate_state(2, dtype=np.uint64)
        return int(state[0] ^ (state[1] >> np.uint64(1)))


def seed_material(seed: int, *scope: Any) -> int:
    """Stable 64-bit key from a seed plus arbitrary scope labels."""
    return SketchConfig(seed=seed).spawn_key(*scope)


def encode_value(value: Any) -> bytes:
    """Canonical byte encoding used by hash-based sketches.

    Floats encode as their little-endian IEEE-754 bytes (injective per
    distinct float), strings as UTF-8, booleans as one byte.  The 1-byte
    type tag keeps the three views from colliding.
    """
    if value is None:
        return b"\x00"
    if isinstance(value, bool):
        return b"\x03\x01" if value else b"\x03\x00"
    if isinstance(value, float):
        return b"\x02" + struct.pack("<d", value)
    if isinstance(value, str):
        return b"\x01" + value.encode("utf-8", "surrogatepass")
    return b"\x01" + str(value).encode("utf-8", "surrogatepass")


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer — a well-mixed 64-bit permutation."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
    return x ^ (x >> np.uint64(31))


def hash64(key: int, data: bytes) -> int:
    """Seeded 64-bit hash of one encoded value (scalar path)."""
    crc_lo = zlib.crc32(data)
    crc_hi = zlib.crc32(data, 0x9E3779B9)
    packed = ((crc_hi << 32) | crc_lo) ^ (key & 0xFFFFFFFFFFFFFFFF)
    # 0-d arrays keep uint64 arithmetic in silent-wraparound (array) mode
    return int(_splitmix64(np.array([packed], dtype=np.uint64))[0])


def hash64_many(key: int, encodings: "list[bytes]") -> np.ndarray:
    """Batched :func:`hash64` — identical values, one finalizer pass.

    The per-call scalar path pays a numpy array construction per value;
    at chunk sizes that dominates sketch updates, so the hot loops hash
    whole chunks through this instead.
    """
    packed = np.fromiter(
        ((zlib.crc32(data, 0x9E3779B9) << 32) | zlib.crc32(data)
         for data in encodings),
        dtype=np.uint64,
        count=len(encodings),
    )
    return _splitmix64(packed ^ np.uint64(key & 0xFFFFFFFFFFFFFFFF))


def priority_for_tokens(
    key: int, rows: "np.ndarray | list[int]", tokens: "list[str]"
) -> np.ndarray:
    """Deterministic per-(row, value) priorities for bottom-k sampling.

    The priority depends only on ``(key, row, token)``, so the k lowest
    priorities over a multiset of rows form an order-invariant sample:
    chunking, sharding, and merge grouping cannot change the selection.
    """
    crcs = np.fromiter(
        (zlib.crc32(token.encode("utf-8", "surrogatepass")) for token in tokens),
        dtype=np.uint64,
        count=len(tokens),
    )
    rows64 = np.asarray(rows, dtype=np.uint64)
    return _splitmix64((rows64 << np.uint64(32)) ^ crcs ^ np.uint64(key & 0xFFFFFFFFFFFFFFFF))


def priority_for_floats(
    key: int, rows: "np.ndarray | list[int]", values: np.ndarray
) -> np.ndarray:
    """Vectorized priorities for float values (C-speed, no per-value loop)."""
    bits = np.ascontiguousarray(np.asarray(values, dtype=np.float64)).view(np.uint64)
    rows64 = np.asarray(rows, dtype=np.uint64)
    return _splitmix64(
        (rows64 << np.uint64(32)) ^ _splitmix64(bits) ^ np.uint64(key & 0xFFFFFFFFFFFFFFFF)
    )
