"""Tests for AutoML tools, LLM baselines, cleaning, and augmentation."""

import numpy as np
import pytest

from repro.baselines.aide import AIDEBaseline
from repro.baselines.autogen import AutoGenBaseline
from repro.baselines.augmentation import adasyn_like, imbalanced_regression_resample
from repro.baselines.automl import AutoGluonLike, AutoSklearnLike, FlamlLike, H2OLike
from repro.baselines.caafe import CAAFEBaseline
from repro.baselines.cleaning import (
    CLEANING_PRIMITIVES,
    Learn2CleanLike,
    SagaLike,
)
from repro.llm.mock import MockLLM
from repro.ml.model_selection import train_test_split
from repro.table.table import Table


@pytest.fixture(scope="module")
def clf_split():
    rng = np.random.default_rng(0)
    n = 300
    x1 = rng.normal(size=n)
    x2 = rng.normal(size=n)
    t = Table.from_dict({
        "x1": x1, "x2": x2, "cat": np.where(x2 > 0, "A", "B"),
        "y": np.where(x1 + 0.5 * x2 > 0, "p", "n"),
    }, name="clf")
    labels = [str(v) for v in t["y"]]
    return train_test_split(t, test_size=0.3, random_state=0, stratify=labels)


@pytest.fixture(scope="module")
def reg_split():
    rng = np.random.default_rng(1)
    n = 300
    x1 = rng.normal(size=n)
    x2 = rng.normal(size=n)
    t = Table.from_dict({
        "x1": x1, "x2": x2,
        "y": 3 * x1 - x2 + 0.2 * rng.normal(size=n),
    }, name="reg")
    return train_test_split(t, test_size=0.3, random_state=0)


class TestAutoMLTools:
    @pytest.mark.parametrize("tool_cls", [H2OLike, FlamlLike, AutoGluonLike])
    def test_classification_succeeds(self, tool_cls, clf_split):
        train, test = clf_split
        report = tool_cls(time_budget_seconds=6).run(train, test, "y", "binary")
        assert report.success, report.failure_reason
        assert report.metrics["test_auc"] > 0.8
        assert report.details["n_evaluated"] >= 1

    @pytest.mark.parametrize("tool_cls", [FlamlLike, AutoGluonLike, AutoSklearnLike])
    def test_regression_succeeds(self, tool_cls, reg_split):
        train, test = reg_split
        report = tool_cls(time_budget_seconds=6).run(train, test, "y", "regression")
        assert report.success, report.failure_reason
        assert report.metrics["test_r2"] > 0.8

    def test_autosklearn_times_out_on_classification_small_budget(self, clf_split):
        train, test = clf_split
        report = AutoSklearnLike(time_budget_seconds=5).run(train, test, "y", "binary")
        assert not report.success
        assert report.failure_reason == "TO"

    def test_oom_on_paper_scale(self, clf_split):
        train, test = clf_split
        report = AutoSklearnLike(time_budget_seconds=30).run(
            train, test, "y", "binary",
            meta={"paper_cells": 30_000_000 * 15},  # IMDB-scale
        )
        assert report.failure_reason == "OOM"

    def test_h2o_rejects_high_cardinality_regression(self, reg_split):
        train, test = reg_split
        report = H2OLike(time_budget_seconds=6).run(train, test, "y", "regression")
        assert not report.success
        assert "No trained models" in report.failure_reason or "N/A" in report.failure_reason

    def test_flaml_cheap_first_ordering(self):
        tool = FlamlLike(time_budget_seconds=5)
        ordered = tool.search_order(tool.portfolio("binary", 100, 5))
        costs = [c.cost_rank for c in ordered]
        assert costs == sorted(costs)

    def test_leaderboard_sorted(self, clf_split):
        train, test = clf_split
        report = FlamlLike(time_budget_seconds=6).run(train, test, "y", "binary")
        scores = [s for _n, s in report.details["leaderboard"]]
        assert scores == sorted(scores, reverse=True)


class TestCAAFE:
    def test_tabpfn_small_data(self, clf_split):
        train, test = clf_split
        report = CAAFEBaseline(MockLLM("gpt-4o"), model="tabpfn").run(
            train, test, "y", "binary"
        )
        assert report.success
        assert report.total_tokens > 0
        assert report.n_llm_requests >= 1

    def test_tabpfn_oom_at_paper_scale(self, clf_split):
        train, test = clf_split
        report = CAAFEBaseline(MockLLM("gpt-4o"), model="tabpfn").run(
            train, test, "y", "binary",
            meta={"paper_rows": 229_907},  # Yelp-scale
        )
        assert not report.success
        assert report.failure_reason == "OOM"

    def test_tabpfn_subsamples_beyond_its_training_limit(self):
        rng = np.random.default_rng(0)
        n = 2500
        x = rng.normal(size=n)
        t = Table.from_dict({
            "x": x, "y": np.where(x > 0, "a", "b"),
        }, name="big")
        train, test = train_test_split(t, test_size=0.3, random_state=0)
        report = CAAFEBaseline(MockLLM("gpt-4o"), model="tabpfn").run(
            train, test, "y", "binary"
        )
        # in-process rows exceed 1000, but CAAFE feeds TabPFN a subsample
        assert report.success
        assert report.metrics["test_accuracy"] > 0.8

    def test_rforest_scales_past_tabpfn_limits(self):
        rng = np.random.default_rng(0)
        n = 1600
        x = rng.normal(size=n)
        t = Table.from_dict({
            "x": x, "y": np.where(x > 0, "a", "b"),
        }, name="big")
        train, test = train_test_split(t, test_size=0.3, random_state=0)
        report = CAAFEBaseline(MockLLM("gpt-4o"), model="rforest").run(
            train, test, "y", "binary"
        )
        assert report.success

    def test_regression_unsupported(self, reg_split):
        train, test = reg_split
        report = CAAFEBaseline(MockLLM("gpt-4o")).run(train, test, "y", "regression")
        assert not report.success
        assert "regression" in report.failure_reason

    def test_invalid_model_name(self):
        with pytest.raises(ValueError):
            CAAFEBaseline(MockLLM("gpt-4o"), model="xgboost")


class TestAIDEAndAutoGen:
    def test_aide_succeeds_eventually(self, clf_split):
        train, test = clf_split
        report = AIDEBaseline(MockLLM("gpt-4o", seed=0), max_retries=6).run(
            train, test, "y", "binary"
        )
        assert report.success
        assert report.details["attempts"] >= 1

    def test_aide_token_accounting(self, clf_split):
        train, test = clf_split
        llm = MockLLM("gpt-4o", seed=0)
        report = AIDEBaseline(llm, max_retries=4).run(train, test, "y", "binary")
        assert report.total_tokens == llm.usage.total_tokens

    def test_aide_can_fail_with_zero_retries_budget(self, clf_split):
        train, test = clf_split
        # max_retries=1 with an error-prone profile fails at least sometimes
        failures = 0
        for seed in range(8):
            report = AIDEBaseline(
                MockLLM("llama3.1-70b", seed=seed), max_retries=1
            ).run(train, test, "y", "binary")
            failures += 0 if report.success else 1
        assert failures >= 1

    def test_autogen_succeeds(self, clf_split):
        train, test = clf_split
        report = AutoGenBaseline(MockLLM("gemini-1.5", seed=0)).run(
            train, test, "y", "binary"
        )
        assert report.success
        assert report.details["rounds"] >= 1

    def test_autogen_overhead_tokens_exceed_plain_prompt(self, clf_split):
        train, test = clf_split
        llm = MockLLM("gpt-4o", seed=0)
        report = AutoGenBaseline(llm).run(train, test, "y", "binary")
        assert report.prompt_tokens > llm.usage.prompt_tokens  # includes overhead


class TestCleaningPrimitives:
    def test_all_eight_primitives_registered(self):
        assert set(CLEANING_PRIMITIVES) == {
            "DS", "ED", "AD", "IQR", "LOF", "EM", "MEDIAN", "DROP"
        }

    def test_median_impute_fills_everything(self):
        t = Table.from_dict({"a": [1.0, None, 3.0], "b": ["x", None, "x"],
                             "y": [1, 2, 3]})
        out = CLEANING_PRIMITIVES["MEDIAN"](t, "y")
        assert out.missing_cells() == 0

    def test_drop_removes_incomplete_rows(self):
        t = Table.from_dict({"a": [1.0, None] * 10, "y": list(range(20))})
        out = CLEANING_PRIMITIVES["DROP"](t, "y")
        assert out.n_rows == 10

    def test_iqr_removes_outlier_rows(self):
        values = [1.0] * 30 + [1000.0]
        t = Table.from_dict({"a": values, "y": list(range(31))})
        out = CLEANING_PRIMITIVES["IQR"](t, "y")
        assert out.n_rows == 30

    def test_ds_scales_into_unit_range(self):
        t = Table.from_dict({"a": [100.0, 5000.0], "y": [1, 2]})
        out = CLEANING_PRIMITIVES["DS"](t, "y")
        assert np.abs(out["a"].non_missing()).max() <= 1.0

    def test_ed_drops_exact_duplicates(self):
        t = Table.from_dict({"a": [1, 1, 2], "y": [5, 5, 6]})
        assert CLEANING_PRIMITIVES["ED"](t, "y").n_rows == 2

    def test_em_removes_numeric_missing(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=50)
        a[:5] = np.nan
        t = Table.from_dict({"a": a, "b": rng.normal(size=50), "y": range(50)})
        out = CLEANING_PRIMITIVES["EM"](t, "y")
        assert out["a"].n_missing == 0

    def test_target_never_touched(self):
        t = Table.from_dict({"a": [1.0, 2.0], "y": [1000.0, -1000.0]})
        out = CLEANING_PRIMITIVES["DS"](t, "y")
        assert out["y"].to_list() == [1000.0, -1000.0]


class TestCleaningSearch:
    def test_saga_returns_pipeline(self, clf_split):
        train, _ = clf_split
        report = SagaLike(generations=1, population=3).clean(train, "y", "binary")
        assert report.success
        assert report.cleaned is not None

    def test_learn2clean_greedy(self, reg_split):
        train, _ = reg_split
        report = Learn2CleanLike(max_steps=2).clean(train, "y", "regression")
        assert report.success

    def test_learn2clean_fails_without_continuous_columns(self):
        t = Table.from_dict({
            "c1": ["a", "b"] * 20, "c2": ["x", "y"] * 20, "y": ["p", "n"] * 20,
        })
        report = Learn2CleanLike().clean(t, "y", "multiclass")
        assert not report.success
        assert "continuous" in report.failure_reason


class TestAugmentation:
    def test_adasyn_balances_table(self):
        rng = np.random.default_rng(0)
        n = 80
        t = Table.from_dict({
            "x1": rng.normal(size=n), "x2": rng.normal(size=n),
            "y": ["maj"] * 70 + ["min"] * 10,
        })
        out = adasyn_like(t, "y", seed=0)
        counts = out["y"].value_counts()
        assert counts["min"] == counts["maj"]

    def test_adasyn_single_class_noop(self):
        t = Table.from_dict({"x": [1.0, 2.0], "y": ["a", "a"]})
        assert adasyn_like(t, "y").n_rows == 2

    def test_regression_resample_adds_tail_rows(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=100)
        t = Table.from_dict({"x": rng.normal(size=100), "y": y})
        out = imbalanced_regression_resample(t, "y", seed=0)
        assert out.n_rows > 100

    def test_regression_resample_small_noop(self):
        t = Table.from_dict({"x": [1.0] * 5, "y": [1.0] * 5})
        assert imbalanced_regression_resample(t, "y").n_rows == 5
