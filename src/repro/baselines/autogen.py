"""AutoGen-like baseline: multi-agent conversation around pipeline code.

AutoGen (Wu et al.) coordinates planner / coder / executor agents in a
conversation.  Compared to CatDB it sees heuristic feature types (the
coder agent can run profiling code) but no refined metadata and no
dataset-specific rules, and its repair loop feeds execution errors back
into the *conversation* rather than structured error prompts.  The
multi-agent chatter inflates token costs by a fixed conversational
overhead per round, and runs that never converge end in failure (the
paper's Gas-Drift-with-Llama case).
"""

from __future__ import annotations

import time
from typing import Any

from repro.baselines.base import BaselineReport, traced_baseline_run
from repro.catalog.feature_types import infer_feature_type_heuristic
from repro.analysis.engine import analyze_source
from repro.generation.executor import execute_pipeline_code
from repro.generation.validator import extract_code_block
from repro.llm.base import LLMClient
from repro.llm.mock import embed_payload
from repro.llm.tokenizer import count_tokens
from repro.table.column import ColumnKind
from repro.table.table import Table

__all__ = ["AutoGenBaseline"]

_CONVERSATION_OVERHEAD = (
    "[planner] Decompose the task into data loading, preparation, and "
    "modelling. [critic] Validate each step before execution. [coder] "
    "Produce the full script. [executor] Run it and report errors back."
)


class AutoGenBaseline:
    """Planner/coder/executor conversation over one pipeline script."""

    name = "autogen"

    def __init__(
        self,
        llm: LLMClient,
        max_rounds: int = 15,
        description: str = "",
        seed: int = 0,
        exec_mode: str | None = None,
    ) -> None:
        self.llm = llm
        self.max_rounds = max_rounds
        self.description = description
        self.seed = seed
        self.exec_mode = exec_mode

    def _schema(self, table: Table, target: str) -> list[dict[str, Any]]:
        kind_map = {"numeric": "number", "string": "string", "boolean": "boolean"}
        entries = []
        for column in table:
            present = [v for v in column.to_list() if v is not None]
            feature_type = infer_feature_type_heuristic(
                present,
                column.n_distinct / max(1, table.n_rows),
                column.kind is ColumnKind.NUMERIC,
                table.n_rows,
            )
            entry: dict[str, Any] = {
                "name": column.name,
                "data_type": kind_map[column.kind.value],
                "feature_type": feature_type.value,
            }
            if column.name == target:
                entry["is_target"] = True
            entries.append(entry)
        return entries

    def _prompt(
        self, train: Table, target: str, task_type: str,
        round_index: int, error_note: str,
    ) -> str:
        schema = self._schema(train, target)
        lines = [
            "# AutoGen multi-agent session",
            _CONVERSATION_OVERHEAD,
            f"{self.description}".strip(),
            f"Goal: a {task_type} pipeline predicting {target!r}.",
        ]
        if error_note:
            lines.append(f"[executor] Previous attempt failed: {error_note}")
        payload = {
            "task": "pipeline",
            "dataset": {
                "name": train.name, "task_type": task_type, "target": target,
                "n_rows": train.n_rows, "n_cols": train.n_cols,
            },
            "schema": schema,
            "rules": [],  # no catalog-derived rules in AutoGen
            "subtasks": ["preprocessing", "fe-engineering", "model-selection"],
            "iteration": self.seed * 1000 + round_index,
        }
        lines.append(embed_payload(payload))
        return "\n".join(lines)

    @traced_baseline_run
    def run(
        self,
        train: Table,
        test: Table,
        target: str,
        task_type: str,
        meta: dict[str, Any] | None = None,
    ) -> BaselineReport:
        report = BaselineReport(system=self.name, dataset=train.name)
        start = time.perf_counter()
        error_note = ""
        for round_index in range(self.max_rounds):
            prompt = self._prompt(train, target, task_type, round_index, error_note)
            response = self.llm.complete(prompt)
            # conversational overhead: the planner/critic/executor turns
            overhead = count_tokens(_CONVERSATION_OVERHEAD) * 3
            report.prompt_tokens += response.prompt_tokens + overhead
            report.completion_tokens += response.completion_tokens
            report.n_llm_requests += 1
            report.llm_latency_seconds += float(
                response.metadata.get("latency_seconds", 0.0)
            )
            code = extract_code_block(response.content)
            # statically-dirty candidates never reach the executor;
            # the finding feeds the next conversation round instead
            static = analyze_source(code)
            if not static.ok:
                error = static.first_error()
                assert error is not None
                error_note = error.render()
                continue
            result = execute_pipeline_code(code, train, test, mode=self.exec_mode)
            if result.success:
                report.success = True
                report.metrics = result.metrics
                report.pipeline_runtime_seconds = result.runtime_seconds
                report.details["rounds"] = round_index + 1
                report.details["code"] = code
                break
            error_note = result.error.render() if result.error else "unknown error"
        else:
            report.failure_reason = (
                f"N/A (conversation did not converge in {self.max_rounds} rounds)"
            )
        report.total_tokens = report.prompt_tokens + report.completion_tokens
        report.runtime_seconds = time.perf_counter() - start
        return report
