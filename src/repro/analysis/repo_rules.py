"""Self-lint rules for the repro codebase (profile ``"repo"``).

These encode repo invariants that unit tests cannot cheaply pin:

- ``unseeded-random``   — the substrate must be deterministic end to end;
  any global-RNG draw breaks the soak's bit-identical guarantee
- ``wall-clock``        — cached or parallel code must not read wall
  clocks; cache keys and traces built from ``time.time()`` /
  ``datetime.now()`` differ across runs (monotonic timers are fine)
- ``lock-reentry``      — a method holding a non-reentrant lock must not
  call another method of the same object that re-acquires the same lock.
  This is exactly the ``CircuitBreaker.failure_rate`` deadlock class
  fixed in PR 3: ``before_call`` held ``self._lock`` and called
  ``failure_rate()``, which blocked acquiring it again.

Run with ``repro lint src/repro --profile repo``; CI fails on errors.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.rules import AnalysisContext, Finding, Severity

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "LockReentryRule",
    "REPO_RULES",
]

_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed",
}

_NP_RANDOM_SEEDED = {"default_rng", "SeedSequence", "Generator", "BitGenerator"}


class UnseededRandomRule:
    """Global-RNG draws are nondeterministic across processes and runs."""

    id = "unseeded-random"
    description = "global RNG use breaks substrate determinism"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            message: str | None = None
            if dotted.startswith("numpy.random."):
                attr = dotted.split(".", 2)[2]
                if attr == "default_rng" and not node.args and not node.keywords:
                    message = "numpy.random.default_rng() without a seed"
                elif "." not in attr and attr not in _NP_RANDOM_SEEDED:
                    message = f"numpy global RNG call 'np.random.{attr}'"
            elif dotted.startswith("random."):
                attr = dotted.split(".", 1)[1]
                if attr in _GLOBAL_RANDOM_FNS:
                    message = f"stdlib global RNG call 'random.{attr}'"
            if message is not None:
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message=f"{message} (thread a seeded Generator instead)",
                    line=node.lineno,
                )


#: wall-clock reads; monotonic/perf_counter/process_time are deliberately OK
_WALL_CLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


class WallClockRule:
    """Wall-clock reads poison cache keys and cross-run comparisons."""

    id = "wall-clock"
    description = "wall-clock read in substrate code (use monotonic timers)"
    default_severity = Severity.WARNING

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message=f"wall-clock read {_WALL_CLOCK_CALLS[dotted]!r} "
                            "(prefer time.monotonic()/perf_counter() for "
                            "durations; pass timestamps in for records)",
                    line=node.lineno,
                )


class LockReentryRule:
    """Holding a non-reentrant lock while calling a method that re-acquires it.

    Per class: collect ``self.<attr> = threading.Lock()`` assignments
    (``RLock`` is reentrant and excluded), map each method to the lock
    attributes it acquires via ``with self.<attr>:``, then flag any
    ``self.<method>(...)`` call made *inside* such a ``with`` block when
    the callee acquires the same attribute.  That call can never return —
    it deadlocks the first time the branch executes.
    """

    id = "lock-reentry"
    description = "re-acquiring a held non-reentrant lock deadlocks"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: AnalysisContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._lock_attrs(ctx, methods)
        if not lock_attrs:
            return
        acquires = {m.name: self._acquired_attrs(m, lock_attrs) for m in methods}
        for method in methods:
            for with_node, attr in self._with_blocks(method, lock_attrs):
                for call in ast.walk(with_node):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = self._self_method(call.func)
                    if callee is not None and attr in acquires.get(callee, set()):
                        yield Finding(
                            rule_id=self.id,
                            severity=self.default_severity,
                            message=(
                                f"{cls.name}.{method.name} holds "
                                f"'self.{attr}' and calls self.{callee}(), "
                                f"which re-acquires 'self.{attr}' — this "
                                "deadlocks (use a _locked helper or RLock)"
                            ),
                            line=call.lineno,
                        )

    @staticmethod
    def _lock_attrs(
        ctx: AnalysisContext,
        methods: list[ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> set[str]:
        attrs: set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not (
                    isinstance(node.value, ast.Call)
                    and ctx.dotted_name(node.value.func) == "threading.Lock"
                ):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    @staticmethod
    def _self_lock_attr(node: ast.AST, lock_attrs: set[str]) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in lock_attrs
        ):
            return node.attr
        return None

    @classmethod
    def _with_blocks(
        cls,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> Iterator[tuple[ast.With | ast.AsyncWith, str]]:
        for node in ast.walk(method):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                attr = cls._self_lock_attr(item.context_expr, lock_attrs)
                if attr is not None:
                    yield node, attr

    @classmethod
    def _acquired_attrs(
        cls,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> set[str]:
        acquired: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = cls._self_lock_attr(item.context_expr, lock_attrs)
                    if attr is not None:
                        acquired.add(attr)
            elif isinstance(node, ast.Call):
                # self.X.acquire() counts too
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "acquire"
                    and cls._self_lock_attr(func.value, lock_attrs) is not None
                ):
                    acquired.add(func.value.attr)  # type: ignore[union-attr]
        return acquired

    @staticmethod
    def _self_method(func: ast.AST) -> str | None:
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return func.attr
        return None


#: the self-lint profile run over ``src/repro`` in CI
REPO_RULES = (
    UnseededRandomRule(),
    WallClockRule(),
    LockReentryRule(),
)
