"""Static analysis for generated pipelines and for the repro codebase itself.

The package implements the pre-execution validation pass of the repair
loop (paper Section 4.2: syntactic errors are cheap to find, runtime
errors are expensive) as a multi-pass AST analyzer:

- :mod:`repro.analysis.scopes` — a proper scope-chain name resolver
  (module/function/class/comprehension/lambda scopes, ``global``/
  ``nonlocal``, walrus, ``AnnAssign``, ``match`` captures) replacing the
  old flat ``ast.walk`` name collection;
- :mod:`repro.analysis.rules` — the pluggable rule engine
  (:class:`Rule` protocol, :class:`Finding`, per-rule enable/severity
  :class:`RuleConfig`);
- :mod:`repro.analysis.pipeline_rules` — ML-pipeline rules (data
  leakage, banned APIs, nondeterminism, known-signature misuse);
- :mod:`repro.analysis.repo_rules` — the self-lint profile run over
  ``src/repro`` (unseeded randomness, wall-clock reads, non-reentrant
  lock re-entry — the PR-3 ``CircuitBreaker`` deadlock class);
- :mod:`repro.analysis.engine` — profiles, :func:`analyze_source`,
  and the parallel :func:`lint_paths` driver behind ``repro lint``.

Error-severity findings map onto the 23-type
:class:`~repro.generation.errors.PipelineError` taxonomy so the repair
loop consumes them exactly like execution failures — without paying
``execute_pipeline_code``.
"""

from repro.analysis.engine import (
    PROFILES,
    AnalysisReport,
    FileReport,
    analyze_file,
    analyze_source,
    lint_paths,
    render_findings,
)
from repro.analysis.rules import Finding, Rule, RuleConfig, Severity
from repro.analysis.scopes import Scope, ScopeInfo, build_scopes

__all__ = [
    "AnalysisReport",
    "FileReport",
    "Finding",
    "PROFILES",
    "Rule",
    "RuleConfig",
    "Scope",
    "ScopeInfo",
    "Severity",
    "analyze_file",
    "analyze_source",
    "build_scopes",
    "lint_paths",
    "render_findings",
]
