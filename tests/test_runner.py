"""Tests for the parallel experiment scheduler (``repro.runner``).

Covers the JobGraph model (validation, insertion order), per-job seeded
RNG, worker-count determinism (the parallel == sequential property),
failure isolation + skip propagation under the resilience taxonomy,
ledger-backed resume, concurrent ledger appends, and the live progress
reporter.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.experiments.common import grid_rows, run_grid
from repro.obs.ledger import RunLedger, RunRecord
from repro.resilience.errors import ResilienceGiveUp, TransientError
from repro.runner import (
    GridProgress,
    Job,
    JobGraph,
    JobResult,
    Scheduler,
    config_fingerprint,
    job_rng,
    resolve_experiment_workers,
)


def _grid(n_cells: int = 8, fail_ids: set[str] | None = None) -> JobGraph:
    """A synthetic prepare + fan-out grid whose cells draw from job_rng."""
    fail_ids = fail_ids or set()
    graph = JobGraph()
    graph.add("prepare", lambda: 10.0, seed=0)
    for i in range(n_cells):

        def cell(base, i=i):
            if f"cell:{i}" in fail_ids:
                raise ValueError(f"boom {i}")
            return base + i + float(job_rng().random())

        graph.add(f"cell:{i}", cell, deps=("prepare",),
                  config={"index": i}, seed=0)
    return graph


class TestJobGraph:
    def test_duplicate_id_rejected(self):
        graph = JobGraph()
        graph.add("a", lambda: 1)
        with pytest.raises(ValueError, match="duplicate"):
            graph.add("a", lambda: 2)

    def test_unknown_dep_rejected(self):
        graph = JobGraph()
        with pytest.raises(ValueError, match="unknown job"):
            graph.add("b", lambda: 1, deps=("missing",))

    def test_cycle_detected_by_validate(self):
        graph = JobGraph()
        graph.add("a", lambda: 1)
        graph.add("b", lambda: 2, deps=("a",))
        # add() forbids forward references, so a cycle needs surgery
        graph.jobs["a"].deps = ("b",)
        with pytest.raises(ValueError, match="cycle"):
            graph.validate()

    def test_cells_in_insertion_order(self):
        graph = _grid(5)
        assert [job.job_id for job in graph.cells()] == [
            f"cell:{i}" for i in range(5)
        ]

    def test_fingerprint_is_key_order_invariant_and_distinct(self):
        assert (config_fingerprint({"a": 1, "b": "x"})
                == config_fingerprint({"b": "x", "a": 1}))
        assert (config_fingerprint({"a": 1})
                != config_fingerprint({"a": 2}))

    def test_job_fingerprint_namespaced_by_grid(self):
        job = Job("j", lambda: 1, config={"a": 1})
        assert job.fingerprint("fig13") != job.fingerprint("table8")


class TestJobRng:
    def test_unavailable_outside_scheduled_job(self):
        with pytest.raises(RuntimeError, match="scheduled job"):
            job_rng()

    def test_stream_keyed_by_job_id_and_seed(self):
        a = Job("a", lambda: 1, seed=0).spawn_rng().random()
        a_again = Job("a", lambda: 1, seed=0).spawn_rng().random()
        b = Job("b", lambda: 1, seed=0).spawn_rng().random()
        a_seed1 = Job("a", lambda: 1, seed=1).spawn_rng().random()
        assert a == a_again
        assert a != b
        assert a != a_seed1


class TestScheduler:
    def test_dep_values_passed_in_declaration_order(self):
        graph = JobGraph()
        graph.add("x", lambda: "X")
        graph.add("y", lambda: "Y")
        graph.add("join", lambda x, y: x + y, deps=("x", "y"),
                  config={"cell": True})
        results = Scheduler(workers=2).run(graph)
        assert results["join"].value == "XY"

    def test_results_keyed_in_insertion_order(self):
        graph = _grid(6)
        results = Scheduler(workers=4).run(graph)
        assert list(results) == ["prepare"] + [f"cell:{i}" for i in range(6)]

    def test_parallel_equals_sequential(self):
        sequential = Scheduler(workers=1).run(_grid(12))
        parallel = Scheduler(workers=4).run(_grid(12))
        assert ({k: r.value for k, r in sequential.items()}
                == {k: r.value for k, r in parallel.items()})

    def test_failed_cell_is_isolated(self):
        graph = _grid(6, fail_ids={"cell:3"})
        results = Scheduler(workers=4).run(graph)
        assert results["cell:3"].status == "failed"
        assert results["cell:3"].error_type == "ValueError"
        assert "boom 3" in results["cell:3"].error
        others = [r for k, r in results.items() if k != "cell:3"]
        assert all(r.status == "ok" for r in others)

    def test_failure_classified_by_resilience_taxonomy(self):
        graph = JobGraph()

        def transient():
            raise TransientError("flaky")

        def gave_up():
            raise ResilienceGiveUp("retries exhausted")

        graph.add("t", transient, config={"cell": "t"})
        graph.add("g", gave_up, config={"cell": "g"})
        results = Scheduler(workers=2).run(graph)
        assert results["t"].error_type == "transient"
        assert results["g"].error_type == "give_up"

    def test_failed_setup_skips_dependents_not_grid(self):
        graph = JobGraph()
        graph.add("good", lambda: 1.0)

        def bad():
            raise RuntimeError("no dataset")

        graph.add("bad", bad)
        graph.add("on_bad", lambda b: b, deps=("bad",), config={"c": 1})
        graph.add("on_good", lambda g: g, deps=("good",), config={"c": 2})
        results = Scheduler(workers=2).run(graph)
        assert results["on_bad"].status == "skipped"
        assert results["on_bad"].error_type == "upstream_failed"
        assert "bad" in results["on_bad"].error
        assert results["on_good"].status == "ok"

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPERIMENT_WORKERS", raising=False)
        assert resolve_experiment_workers(None) == 1
        assert resolve_experiment_workers(3) == 3
        assert resolve_experiment_workers(0) >= 1
        monkeypatch.setenv("REPRO_EXPERIMENT_WORKERS", "5")
        assert resolve_experiment_workers(None) == 5
        monkeypatch.setenv("REPRO_EXPERIMENT_WORKERS", "nope")
        assert resolve_experiment_workers(None) == 1


class TestRunGrid:
    def test_rows_follow_definition_order_not_completion(self):
        # Slow early cells + fast late cells: completion order inverts
        # definition order at workers=4, rows must not.
        import time

        graph = JobGraph()
        graph.add("prepare", lambda: 0)
        for i in range(8):

            def cell(_base, i=i):
                time.sleep(0.05 if i < 2 else 0.0)
                return {"index": i}

            graph.add(f"cell:{i}", cell, deps=("prepare",),
                      config={"index": i})
        results = run_grid(graph, workers=4)
        rows = grid_rows(graph, results)
        assert [row["index"] for row in rows] == list(range(8))

    def test_grid_rows_flattens_lists_and_applies_fallback(self):
        graph = JobGraph()
        graph.add("multi", lambda: [{"r": 1}, {"r": 2}], config={"kind": "m"})

        def explode():
            raise ValueError("dead cell")

        graph.add("dead", explode, config={"kind": "d"})
        results = run_grid(graph, workers=2)
        rows = grid_rows(
            graph, results,
            fallback=lambda config, res: {"r": None, "kind": config["kind"]},
        )
        assert rows == [{"r": 1}, {"r": 2}, {"r": None, "kind": "d"}]
        assert grid_rows(graph, results) == [{"r": 1}, {"r": 2}]

    def test_driver_grid_parallel_equals_sequential(self):
        """The acceptance property on a real experiment driver."""
        from repro.experiments import fig13_tokens

        r1 = fig13_tokens.run(datasets=("wifi",), llms=("gemini-1.5",),
                              workers=1)
        r4 = fig13_tokens.run(datasets=("wifi",), llms=("gemini-1.5",),
                              workers=4)
        assert r1.rows == r4.rows
        assert r1.render() == r4.render()


class TestResume:
    def _counting_grid(self, executed: list[str], n: int = 6,
                       fail_ids: set[str] | None = None) -> JobGraph:
        fail_ids = fail_ids or set()
        lock = threading.Lock()
        graph = JobGraph()
        graph.add("prepare", lambda: 1)
        for i in range(n):

            def cell(base, i=i):
                with lock:
                    executed.append(f"cell:{i}")
                if f"cell:{i}" in fail_ids:
                    raise ValueError("first-run failure")
                return base + i

            graph.add(f"cell:{i}", cell, deps=("prepare",),
                      config={"index": i}, seed=0)
        return graph

    def test_second_run_restores_every_cell(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        first_exec: list[str] = []
        first = Scheduler(workers=2, ledger_path=ledger).run(
            self._counting_grid(first_exec)
        )
        assert sorted(first_exec) == sorted(f"cell:{i}" for i in range(6))

        second_exec: list[str] = []
        second = Scheduler(workers=2, ledger_path=ledger, resume=True).run(
            self._counting_grid(second_exec)
        )
        assert second_exec == []  # every cell restored from the ledger
        for i in range(6):
            assert second[f"cell:{i}"].status == "cached"
            assert second[f"cell:{i}"].value == first[f"cell:{i}"].value

    def test_partial_resume_reexecutes_exactly_the_missing_cells(
        self, tmp_path
    ):
        ledger = tmp_path / "ledger.jsonl"
        failing = {"cell:2", "cell:4"}
        first_exec: list[str] = []
        Scheduler(workers=2, ledger_path=ledger).run(
            self._counting_grid(first_exec, fail_ids=failing)
        )
        assert len(first_exec) == 6

        # The retry (same grid, failures gone) must only run the M-K
        # cells that never landed an ok record.
        second_exec: list[str] = []
        results = Scheduler(workers=2, ledger_path=ledger, resume=True).run(
            self._counting_grid(second_exec)
        )
        assert sorted(second_exec) == sorted(failing)
        assert all(results[f"cell:{i}"].ok for i in range(6))
        statuses = {i: results[f"cell:{i}"].status for i in range(6)}
        assert statuses == {0: "cached", 1: "cached", 2: "ok",
                            3: "cached", 4: "ok", 5: "cached"}

    def test_resume_keys_are_grid_namespaced(self, tmp_path):
        # The same cell config under another grid label must not match.
        ledger = tmp_path / "ledger.jsonl"
        first_exec: list[str] = []
        Scheduler(workers=1, ledger_path=ledger, label="gridA").run(
            self._counting_grid(first_exec)
        )
        second_exec: list[str] = []
        Scheduler(workers=1, ledger_path=ledger, resume=True,
                  label="gridB").run(self._counting_grid(second_exec))
        assert len(second_exec) == 6

    def test_one_well_formed_record_per_cell_under_concurrency(
        self, tmp_path
    ):
        ledger_path = tmp_path / "ledger.jsonl"
        Scheduler(workers=4, ledger_path=ledger_path).run(
            self._counting_grid([], n=12)
        )
        ledger = RunLedger(ledger_path)
        cells = [r for r in ledger.iter_records() if r.kind == "runner.cell"]
        assert ledger.skipped_lines == 0
        assert len(cells) == 12
        assert len({r.config["fingerprint"] for r in cells}) == 12


class TestLedgerConcurrency:
    def test_concurrent_appends_stay_line_atomic(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def writer(k: int) -> None:
            barrier.wait(timeout=30)
            for i in range(per_thread):
                # separate RunLedger instances, same path: the per-path
                # lock registry must still serialize them
                RunLedger(ledger.path).append(RunRecord(
                    run_id=f"t{k:02d}i{i:03d}", kind="runner.cell",
                    created_at="2026-01-01T00:00:00Z",
                    outcome={"status": "ok", "value": k * 1000 + i},
                ))

        threads = [threading.Thread(target=writer, args=(k,))
                   for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        records = ledger.records()
        assert ledger.skipped_lines == 0
        assert len(records) == n_threads * per_thread
        assert len({r.run_id for r in records}) == n_threads * per_thread

    def test_malformed_lines_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(RunRecord(run_id="good1", kind="runner.cell",
                                created_at="2026-01-01T00:00:00Z"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json at all\n")
            handle.write('{"valid_json": "but no run_id"}\n')
        ledger.append(RunRecord(run_id="good2", kind="runner.cell",
                                created_at="2026-01-01T00:00:00Z"))
        records = ledger.records()
        assert [r.run_id for r in records] == ["good1", "good2"]
        assert ledger.skipped_lines == 2


class TestGridProgress:
    def test_progress_lines_track_counts(self, capsys):
        progress = GridProgress(total_cells=3, label="demo", enabled=True)
        progress.update(JobResult(job_id="a", status="ok"))
        progress.update(JobResult(job_id="b", status="failed"))
        err = capsys.readouterr().err
        assert "[demo] 1/3 cells, 0 failures" in err
        assert "[demo] 2/3 cells, 1 failures" in err
        assert progress.failures == 1

    def test_disabled_progress_is_silent(self, capsys):
        progress = GridProgress(total_cells=2, label="demo", enabled=False)
        progress.update(JobResult(job_id="a", status="ok"))
        assert capsys.readouterr().err == ""
        assert progress.done == 1


class TestRunnerObservability:
    def test_runner_session_and_per_cell_records(self, tmp_path):
        from repro.obs import disable_tracing, enable_tracing

        enable_tracing(tmp_path)
        try:
            run_grid(_grid(4), workers=2, label="obs-grid")
        finally:
            disable_tracing()
        records = RunLedger(tmp_path / "ledger.jsonl").records()
        kinds = sorted(r.kind for r in records)
        assert kinds.count("runner") == 1
        assert kinds.count("runner.cell") == 4
        runner = next(r for r in records if r.kind == "runner")
        assert runner.config["workers"] == 2
        assert runner.outcome["success"] is True
        counters = runner.metrics["counters"]
        assert counters["runner.jobs_total"] == 5
        assert counters["runner.jobs{status=ok}"] == 5
        assert any(s["name"] == "runner.job" for s in runner.spans)

    def test_worker_rng_streams_match_sequential(self):
        values: dict[int, dict[str, float]] = {}
        for workers in (1, 4):
            graph = JobGraph()
            for i in range(10):
                graph.add(f"cell:{i}",
                          lambda: float(job_rng().standard_normal()),
                          config={"i": i}, seed=7)
            results = Scheduler(workers=workers).run(graph)
            values[workers] = {k: r.value for k, r in results.items()}
        assert values[1] == values[4]
        assert len(set(values[1].values())) == 10  # streams are disjoint


class TestSeedSequenceSpawning:
    def test_rng_matches_seedsequence_contract(self):
        import hashlib

        job = Job("cell:wifi:gemini", lambda: 1, seed=3)
        digest = hashlib.md5(b"cell:wifi:gemini").digest()
        entropy = [3] + [int.from_bytes(digest[i:i + 4], "little")
                         for i in (0, 4, 8, 12)]
        expected = np.random.default_rng(np.random.SeedSequence(entropy))
        assert job.spawn_rng().random() == expected.random()
