"""Benchmark harness: one bench per table/figure of paper Section 5."""
