"""Table 6 — pipeline *execution* runtime on the six cleaning datasets.

Compares the wall-clock runtime of the generated/learned pipelines
(excluding generation time) for CatDB on original and refined data, CAAFE,
AIDE, AutoGen, and the cleaning+augmentation workflow cost.  Reproduced
shape: CatDB's lean pipelines run fastest; cleaning workflows pay a large
upfront cost; CAAFE is dominated by its fixed model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.cleaning import Learn2CleanLike, SagaLike
from repro.baselines.augmentation import adasyn_like, imbalanced_regression_resample
from repro.catalog.refinement import refine_catalog
from repro.experiments.common import (
    format_table,
    grid_rows,
    prepare_dataset,
    run_catdb,
    run_grid,
    run_llm_baseline,
)
from repro.experiments.table4_refinement import REFINEMENT_DATASETS
from repro.llm.mock import MockLLM
from repro.runner import JobGraph

__all__ = ["Table6Result", "run"]


@dataclass
class Table6Result:
    rows: list[dict] = field(default_factory=list)

    def cell(self, dataset: str, system: str) -> float | None:
        for row in self.rows:
            if row["dataset"] == dataset and row["system"] == system:
                return row["seconds"]
        return None

    def render(self) -> str:
        systems = list(dict.fromkeys(r["system"] for r in self.rows))
        datasets = list(dict.fromkeys(r["dataset"] for r in self.rows))
        headers = ["dataset"] + systems
        table_rows = []
        for dataset in datasets:
            cells = [dataset]
            for system in systems:
                value = self.cell(dataset, system)
                cells.append(f"{value:.2f}" if value is not None else "N/A")
            table_rows.append(cells)
        return format_table(headers, table_rows,
                            title="Table 6: pipeline runtime [s]")


def run(
    datasets: tuple[str, ...] = REFINEMENT_DATASETS,
    llm_name: str = "gemini-1.5",
    quick: bool = True,
    seed: int = 0,
    workers: int | None = None,
    resume: bool = False,
    progress: bool = False,
) -> Table6Result:
    import time

    graph = JobGraph()
    for name in datasets:
        graph.add(
            f"prepare:{name}",
            lambda name=name: prepare_dataset(name, seed=seed, quick=quick),
            seed=seed,
        )

        def refine(prepared):
            from repro.api import _replay_structural_ops
            from repro.catalog.materialize import materialize_refined

            refine_llm = MockLLM(llm_name, seed=seed, fault_injection=False)
            refinement = refine_catalog(
                prepared.train, prepared.catalog, refine_llm
            )
            refined_test = _replay_structural_ops(
                materialize_refined(prepared.test, refinement.category_mappings),
                refinement,
            )
            return refinement, refined_test

        graph.add(f"refine:{name}", refine, deps=(f"prepare:{name}",),
                  seed=seed)

    for name in datasets:

        def original_cell(prepared, name=name):
            report = run_catdb(prepared, llm_name=llm_name, seed=seed)
            return {
                "dataset": name, "system": "catdb-original",
                "seconds": report.pipeline_runtime_seconds
                if report.success else None,
            }

        graph.add(
            f"cell:{name}:catdb-original", original_cell,
            deps=(f"prepare:{name}",),
            config={"dataset": name, "system": "catdb-original",
                    "llm": llm_name, "seed": seed, "quick": quick},
            seed=seed,
        )

        def refined_cell(prepared, refined, name=name):
            refinement, refined_test = refined
            report = run_catdb(
                prepared, llm_name=llm_name, seed=seed,
                catalog=refinement.catalog, train=refinement.table,
                test=refined_test,
            )
            return {
                "dataset": name, "system": "catdb-refined",
                "seconds": report.pipeline_runtime_seconds
                if report.success else None,
            }

        graph.add(
            f"cell:{name}:catdb-refined", refined_cell,
            deps=(f"prepare:{name}", f"refine:{name}"),
            config={"dataset": name, "system": "catdb-refined",
                    "llm": llm_name, "seed": seed, "quick": quick},
            seed=seed,
        )

        for system in ("caafe-tabpfn", "caafe-rforest", "aide", "autogen"):

            def baseline_cell(prepared, name=name, system=system):
                report = run_llm_baseline(
                    prepared, system, llm_name=llm_name, seed=seed
                )
                return {
                    "dataset": name, "system": system,
                    "seconds": report.pipeline_runtime_seconds
                    if report.success else None,
                }

            graph.add(
                f"cell:{name}:{system}", baseline_cell,
                deps=(f"prepare:{name}",),
                config={"dataset": name, "system": system,
                        "llm": llm_name, "seed": seed, "quick": quick},
                seed=seed,
            )

        def workflow_cell(prepared, name=name):
            # cleaning + augmentation upfront cost (the workflow's
            # overhead column); one cell, two rows
            cleaning_start = time.perf_counter()
            cleaner = (
                Learn2CleanLike(max_steps=2, seed=seed)
                if prepared.task_type != "regression"
                else SagaLike(generations=1, population=3, seed=seed)
            )
            clean_report = cleaner.clean(
                prepared.train, prepared.target, prepared.task_type
            )
            cleaning_seconds = time.perf_counter() - cleaning_start
            augment_start = time.perf_counter()
            if clean_report.success and clean_report.cleaned is not None:
                if prepared.task_type == "regression":
                    imbalanced_regression_resample(
                        clean_report.cleaned, prepared.target, seed=seed
                    )
                else:
                    adasyn_like(clean_report.cleaned, prepared.target,
                                seed=seed)
            augment_seconds = time.perf_counter() - augment_start
            return [
                {"dataset": name, "system": "cleaning",
                 "seconds": cleaning_seconds if clean_report.success else None},
                {"dataset": name, "system": "augmentation",
                 "seconds": augment_seconds if clean_report.success else None},
            ]

        graph.add(
            f"cell:{name}:workflow", workflow_cell,
            deps=(f"prepare:{name}",),
            config={"dataset": name, "system": "workflow",
                    "seed": seed, "quick": quick},
            seed=seed,
        )

    results = run_grid(graph, workers=workers, resume=resume,
                       progress=progress, label="table6")

    def fallback(config, res):
        if config["system"] == "workflow":
            return [
                {"dataset": config["dataset"], "system": "cleaning",
                 "seconds": None},
                {"dataset": config["dataset"], "system": "augmentation",
                 "seconds": None},
            ]
        return {"dataset": config["dataset"], "system": config["system"],
                "seconds": None}

    result = Table6Result()
    result.rows = grid_rows(graph, results, fallback=fallback)
    return result
