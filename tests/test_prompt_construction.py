"""Tests for rules, projection, combinations, templates, and the builder."""

import pytest

from repro.catalog.profiler import profile_table
from repro.llm.mock import extract_payload
from repro.prompt.builder import build_prompt_plan
from repro.prompt.combinations import METADATA_COMBINATIONS, get_combination
from repro.prompt.projection import clean_catalog, project_schema, select_top_k_columns
from repro.prompt.rules import SECTION_FE, SECTION_MODEL, SECTION_PREPROCESSING, build_rules
from repro.prompt.templates import render_error_prompt, render_pipeline_prompt
from repro.table.table import Table


class TestCombinations:
    def test_eleven_combinations(self):
        assert len(METADATA_COMBINATIONS) == 11

    def test_combination_1_schema_only(self):
        combo = get_combination(1)
        assert combo.items == ["Schema"]

    def test_combination_11_everything(self):
        combo = get_combination(11)
        assert len(combo.items) == 5

    def test_table1_pattern_spot_checks(self):
        assert get_combination(6).distinct_value_count
        assert get_combination(6).missing_value_frequency
        assert not get_combination(6).basic_statistics
        assert get_combination(9).missing_value_frequency
        assert get_combination(9).categorical_values
        assert not get_combination(9).distinct_value_count

    def test_out_of_range(self):
        with pytest.raises(KeyError):
            get_combination(12)


class TestRules:
    def test_missing_values_trigger_impute_rule(self, classification_catalog):
        rules = build_rules(classification_catalog)
        kinds = {r.kind for r in rules}
        assert "impute_missing" in kinds

    def test_model_selection_rule_always_present(self, classification_catalog):
        rules = build_rules(classification_catalog)
        model_rules = [r for r in rules if r.section == SECTION_MODEL]
        assert len(model_rules) == 1
        assert "classification" in model_rules[0].text

    def test_regression_rule_text(self, regression_catalog):
        rules = build_rules(regression_catalog)
        model = next(r for r in rules if r.section == SECTION_MODEL)
        assert "regression" in model.text
        assert "Regressor" in str(model.params["candidates"])

    def test_categorical_encoding_rule(self, classification_catalog):
        rules = build_rules(classification_catalog)
        fe = [r for r in rules if r.section == SECTION_FE]
        assert any(r.kind == "encode_categorical" for r in fe)

    def test_imbalance_triggers_rebalance(self):
        t = Table.from_dict({
            "x": list(range(100)),
            "y": ["maj"] * 90 + ["min"] * 10,
        })
        catalog = profile_table(t, target="y", task_type="binary")
        kinds = {r.kind for r in build_rules(catalog)}
        assert "rebalance" in kinds

    def test_small_dataset_triggers_augmentation(self):
        t = Table.from_dict({"x": range(50), "y": ["a", "b"] * 25})
        catalog = profile_table(t, target="y", task_type="binary")
        kinds = {r.kind for r in build_rules(catalog)}
        assert "augment_small" in kinds

    def test_rule_payload_shape(self, classification_catalog):
        rule = build_rules(classification_catalog)[0]
        payload = rule.to_payload()
        assert set(payload) == {"section", "kind", "text", "params"}


class TestProjection:
    def test_clean_catalog_drops_constant(self):
        t = Table.from_dict({
            "const": ["k"] * 50, "x": range(50), "y": [0, 1] * 25,
        })
        catalog = profile_table(t, target="y", task_type="binary")
        cleaned = clean_catalog(catalog)
        assert "const" not in cleaned

    def test_clean_catalog_drops_low_coverage(self):
        t = Table.from_dict({
            "sparse": [1.0] + [None] * 99,
            "x": range(100), "y": [0, 1] * 50,
        })
        catalog = profile_table(t, target="y", task_type="binary")
        assert "sparse" not in clean_catalog(catalog)

    def test_top_k_prioritizes_categorical(self, classification_catalog):
        sub = select_top_k_columns(classification_catalog, 1)
        names = [p.name for p in sub.feature_profiles()]
        assert names == ["cat"]

    def test_top_k_none_is_identity(self, classification_catalog):
        assert select_top_k_columns(classification_catalog, None) is classification_catalog

    def test_top_k_validates(self, classification_catalog):
        with pytest.raises(ValueError):
            select_top_k_columns(classification_catalog, 0)

    def test_project_schema_combination_1_minimal(self, classification_catalog):
        entries = project_schema(classification_catalog, 1)
        entry = next(e for e in entries if e["name"] == "x1")
        assert "missing_percentage" not in entry
        assert "distinct_count" not in entry
        assert "statistics" not in entry

    def test_project_schema_combination_11_full(self, classification_catalog):
        entries = project_schema(classification_catalog, 11)
        entry = next(e for e in entries if e["name"] == "x1")
        assert "missing_percentage" in entry
        assert "distinct_count" in entry
        cat_entry = next(e for e in entries if e["name"] == "cat")
        assert "categorical_values" in cat_entry

    def test_target_marked(self, classification_catalog):
        entries = project_schema(classification_catalog, 11)
        target = next(e for e in entries if e["name"] == "label")
        assert target["is_target"] is True


class TestTemplates:
    def test_pipeline_prompt_has_payload(self, classification_catalog):
        schema = project_schema(classification_catalog, 11)
        rules = build_rules(classification_catalog)
        text = render_pipeline_prompt(classification_catalog.info, schema, rules)
        payload = extract_payload(text)
        assert payload["task"] == "pipeline"
        assert payload["dataset"]["target"] == "label"
        assert len(payload["rules"]) == len(rules)

    def test_prompt_text_readable_sections(self, classification_catalog):
        schema = project_schema(classification_catalog, 11)
        rules = build_rules(classification_catalog)
        text = render_pipeline_prompt(classification_catalog.info, schema, rules)
        assert "## Dataset" in text
        assert "## Schema and metadata" in text
        assert "## Rules" in text

    def test_error_prompt_structure(self, classification_catalog):
        text = render_error_prompt(
            classification_catalog.info, "code here", "unknown_column",
            "KeyError: 'zz'", 12, attempt=1,
            schema=project_schema(classification_catalog, 11),
            rules=build_rules(classification_catalog),
        )
        assert "<CODE>" in text and "<ERROR>" in text
        payload = extract_payload(text)
        assert payload["task"] == "error_fix"
        assert payload["error"]["line"] == 12
        assert payload["summary"] is not None

    def test_error_prompt_syntax_without_metadata(self, classification_catalog):
        text = render_error_prompt(
            classification_catalog.info, "code", "stray_prose", "bad syntax",
            None, attempt=0, include_metadata=False,
        )
        payload = extract_payload(text)
        assert payload["summary"] is None


class TestBuilder:
    def test_single_prompt_plan(self, classification_catalog):
        plan = build_prompt_plan(classification_catalog, beta=1)
        assert not plan.is_chain
        assert plan.single is not None
        payload = extract_payload(plan.single.text)
        assert payload["subtasks"] == [
            SECTION_PREPROCESSING, SECTION_FE, SECTION_MODEL
        ]

    def test_chain_plan_chunks(self, classification_catalog):
        plan = build_prompt_plan(classification_catalog, beta=2)
        assert plan.is_chain
        assert plan.beta == 2
        feature_names = {
            e["name"] for chunk in plan.schema_chunks for e in chunk
            if e["name"] != "label"
        }
        assert feature_names == {"x1", "x2", "cat"}

    def test_chain_chunks_all_contain_target(self, classification_catalog):
        plan = build_prompt_plan(classification_catalog, beta=2)
        for chunk in plan.schema_chunks:
            assert any(e["name"] == "label" for e in chunk)

    def test_chain_step_carries_previous_code(self, classification_catalog):
        plan = build_prompt_plan(classification_catalog, beta=2)
        prompt = plan.chain_step(SECTION_PREPROCESSING, 1, "PREVIOUS_CODE_XYZ")
        assert "PREVIOUS_CODE_XYZ" in prompt.text

    def test_chain_step_single_raises(self, classification_catalog):
        plan = build_prompt_plan(classification_catalog, beta=1)
        with pytest.raises(ValueError):
            plan.chain_step(SECTION_PREPROCESSING, 0, None)

    def test_model_step_sees_full_schema(self, classification_catalog):
        plan = build_prompt_plan(classification_catalog, beta=2)
        prompt = plan.chain_step(SECTION_MODEL, 0, "code")
        names = {e["name"] for e in prompt.schema}
        assert names == {"x1", "x2", "cat", "label"}

    def test_alpha_reduces_schema(self, classification_catalog):
        plan = build_prompt_plan(classification_catalog, alpha=1, beta=1)
        feature_names = {
            e["name"] for e in plan.single.schema if e["name"] != "label"
        }
        assert len(feature_names) == 1

    def test_invalid_beta(self, classification_catalog):
        with pytest.raises(ValueError):
            build_prompt_plan(classification_catalog, beta=0)
