"""Dataset registry: Table 3 of the paper, with scaled sizes documented.

``load_dataset(name)`` returns a :class:`DatasetBundle` carrying the raw
tables, the unified (joined) table, and the profiling inputs.  The
``paper_rows`` / ``paper_cols`` fields record the original sizes so the
benchmark harness can report the scale factor alongside results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.catalog.catalog import DataCatalog
from repro.catalog.materialize import join_multi_table
from repro.catalog.profiler import profile_table
from repro.datasets import generators as gen
from repro.table.table import Table

__all__ = ["DatasetSpec", "DatasetBundle", "DATASET_SPECS", "list_datasets", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 3."""

    dataset_id: int
    name: str
    task_type: str  # "binary" | "multiclass" | "regression"
    paper_tables: int
    paper_rows: int
    paper_cols: int
    paper_classes: int
    generator: Callable[..., gen.GeneratorResult]
    description: str = ""
    size_class: str = "small"  # "small" | "large" (drives Fig 9 shape)


@dataclass
class DatasetBundle:
    """A loaded dataset, ready for profiling and generation."""

    spec: DatasetSpec
    tables: list[Table]
    target: str
    task_type: str
    join_plan: list[tuple[str, str, str]]
    n_classes: int
    seed: int = 0
    _unified: Table | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def unified(self) -> Table:
        """Single-table (joined) view of the dataset."""
        if self._unified is None:
            if len(self.tables) == 1:
                self._unified = self.tables[0]
            else:
                self._unified = join_multi_table(self.tables, self.join_plan)
        return self._unified

    def profile(
        self,
        seed: int = 0,
        streaming: bool = False,
        chunk_rows: int | None = None,
        **kwargs: Any,
    ) -> DataCatalog:
        if streaming:
            from repro.catalog.streaming import (
                chunks_from_table,
                profile_table_streaming,
            )
            from repro.table.io_csv import DEFAULT_CHUNK_ROWS

            rows_per_chunk = chunk_rows or DEFAULT_CHUNK_ROWS
            table = self.unified
            return profile_table_streaming(
                chunks_from_table(table, rows_per_chunk),
                target=self.target,
                task_type=self.task_type,
                chunk_rows=rows_per_chunk,
                seed=seed,
                name=table.name,
                n_tables=len(self.tables),
                description=self.spec.description,
                **kwargs,
            )
        return profile_table(
            self.unified,
            target=self.target,
            task_type=self.task_type,
            n_tables=len(self.tables),
            description=self.spec.description,
            seed=seed,
            **kwargs,
        )

    @property
    def scale_factor(self) -> float:
        """paper rows / reproduced rows."""
        return self.spec.paper_rows / max(1, self.unified.n_rows)


DATASET_SPECS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASET_SPECS[spec.name] = spec


_register(DatasetSpec(1, "wifi", "binary", 1, 98, 9, 2, gen.make_wifi,
                      "tiny wifi diagnostics; constant column + messy categorical"))
_register(DatasetSpec(2, "diabetes", "binary", 1, 768, 9, 2, gen.make_diabetes,
                      "clinical measurements with unrecorded-as-missing values"))
_register(DatasetSpec(3, "tictactoe", "binary", 1, 958, 10, 2, gen.make_tictactoe,
                      "pure categorical board states"))
_register(DatasetSpec(4, "imdb", "binary", 7, 30_530_313, 15, 2, gen.make_imdb,
                      "7-table movie star schema", size_class="large"))
_register(DatasetSpec(5, "kdd98", "binary", 1, 82_318, 478, 2, gen.make_kdd98,
                      "very wide sparse direct-mail response", size_class="large"))
_register(DatasetSpec(6, "walking", "multiclass", 1, 149_332, 5, 22, gen.make_walking,
                      "narrow accelerometer traces, 22 classes", size_class="large"))
_register(DatasetSpec(7, "cmc", "multiclass", 1, 1_473, 10, 3, gen.make_cmc,
                      "integer-coded categoricals read as numeric by naive profiling"))
_register(DatasetSpec(8, "eu_it", "multiclass", 1, 1_253, 23, 148, gen.make_eu_it,
                      "categorical-only survey with dirty duplicate target labels"))
_register(DatasetSpec(9, "survey", "multiclass", 1, 2_778, 29, 9, gen.make_survey,
                      "survey with sentence feature refinable to categorical"))
_register(DatasetSpec(10, "etailing", "multiclass", 1, 439, 44, 5, gen.make_etailing,
                      "small wide retail survey, duplicate spellings correlate with target"))
_register(DatasetSpec(11, "accidents", "multiclass", 3, 954_036, 46, 6, gen.make_accidents,
                      "3-table traffic accidents", size_class="large"))
_register(DatasetSpec(12, "financial", "multiclass", 8, 552_017, 62, 4, gen.make_financial,
                      "8-table PKDD financial loans", size_class="large"))
_register(DatasetSpec(13, "airline", "multiclass", 19, 445_827, 115, 3, gen.make_airline,
                      "19-table flight delays", size_class="large"))
_register(DatasetSpec(14, "gas_drift", "multiclass", 1, 13_910, 129, 6, gen.make_gas_drift,
                      "wide all-numeric sensor array", size_class="large"))
_register(DatasetSpec(15, "volkert", "multiclass", 1, 58_310, 181, 10, gen.make_volkert,
                      "wide numeric 10-class benchmark", size_class="large"))
_register(DatasetSpec(16, "yelp", "multiclass", 4, 229_907, 194, 9, gen.make_yelp,
                      "4-table reviews with list features and hashed day columns",
                      size_class="large"))
_register(DatasetSpec(17, "bike_sharing", "regression", 1, 17_379, 12, 869,
                      gen.make_bike_sharing, "hourly rental counts"))
_register(DatasetSpec(18, "utility", "regression", 1, 4_574, 13, 95, gen.make_utility,
                      "utility consumption with messy tariff categories"))
_register(DatasetSpec(19, "nyc", "regression", 1, 581_835, 17, 1_811, gen.make_nyc,
                      "taxi fares", size_class="large"))
_register(DatasetSpec(20, "house_sales", "regression", 1, 21_613, 18, 4_028,
                      gen.make_house_sales, "house prices"))


def list_datasets(task_type: str | None = None) -> list[str]:
    """Dataset names in Table 3 order, optionally filtered by task."""
    specs = sorted(DATASET_SPECS.values(), key=lambda s: s.dataset_id)
    return [s.name for s in specs if task_type is None or s.task_type == task_type]


def load_dataset(name: str, seed: int = 0, **overrides: Any) -> DatasetBundle:
    """Generate a dataset by name; ``overrides`` reach the generator
    (e.g. ``n=500`` for a smaller instance)."""
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    spec = DATASET_SPECS[name]
    tables, target, task_type, join_plan, n_classes = spec.generator(
        seed=seed, **overrides
    )
    return DatasetBundle(
        spec=spec, tables=tables, target=target, task_type=task_type,
        join_plan=join_plan, n_classes=n_classes, seed=seed,
    )
