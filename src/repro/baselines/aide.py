"""AIDE-like baseline: an iterative LLM agent with minimal metadata.

AIDE (Schmidt et al.) drives an LLM from a concise human-written task
description plus the bare schema — no profiling, no dataset-specific
rules, no error-aware repair prompts.  On failure it simply resubmits the
original prompt (the paper observed up to 20 retries), which this
reproduction bounds with ``max_retries``.  The lack of metadata shows up
organically: string features get guessed encodings, missing-value handling
is hit-or-miss, and weak models fall back to slow grid searches.
"""

from __future__ import annotations

import time
from typing import Any

from repro.baselines.base import BaselineReport, traced_baseline_run
from repro.analysis.engine import analyze_source
from repro.generation.executor import execute_pipeline_code
from repro.generation.validator import extract_code_block
from repro.llm.base import LLMClient
from repro.llm.mock import embed_payload
from repro.table.table import Table

__all__ = ["AIDEBaseline"]


class AIDEBaseline:
    """Iterative resubmission agent with a bare-schema prompt."""

    name = "aide"

    def __init__(
        self,
        llm: LLMClient,
        max_retries: int = 5,
        description: str = "",
        seed: int = 0,
        exec_mode: str | None = None,
    ) -> None:
        self.llm = llm
        self.max_retries = max_retries
        self.description = description
        self.seed = seed
        self.exec_mode = exec_mode

    def _bare_schema(self, table: Table, target: str) -> list[dict[str, Any]]:
        kind_map = {"numeric": "number", "string": "string", "boolean": "boolean"}
        entries = []
        for column in table:
            entry: dict[str, Any] = {
                "name": column.name,
                "data_type": kind_map[column.kind.value],
            }
            if column.name == target:
                entry["is_target"] = True
            entries.append(entry)
        return entries

    def _prompt(self, train: Table, target: str, task_type: str, attempt: int) -> str:
        schema = self._bare_schema(train, target)
        lines = [
            "# AIDE task",
            f"You are an autonomous data-science agent. {self.description}".strip(),
            f"Build the best possible {task_type} model predicting {target!r}.",
            "Columns: " + ", ".join(
                f"{e['name']}:{e['data_type']}" for e in schema
            ),
        ]
        payload = {
            "task": "pipeline",
            "dataset": {
                "name": train.name, "task_type": task_type, "target": target,
                "n_rows": train.n_rows, "n_cols": train.n_cols,
            },
            "schema": schema,
            "rules": [],  # AIDE provides no dataset-specific rules
            "subtasks": ["preprocessing", "fe-engineering", "model-selection"],
            "iteration": self.seed * 100 + attempt,
        }
        lines.append(embed_payload(payload))
        return "\n".join(lines)

    @traced_baseline_run
    def run(
        self,
        train: Table,
        test: Table,
        target: str,
        task_type: str,
        meta: dict[str, Any] | None = None,
    ) -> BaselineReport:
        report = BaselineReport(system=self.name, dataset=train.name)
        start = time.perf_counter()
        last_error = ""
        for attempt in range(self.max_retries):
            response = self.llm.complete(self._prompt(train, target, task_type, attempt))
            report.prompt_tokens += response.prompt_tokens
            report.completion_tokens += response.completion_tokens
            report.n_llm_requests += 1
            report.llm_latency_seconds += float(
                response.metadata.get("latency_seconds", 0.0)
            )
            code = extract_code_block(response.content)
            if not analyze_source(code).ok:
                last_error = "static"
                continue  # resubmit the same prompt — AIDE has no repair prompt
            result = execute_pipeline_code(code, train, test, mode=self.exec_mode)
            if result.success:
                report.success = True
                report.metrics = result.metrics
                report.pipeline_runtime_seconds = result.runtime_seconds
                report.details["attempts"] = attempt + 1
                report.details["code"] = code
                break
            last_error = result.error.error_type.name if result.error else "unknown"
        else:
            report.failure_reason = f"N/A (failed after {self.max_retries} retries: {last_error})"
        report.total_tokens = report.prompt_tokens + report.completion_tokens
        report.runtime_seconds = time.perf_counter() - start
        return report
