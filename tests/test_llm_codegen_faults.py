"""Tests for pipeline code generation and fault injection/repair."""

import pytest

from repro.generation.errors import ERROR_TYPES, ErrorGroup
from repro.generation.executor import execute_pipeline_code
from repro.generation.validator import validate_source
from repro.llm.codegen import build_encoding_plan, choose_model, generate_pipeline_code
from repro.llm.faults import (
    choose_error_type,
    inject_fault,
    repair_code,
    should_fail,
    strip_injected_lines,
)
from repro.llm.profiles import get_profile
from repro.table.table import Table


def _payload(task_type="binary", rules=True, rich=True):
    schema = [
        {"name": "num", "data_type": "number", "feature_type": "Numerical",
         **({"missing_percentage": 10.0, "statistics": {"std": 1.0}} if rich else {})},
        {"name": "cat", "data_type": "string", "feature_type": "Categorical",
         **({"distinct_count": 3, "categorical_values": ["a", "b", "c"]} if rich else {})},
        {"name": "skills", "data_type": "string", "feature_type": "List",
         "list_delimiter": ","},
        {"name": "free", "data_type": "string", "feature_type": "Sentence"},
        {"name": "const", "data_type": "string", "feature_type": "Constant"},
        {"name": "y",
         "data_type": "string" if task_type != "regression" else "number",
         "feature_type": "Categorical" if task_type != "regression" else "Numerical",
         "is_target": True},
    ]
    rule_list = []
    if rules:
        rule_list = [
            {"section": "preprocessing", "kind": "impute_missing", "text": "t",
             "params": {"strategy_numeric": "median"}},
            {"section": "model-selection", "kind": "model_selection", "text": "t",
             "params": {"task_type": task_type}},
        ]
    return {
        "task": "pipeline",
        "dataset": {"name": "d", "task_type": task_type, "target": "y",
                    "n_rows": 200, "n_cols": len(schema)},
        "schema": schema,
        "rules": rule_list,
        "subtasks": ["preprocessing", "fe-engineering", "model-selection"],
    }


GPT = get_profile("gpt-4o")


class TestEncodingPlan:
    def test_plan_covers_features(self):
        plan, features, dropped = build_encoding_plan(_payload(), GPT, salt=0)
        assert set(features) == {"num", "cat", "skills", "free"}
        assert "const" in dropped

    def test_list_feature_khot(self):
        plan, _, _ = build_encoding_plan(_payload(), GPT, salt=0)
        assert plan["skills"]["encode"] == "khot"
        assert plan["skills"]["delimiter"] == ","

    def test_sentence_feature_hashed(self):
        plan, _, _ = build_encoding_plan(_payload(), GPT, salt=0)
        assert plan["free"]["encode"] == "hash"

    def test_rich_categorical_onehot(self):
        plan, _, _ = build_encoding_plan(_payload(), GPT, salt=0)
        assert plan["cat"]["encode"] == "onehot"

    def test_poor_categorical_ordinal(self):
        plan, _, _ = build_encoding_plan(_payload(rich=False), GPT, salt=0)
        assert plan["cat"]["encode"] == "ordinal"

    def test_imputation_from_rule(self):
        plan, _, _ = build_encoding_plan(_payload(), GPT, salt=0)
        assert plan["num"]["impute"] == "median"

    def test_missing_feature_type_guessed_from_dtype(self):
        payload = _payload()
        for entry in payload["schema"]:
            entry.pop("feature_type", None)
        plan, features, _ = build_encoding_plan(payload, GPT, salt=0)
        assert plan["cat"]["encode"] in ("ordinal", "onehot")


class TestModelChoice:
    def test_guided_prompt_strong_model(self):
        name, ctor, grid = choose_model(_payload(), GPT, salt=0)
        assert name in ("GradientBoostingClassifier", "RandomForestClassifier",
                        "LogisticRegression")
        assert grid is False  # guided prompts never grid search

    def test_regression_models(self):
        name, _, _ = choose_model(_payload("regression"), GPT, salt=0)
        assert "Regressor" in name or name in ("Ridge", "LinearRegression")

    def test_unguided_llama_sometimes_grid_searches(self):
        llama = get_profile("llama3.1-70b")
        grids = [
            choose_model(_payload(rules=False), llama, salt=s)[2]
            for s in range(40)
        ]
        assert any(grids)


class TestGeneratedCode:
    @pytest.fixture
    def tables(self):
        t = Table.from_dict({
            "num": [1.0, 2.0, None, 4.0] * 25,
            "cat": ["a", "b", "c", "a"] * 25,
            "skills": ["x,y", "y", "x", "z"] * 25,
            "free": ["one two", "three four", "five six", "seven"] * 25,
            "const": ["k"] * 100,
            "y": ["p", "n"] * 50,
        })
        return t.take(range(0, 70)), t.take(range(70, 100))

    def test_clean_code_valid_and_executes(self, tables):
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        assert validate_source(code) == []
        result = execute_pipeline_code(code, *tables)
        assert result.success, result.error
        assert "test_auc" in result.metrics

    def test_regression_code_reports_r2(self):
        t = Table.from_dict({
            "num": [float(i) for i in range(100)],
            "cat": ["a", "b"] * 50,
            "skills": ["x,y"] * 100,
            "free": ["some text here"] * 100,
            "const": ["k"] * 100,
            "y": [float(i) * 2 for i in range(100)],
        })
        code = generate_pipeline_code(_payload("regression"), GPT, salt=0)
        result = execute_pipeline_code(code, t.take(range(70)), t.take(range(70, 100)))
        assert result.success, result.error
        assert "test_r2" in result.metrics


class TestFaultInjection:
    def test_every_type_has_injector(self):
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        for error_type in ERROR_TYPES.values():
            corrupted = inject_fault(code, error_type, salt=1)
            assert corrupted != code or error_type.name == "nan_in_features"

    @pytest.mark.parametrize("type_name", [
        "stray_prose", "markdown_fence", "broken_indentation",
        "unclosed_bracket", "truncated_code",
    ])
    def test_syntax_faults_break_parsing(self, type_name):
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        corrupted = inject_fault(code, ERROR_TYPES[type_name], salt=0)
        issues = validate_source(corrupted)
        assert issues, f"{type_name} should produce a static issue"
        assert issues[0].error.group in (ErrorGroup.SE, ErrorGroup.RE)

    @pytest.mark.parametrize("type_name,exception", [
        ("missing_package", "ModuleNotFoundError"),
        ("missing_data_file", "FileNotFoundError"),
        ("wrong_api", "AttributeError"),
        ("undefined_variable", "NameError"),
        ("division_by_zero", "ZeroDivisionError"),
        ("index_out_of_bounds", "IndexError"),
        ("resource_limit", "MemoryError"),
    ])
    def test_runtime_faults_raise_expected_exception(self, type_name, exception):
        t = Table.from_dict({
            "num": [1.0, 2.0, 3.0, 4.0] * 25,
            "cat": ["a", "b", "c", "a"] * 25,
            "skills": ["x,y", "y", "x", "z"] * 25,
            "free": ["one two", "three", "five six", "seven"] * 25,
            "const": ["k"] * 100,
            "y": ["p", "n"] * 50,
        })
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        corrupted = inject_fault(code, ERROR_TYPES[type_name], salt=0)
        result = execute_pipeline_code(corrupted, t.take(range(70)),
                                       t.take(range(70, 100)))
        assert not result.success
        assert ERROR_TYPES[type_name].exception == exception

    def test_unknown_column_fault_raises_keyerror(self):
        t = Table.from_dict({
            "num": [1.0] * 20, "cat": ["a"] * 20, "skills": ["x"] * 20,
            "free": ["t u"] * 20, "const": ["k"] * 20, "y": ["p", "n"] * 10,
        })
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        corrupted = inject_fault(code, ERROR_TYPES["unknown_column"], salt=0)
        result = execute_pipeline_code(corrupted, t, t)
        assert not result.success
        assert result.error.error_type.name == "unknown_column"


class TestRepair:
    @pytest.mark.parametrize("type_name", [
        "stray_prose", "markdown_fence", "missing_package", "wrong_api",
        "undefined_variable", "unknown_column", "division_by_zero",
        "broken_indentation", "unclosed_bracket",
    ])
    def test_repair_restores_valid_code(self, type_name):
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        corrupted = inject_fault(code, ERROR_TYPES[type_name], salt=0)
        fixed = repair_code(corrupted, type_name, payload=_payload(), profile=GPT)
        assert fixed is not None
        assert validate_source(fixed) == []

    def test_truncated_requires_payload(self):
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        corrupted = inject_fault(code, ERROR_TYPES["truncated_code"], salt=0)
        assert repair_code(corrupted, "truncated_code") is None
        fixed = repair_code(corrupted, "truncated_code",
                            payload=_payload(), profile=GPT)
        assert fixed is not None and "def run_pipeline" in fixed

    def test_strip_injected_lines_removes_markers(self):
        code = generate_pipeline_code(_payload(), GPT, salt=0)
        corrupted = inject_fault(code, ERROR_TYPES["missing_package"], salt=0)
        assert "import xgboost" in corrupted
        assert "import xgboost" not in strip_injected_lines(corrupted)


class TestFailureSampling:
    def test_rate_multiplier_raises_failures(self):
        profile = get_profile("gpt-4o")
        base = sum(should_fail(profile, s) for s in range(300))
        raised = sum(
            should_fail(profile, s, rate_multiplier=2.0) for s in range(300)
        )
        assert raised > base

    def test_error_mix_respected(self):
        llama = get_profile("llama3.1-70b")
        groups = [choose_error_type(llama, s).group for s in range(500)]
        re_share = sum(1 for g in groups if g is ErrorGroup.RE) / len(groups)
        assert re_share > 0.85  # Table 2: 94.6% runtime errors for Llama
