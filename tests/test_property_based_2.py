"""Second property-based suite: relational ops, encoders, cost model."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.generation.cost import CostModel
from repro.ml.preprocessing import FeatureHasher, KHotEncoder, SimpleImputer
from repro.table.ops import drop_duplicate_rows, drop_missing_rows, sort_by
from repro.table.table import Table

small_floats = st.floats(allow_nan=False, allow_infinity=False,
                         min_value=-1e3, max_value=1e3)
cells = st.one_of(st.none(), small_floats)


class TestRelationalProperties:
    @given(st.lists(cells, min_size=1, max_size=40))
    def test_sort_is_permutation(self, values):
        t = Table.from_dict({"a": values})
        out = sort_by(t, "a")
        assert sorted(map(str, out["a"].to_list())) == sorted(map(str, values))

    @given(st.lists(small_floats, min_size=1, max_size=40))
    def test_sort_ascending_order(self, values):
        t = Table.from_dict({"a": values})
        out = sort_by(t, "a")["a"].to_list()
        assert out == sorted(values)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_dedup_idempotent(self, values):
        t = Table.from_dict({"a": values})
        once = drop_duplicate_rows(t)
        twice = drop_duplicate_rows(once)
        assert once == twice

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_dedup_count_matches_distinct(self, values):
        t = Table.from_dict({"a": values})
        assert drop_duplicate_rows(t).n_rows == len(set(values))

    @given(st.lists(cells, min_size=1, max_size=40))
    def test_drop_missing_leaves_no_gaps(self, values):
        t = Table.from_dict({"a": values})
        out = drop_missing_rows(t)
        assert out.missing_cells() == 0
        assert out.n_rows == sum(1 for v in values if v is not None)

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=30),
           st.lists(st.integers(0, 9), min_size=1, max_size=30))
    def test_inner_join_row_count(self, left_keys, right_keys):
        left = Table.from_dict({"k": left_keys})
        right = Table.from_dict({"k": sorted(set(right_keys)), })
        joined = left.join(right, on="k", how="inner")
        expected = sum(1 for k in left_keys if k in set(right_keys))
        assert joined.n_rows == expected

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=30))
    def test_left_join_preserves_left_rows(self, keys):
        left = Table.from_dict({"k": keys})
        right = Table.from_dict({"k": [0, 1], "v": ["a", "b"]})
        assert left.join(right, on="k", how="left").n_rows == len(keys)


class TestEncoderProperties:
    @given(st.lists(st.sampled_from(["a", "b", "c", None]), min_size=1, max_size=40))
    def test_imputer_most_frequent_fills_all(self, values):
        X = np.asarray(values, dtype=object).reshape(-1, 1)
        if all(v is None for v in values):
            return
        out = SimpleImputer("most_frequent").fit_transform(X)
        assert all(v is not None for v in out[:, 0])

    @given(st.lists(st.text(alphabet="abc,", min_size=0, max_size=8),
                    min_size=1, max_size=30))
    def test_khot_binary_output(self, values):
        enc = KHotEncoder().fit(values)
        out = enc.transform(values)
        assert set(np.unique(out)) <= {0.0, 1.0}

    @given(st.lists(st.text(min_size=0, max_size=10), min_size=1, max_size=30),
           st.integers(1, 16))
    def test_hasher_width_invariant(self, values, n_features):
        h = FeatureHasher(n_features).fit([])
        out = h.transform(values)
        assert out.shape == (len(values), n_features)

    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=30))
    def test_hasher_deterministic(self, values):
        h = FeatureHasher(8).fit([])
        assert (h.transform(values) == h.transform(values)).all()


class TestCostModelProperties:
    @given(st.lists(st.tuples(st.sampled_from(["pipeline", "error"]),
                              st.integers(0, 5000), st.integers(0, 5000)),
                    max_size=30))
    def test_totals_additive(self, interactions):
        cost = CostModel()
        for role, p, c in interactions:
            cost.record(role, "single", p, c)
        assert cost.total_cost() == cost.pipeline_cost() + cost.error_cost()
        assert cost.total_tokens == cost.prompt_tokens + cost.completion_tokens
        assert cost.total_tokens == sum(p + c for _r, p, c in interactions)

    @given(st.lists(st.sampled_from(["preprocessing", "fe-engineering",
                                     "model-selection"]), max_size=20))
    def test_section_decomposition_covers_total(self, sections):
        cost = CostModel()
        for section in sections:
            cost.record("pipeline", section, 10, 5)
        assert sum(cost.cost_by_section().values()) == cost.total_tokens
