"""Tests for input-validation helpers in repro.ml.base."""

import numpy as np
import pytest

from repro.ml.base import check_X, check_X_y


class TestCheckX:
    def test_1d_reshaped_to_column(self):
        assert check_X([1.0, 2.0]).shape == (2, 1)

    def test_2d_passthrough(self):
        X = np.zeros((3, 2))
        assert check_X(X).shape == (3, 2)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            check_X(np.zeros((2, 2, 2)))

    def test_nan_rejected_by_default(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X([[np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            check_X([[np.inf]])

    def test_nan_allowed_when_opted_in(self):
        X = check_X([[np.nan]], allow_nan=True)
        assert np.isnan(X[0, 0])

    def test_coerces_to_float(self):
        assert check_X([[1, 2]]).dtype == np.float64


class TestCheckXY:
    def test_aligned(self):
        X, y = check_X_y([[1.0], [2.0]], ["a", "b"])
        assert X.shape[0] == y.shape[0] == 2

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            check_X_y([[1.0]], ["a", "b"])

    def test_2d_y_flattened(self):
        _X, y = check_X_y([[1.0], [2.0]], np.array([[0], [1]]))
        assert y.ndim == 1
