"""Table 8 — end-to-end generation runtime (Fail/AVG/SUM per system/LLM)."""

from benchmarks.conftest import LLMS, QUICK, save_result
from repro.experiments import table8_runtime


def test_table08_runtime(benchmark):
    result = benchmark.pedantic(
        lambda: table8_runtime.run(llms=LLMS, quick=QUICK),
        rounds=1, iterations=1,
    )
    save_result("table08_runtime", result.render())

    summary = {(s["system"], s["llm"]): s for s in result.summary()}

    # shape: CatDB and CatDB Chain never fail (paper: Fail = 0 everywhere)
    for llm in LLMS:
        assert summary[("catdb", llm)]["fail"] == 0
        assert summary[("catdb-chain", llm)]["fail"] == 0

    # shape: the baselines fail more often than CatDB
    baseline_fails = sum(
        summary[(system, llm)]["fail"]
        for system in ("caafe-tabpfn", "aide", "autogen")
        for llm in LLMS
        if (system, llm) in summary
    )
    catdb_fails = sum(summary[("catdb", llm)]["fail"] for llm in LLMS)
    assert baseline_fails > catdb_fails

    # CatDB's average runtime stays bounded (quick mode: small datasets)
    for llm in LLMS:
        assert summary[("catdb", llm)]["avg"] is not None
