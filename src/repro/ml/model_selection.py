"""Model selection: splitting, cross-validation, grid / random search."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, clone

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "GridSearchCV",
    "RandomizedSearchCV",
]


def train_test_split(
    *arrays: Any,
    test_size: float = 0.3,
    random_state: int = 0,
    stratify: Sequence | None = None,
) -> list[Any]:
    """Split arrays/tables into train and test partitions.

    Works on numpy arrays and on :class:`repro.table.Table` (anything with
    ``take``).  Returns ``[a_train, a_test, b_train, b_test, ...]``.
    """
    if not arrays:
        raise ValueError("pass at least one array")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = _length(arrays[0])
    for arr in arrays[1:]:
        if _length(arr) != n:
            raise ValueError("all inputs must have the same length")
    rng = np.random.default_rng(random_state)
    if stratify is not None:
        labels = np.asarray(list(stratify))
        test_idx: list[int] = []
        for label in sorted(set(labels.tolist()), key=str):
            members = np.flatnonzero(labels == label)
            rng.shuffle(members)
            k = int(round(test_size * members.shape[0]))
            test_idx.extend(members[:k].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    train_idx = np.flatnonzero(~test_mask)
    test_idx_arr = np.flatnonzero(test_mask)
    out: list[Any] = []
    for arr in arrays:
        out.append(_take(arr, train_idx))
        out.append(_take(arr, test_idx_arr))
    return out


def _length(arr: Any) -> int:
    if hasattr(arr, "n_rows"):
        return arr.n_rows
    return len(arr)


def _take(arr: Any, idx: np.ndarray) -> Any:
    if hasattr(arr, "take") and not isinstance(arr, np.ndarray):
        return arr.take(idx)
    return np.asarray(arr)[idx]


class KFold:
    """Plain k-fold splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n: int | Sequence) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        if not isinstance(n, int):
            n = _length(n)
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} rows into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for k in range(self.n_splits):
            test = folds[k]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != k])
            yield train, test


class StratifiedKFold:
    """Class-balanced k-fold splitter for classification."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int = 0) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, y: Sequence) -> Iterable[tuple[np.ndarray, np.ndarray]]:
        labels = np.asarray(list(y))
        n = labels.shape[0]
        rng = np.random.default_rng(self.random_state)
        per_fold: list[list[int]] = [[] for _ in range(self.n_splits)]
        for label in sorted(set(labels.tolist()), key=str):
            members = np.flatnonzero(labels == label)
            if self.shuffle:
                rng.shuffle(members)
            for i, idx in enumerate(members):
                per_fold[i % self.n_splits].append(int(idx))
        for k in range(self.n_splits):
            test = np.asarray(sorted(per_fold[k]), dtype=np.intp)
            mask = np.ones(n, dtype=bool)
            mask[test] = False
            yield np.flatnonzero(mask), test


def cross_val_score(
    estimator: BaseEstimator,
    X: np.ndarray,
    y: np.ndarray,
    cv: int = 5,
    scoring: Callable[[Sequence, Sequence], float] | None = None,
    random_state: int = 0,
) -> np.ndarray:
    """Fit/score the estimator over k folds; returns per-fold scores."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    is_classifier = getattr(estimator, "_estimator_type", "") == "classifier"
    if is_classifier:
        splitter: Iterable = StratifiedKFold(cv, random_state=random_state).split(y)
    else:
        splitter = KFold(cv, random_state=random_state).split(X.shape[0])
    scores = []
    for train_idx, test_idx in splitter:
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        if scoring is None:
            scores.append(model.score(X[test_idx], y[test_idx]))
        else:
            scores.append(scoring(y[test_idx], model.predict(X[test_idx])))
    return np.asarray(scores, dtype=np.float64)


def _iter_grid(grid: Mapping[str, Sequence[Any]]) -> Iterable[dict[str, Any]]:
    keys = list(grid)
    if not keys:
        yield {}
        return
    head, *tail = keys
    for value in grid[head]:
        for rest in _iter_grid({k: grid[k] for k in tail}):
            yield {head: value, **rest}


class _BaseSearch(BaseEstimator):
    def __init__(
        self,
        estimator: BaseEstimator,
        cv: int = 3,
        scoring: Callable[[Sequence, Sequence], float] | None = None,
        random_state: int = 0,
    ) -> None:
        self.estimator = estimator
        self.cv = cv
        self.scoring = scoring
        self.random_state = random_state

    def _candidates(self) -> list[dict[str, Any]]:
        raise NotImplementedError

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseSearch":
        candidates = self._candidates()
        if not candidates:
            raise ValueError("empty parameter search space")
        self.results_: list[tuple[dict[str, Any], float]] = []
        best_score, best_params = -np.inf, None
        for params in candidates:
            model = clone(self.estimator).set_params(**params)
            scores = cross_val_score(
                model, X, y, cv=self.cv, scoring=self.scoring,
                random_state=self.random_state,
            )
            mean_score = float(scores.mean())
            self.results_.append((params, mean_score))
            if mean_score > best_score:
                best_score, best_params = mean_score, params
        self.best_params_ = best_params
        self.best_score_ = best_score
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("best_estimator_")
        return self.best_estimator_.predict_proba(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        self._check_fitted("best_estimator_")
        return self.best_estimator_.score(X, y)


class GridSearchCV(_BaseSearch):
    """Exhaustive cross-validated grid search."""

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Mapping[str, Sequence[Any]],
        cv: int = 3,
        scoring: Callable[[Sequence, Sequence], float] | None = None,
        random_state: int = 0,
    ) -> None:
        super().__init__(estimator, cv=cv, scoring=scoring, random_state=random_state)
        self.param_grid = dict(param_grid)

    def _candidates(self) -> list[dict[str, Any]]:
        return list(_iter_grid(self.param_grid))


class RandomizedSearchCV(_BaseSearch):
    """Random subsampling of a parameter grid."""

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Mapping[str, Sequence[Any]],
        n_iter: int = 10,
        cv: int = 3,
        scoring: Callable[[Sequence, Sequence], float] | None = None,
        random_state: int = 0,
    ) -> None:
        super().__init__(estimator, cv=cv, scoring=scoring, random_state=random_state)
        self.param_grid = dict(param_grid)
        self.n_iter = n_iter

    def _candidates(self) -> list[dict[str, Any]]:
        everything = list(_iter_grid(self.param_grid))
        if len(everything) <= self.n_iter:
            return everything
        rng = np.random.default_rng(self.random_state)
        picks = rng.choice(len(everything), size=self.n_iter, replace=False)
        return [everything[i] for i in picks]
