"""Figures 11 & 12 source runs — 10 iterations of pipeline generation.

Figure 11 reports AUC distributions over 10 iterations for CatDB, CatDB
Chain, CAAFE (TabPFN / RandomForest), AIDE and AutoGen on Diabetes,
Gas-Drift and Volkert with three LLMs.  Figure 12 reports the token cost
and total runtime of the same runs, so :mod:`fig12_cost_runtime` reuses
this driver's output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import (
    LLM_PROFILES,
    format_table,
    grid_rows,
    prepare_dataset,
    run_catdb,
    run_grid,
    run_llm_baseline,
)
from repro.runner import JobGraph

__all__ = ["IterationRun", "Fig11Result", "run", "ITERATION_DATASETS"]

ITERATION_DATASETS = ("diabetes", "gas_drift", "volkert")
ITERATION_SYSTEMS = ("catdb", "catdb-chain", "caafe-tabpfn", "caafe-rforest",
                     "aide", "autogen")


@dataclass
class IterationRun:
    dataset: str
    llm: str
    system: str
    iteration: int
    success: bool
    metric: float | None
    total_tokens: int
    end_to_end_seconds: float
    pipeline_seconds: float


@dataclass
class Fig11Result:
    runs: list[IterationRun] = field(default_factory=list)

    def metrics_for(self, dataset: str, llm: str, system: str) -> list[float]:
        return [
            r.metric for r in self.runs
            if r.dataset == dataset and r.llm == llm and r.system == system
            and r.success and r.metric is not None
        ]

    def failure_count(self, dataset: str, llm: str, system: str) -> int:
        return sum(
            1 for r in self.runs
            if r.dataset == dataset and r.llm == llm and r.system == system
            and not r.success
        )

    def render(self) -> str:
        headers = ["dataset", "llm", "system", "runs", "fails",
                   "AUC median", "AUC min", "AUC max"]
        rows = []
        combos = sorted({(r.dataset, r.llm, r.system) for r in self.runs})
        for dataset, llm, system in combos:
            metrics = self.metrics_for(dataset, llm, system)
            fails = self.failure_count(dataset, llm, system)
            if metrics:
                rows.append([
                    dataset, llm, system, len(metrics) + fails, fails,
                    f"{100 * float(np.median(metrics)):.1f}",
                    f"{100 * min(metrics):.1f}", f"{100 * max(metrics):.1f}",
                ])
            else:
                rows.append([dataset, llm, system, fails, fails,
                             "fail", "-", "-"])
        return format_table(headers, rows,
                            title="Figure 11: AUC across iterations")


def run(
    datasets: tuple[str, ...] = ITERATION_DATASETS,
    llms: tuple[str, ...] = LLM_PROFILES,
    systems: tuple[str, ...] = ITERATION_SYSTEMS,
    iterations: int = 10,
    quick: bool = True,
    seed: int = 0,
    workers: int | None = None,
    resume: bool = False,
    progress: bool = False,
) -> Fig11Result:
    graph = JobGraph()
    for name in datasets:
        graph.add(
            f"prepare:{name}",
            lambda name=name: prepare_dataset(name, seed=seed, quick=quick),
            seed=seed,
        )
    for name in datasets:
        for llm in llms:
            for iteration in range(iterations):
                for system in systems:

                    def cell(prepared, name=name, llm=llm,
                             iteration=iteration, system=system):
                        if system in ("catdb", "catdb-chain"):
                            report = run_catdb(
                                prepared, llm_name=llm,
                                beta=1 if system == "catdb" else 2,
                                iteration=iteration, seed=seed + iteration,
                                max_fix_attempts=3,
                            )
                            return {
                                "dataset": name, "llm": llm, "system": system,
                                "iteration": iteration,
                                "success": report.success,
                                "metric": report.primary_metric,
                                "total_tokens": report.total_tokens,
                                "end_to_end_seconds": report.end_to_end_seconds,
                                "pipeline_seconds":
                                    report.pipeline_runtime_seconds,
                            }
                        baseline = run_llm_baseline(
                            prepared, system, llm_name=llm,
                            seed=seed + iteration,
                        )
                        return {
                            "dataset": name, "llm": llm, "system": system,
                            "iteration": iteration,
                            "success": baseline.success,
                            "metric": baseline.primary_metric,
                            "total_tokens": baseline.total_tokens,
                            "end_to_end_seconds": baseline.end_to_end_seconds,
                            "pipeline_seconds":
                                baseline.pipeline_runtime_seconds,
                        }

                    graph.add(
                        f"cell:{name}:{llm}:{iteration}:{system}", cell,
                        deps=(f"prepare:{name}",),
                        config={"dataset": name, "llm": llm, "system": system,
                                "iteration": iteration, "seed": seed,
                                "quick": quick},
                        seed=seed + iteration,
                    )
    results = run_grid(graph, workers=workers, resume=resume,
                       progress=progress, label="fig11")
    rows = grid_rows(graph, results, fallback=lambda config, res: {
        "dataset": config["dataset"], "llm": config["llm"],
        "system": config["system"], "iteration": config["iteration"],
        "success": False, "metric": None, "total_tokens": 0,
        "end_to_end_seconds": 0.0, "pipeline_seconds": 0.0,
    })
    result = Fig11Result()
    result.runs = [
        IterationRun(
            row["dataset"], row["llm"], row["system"], row["iteration"],
            row["success"], row["metric"], row["total_tokens"],
            row["end_to_end_seconds"], row["pipeline_seconds"],
        )
        for row in rows
    ]
    return result
