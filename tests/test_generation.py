"""Tests for errors taxonomy, validator, executor, KB, cost model, generator."""

import numpy as np
import pytest

from repro.generation.cost import CostModel
from repro.generation.errors import (
    ERROR_TYPES,
    ErrorGroup,
    PipelineError,
    classify_exception,
    error_types_in_group,
)
from repro.generation.executor import (
    METRIC_PRIORITY,
    ExecutionResult,
    execute_pipeline_code,
    select_primary_metric,
)
from repro.generation.generator import CatDB, CatDBChain
from repro.generation.knowledge_base import KnowledgeBase
from repro.generation.validator import extract_code_block, validate_source
from repro.llm.mock import MockLLM
from repro.ml.model_selection import train_test_split
from repro.table.table import Table


class TestErrorTaxonomy:
    def test_exactly_23_types(self):
        assert len(ERROR_TYPES) == 23

    def test_three_groups_with_expected_sizes(self):
        assert len(error_types_in_group(ErrorGroup.KB)) == 6
        assert len(error_types_in_group(ErrorGroup.SE)) == 6
        assert len(error_types_in_group(ErrorGroup.RE)) == 11

    def test_kb_types_all_patchable(self):
        assert all(e.kb_patchable for e in error_types_in_group(ErrorGroup.KB))

    def test_classify_module_not_found(self):
        error = classify_exception(ModuleNotFoundError("no module named x"))
        assert error.error_type.name == "missing_package"

    def test_classify_keyerror_as_unknown_column(self):
        error = classify_exception(KeyError("no column 'zz'"))
        assert error.error_type.name == "unknown_column"

    def test_classify_valueerror_nan(self):
        error = classify_exception(ValueError("input contains NaN"))
        assert error.error_type.name == "nan_in_features"

    def test_classify_valueerror_shape(self):
        error = classify_exception(ValueError("shape mismatch (3,2) vs (3,4)"))
        assert error.error_type.name == "shape_mismatch"

    def test_classify_unknown_falls_back(self):
        error = classify_exception(OSError("weird"))
        assert error.error_type.name == "no_convergence"

    def test_render_includes_line(self):
        error = PipelineError(ERROR_TYPES["wrong_api"], "boom", line=7)
        assert "(line 7)" in error.render()


class TestValidator:
    def test_clean_code(self):
        code = "import numpy as np\n\ndef run_pipeline(train, test):\n    return {}\n"
        assert validate_source(code) == []

    def test_markdown_fence_detected(self):
        issues = validate_source("```python\nx = 1\n```")
        assert issues[0].type_name == "markdown_fence"

    def test_stray_prose_detected(self):
        issues = validate_source(
            "Here is the code you asked for today\ndef run_pipeline(train, test):\n    return {}"
        )
        assert issues[0].type_name == "stray_prose"

    def test_indentation_detected(self):
        issues = validate_source("def f():\n return 1\n  x = 2\n")
        assert issues[0].type_name == "broken_indentation"

    def test_missing_import_detected(self):
        code = "def run_pipeline(train, test):\n    return {'x': np.zeros(1)}\n"
        issues = validate_source(code)
        assert any(i.type_name == "missing_import" for i in issues)

    def test_missing_entrypoint_detected(self):
        issues = validate_source("x = 1\n")
        assert any(i.type_name == "truncated_code" for i in issues)

    def test_comprehension_targets_not_flagged(self):
        code = (
            "def run_pipeline(train, test):\n"
            "    names = [c for c in train.column_names]\n"
            "    return {'n': len(names)}\n"
        )
        assert validate_source(code) == []

    def test_extract_code_block(self):
        assert extract_code_block("before <CODE>\nx = 1\n</CODE> after") == "x = 1"

    def test_extract_without_tags_returns_text(self):
        assert extract_code_block("plain") == "plain"


class TestExecutor:
    def _tables(self):
        t = Table.from_dict({"x": [1.0, 2.0] * 20, "y": ["a", "b"] * 20})
        return t.take(range(30)), t.take(range(30, 40))

    def test_success(self):
        code = (
            "def run_pipeline(train, test):\n"
            "    return {'test_accuracy': 0.9, 'train_accuracy': 1.0}\n"
        )
        result = execute_pipeline_code(code, *self._tables())
        assert result.success
        assert result.primary_metric == 0.9

    def test_exception_classified_with_line(self):
        code = (
            "def run_pipeline(train, test):\n"
            "    x = 1\n"
            "    raise AttributeError('no method foo')\n"
        )
        result = execute_pipeline_code(code, *self._tables())
        assert not result.success
        assert result.error.error_type.name == "wrong_api"
        assert result.error.line == 3

    def test_missing_entrypoint(self):
        result = execute_pipeline_code("x = 1\n", *self._tables())
        assert not result.success

    def test_non_dict_result_rejected(self):
        result = execute_pipeline_code(
            "def run_pipeline(train, test):\n    return 42\n", *self._tables()
        )
        assert not result.success

    def test_nan_metric_flagged_as_semantic_error(self):
        code = (
            "def run_pipeline(train, test):\n"
            "    return {'test_accuracy': float('nan')}\n"
        )
        result = execute_pipeline_code(code, *self._tables())
        assert not result.success
        assert result.error.error_type.name == "no_convergence"

    def test_out_of_range_metric_flagged(self):
        code = (
            "def run_pipeline(train, test):\n"
            "    return {'test_accuracy': 1.7}\n"
        )
        assert not execute_pipeline_code(code, *self._tables()).success

    def test_syntax_error_classified(self):
        result = execute_pipeline_code("def broken(:\n", *self._tables())
        assert not result.success
        assert result.error.group in (ErrorGroup.SE,)


class TestPrimaryMetric:
    """The documented headline-metric ordering: auc > r2 > accuracy,
    unless a known task type reorders it."""

    ALL = {"test_auc": 0.8, "test_r2": 0.6, "test_accuracy": 0.7}

    def test_priority_is_documented_order(self):
        assert METRIC_PRIORITY == ("test_auc", "test_r2", "test_accuracy")

    def test_auc_wins_without_task_type(self):
        assert select_primary_metric(self.ALL) == 0.8
        assert ExecutionResult(True, metrics=dict(self.ALL)).primary_metric == 0.8

    def test_regression_prefers_r2(self):
        assert select_primary_metric(self.ALL, "regression") == 0.6
        result = ExecutionResult(True, metrics=dict(self.ALL))
        assert result.primary_metric_for("regression") == 0.6

    def test_classification_prefers_auc_then_accuracy(self):
        assert select_primary_metric(self.ALL, "binary") == 0.8
        no_auc = {"test_accuracy": 0.7, "test_r2": 0.6}
        assert select_primary_metric(no_auc, "multiclass") == 0.7

    def test_accuracy_only(self):
        assert select_primary_metric({"test_accuracy": 0.7}) == 0.7

    def test_missing_metrics_return_none(self):
        assert select_primary_metric({}) is None
        assert select_primary_metric({"train_accuracy": 1.0}) is None
        assert ExecutionResult(True, metrics={"model": "RF"}).primary_metric is None

    def test_unknown_task_type_falls_back_to_priority(self):
        assert select_primary_metric(self.ALL, "clustering") == 0.8


class TestKnowledgeBase:
    def test_patch_removes_bad_import(self):
        kb = KnowledgeBase()
        code = "import xgboost\nx = 1\n"
        error = classify_exception(ModuleNotFoundError("No module named 'xgboost'"))
        entry = kb.find_patch(error, code)
        assert entry is not None
        assert "xgboost" not in entry.patch(code)

    def test_no_match_for_unknown_error(self):
        kb = KnowledgeBase()
        error = classify_exception(KeyError("column"))
        assert kb.find_patch(error, "x = 1") is None

    def test_trace_recording_and_distribution(self):
        kb = KnowledgeBase()
        error_re = PipelineError(ERROR_TYPES["unknown_column"], "m")
        error_kb = PipelineError(ERROR_TYPES["missing_package"], "m")
        for _ in range(3):
            kb.record("d", "gemini-1.5", error_re, "llm")
        kb.record("d", "gemini-1.5", error_kb, "kb")
        dist = kb.group_distribution("gemini-1.5")
        assert dist["RE"] == 75.0
        assert dist["KB"] == 25.0

    def test_type_distribution_sorted(self):
        kb = KnowledgeBase()
        for _ in range(2):
            kb.record("d", "m", PipelineError(ERROR_TYPES["wrong_api"], "m"))
        kb.record("d", "m", PipelineError(ERROR_TYPES["unknown_column"], "m"))
        dist = kb.type_distribution()
        assert list(dist)[0] == "wrong_api"

    def test_register_custom_entry(self):
        from repro.generation.knowledge_base import KnowledgeBaseEntry

        kb = KnowledgeBase(entries=[])
        kb.register(KnowledgeBaseEntry(
            name="custom", error_types=("wrong_api",), signature=r"badcall",
            patch=lambda code: code.replace("badcall", "predict"),
        ))
        error = PipelineError(ERROR_TYPES["wrong_api"], "m")
        entry = kb.find_patch(error, "model.badcall(X)")
        assert entry.patch("model.badcall(X)") == "model.predict(X)"


class TestCostModel:
    def test_equation_one_decomposition(self):
        cost = CostModel()
        cost.record("pipeline", "single", 100, 50)
        cost.record("error", "single", 80, 40, attempt=0)
        cost.record("error", "single", 80, 40, attempt=1)
        assert cost.gamma == 1
        assert cost.n_error_prompts == 2
        assert cost.pipeline_cost() == 150
        assert cost.error_cost() == 240
        assert cost.total_cost() == 390
        assert cost.total_tokens == 390

    def test_section_decomposition_equation_two(self):
        cost = CostModel()
        cost.record("pipeline", "preprocessing", 10, 5)
        cost.record("pipeline", "fe-engineering", 20, 5)
        cost.record("pipeline", "model-selection", 30, 5)
        sections = cost.cost_by_section()
        assert sections["preprocessing"] == 15
        assert sections["model-selection"] == 35

    def test_usd_cost(self):
        cost = CostModel()
        cost.record("pipeline", "single", 1000, 1000)
        assert cost.usd_cost(0.001, 0.002) == pytest.approx(0.003)


@pytest.fixture(scope="module")
def generation_setup():
    rng = np.random.default_rng(0)
    n = 240
    x1 = rng.normal(size=n)
    x2 = rng.normal(size=n)
    x1[rng.choice(n, 15, replace=False)] = np.nan
    label = np.where(np.nan_to_num(x1) + x2 > 0, "pos", "neg")
    t = Table.from_dict({
        "x1": x1, "x2": x2,
        "cat": np.where(x2 > 0, "hi", "lo"),
        "label": label,
    }, name="gen")
    labels = [str(v) for v in t["label"]]
    train, test = train_test_split(t, test_size=0.3, random_state=0, stratify=labels)
    from repro.catalog.profiler import profile_table

    catalog = profile_table(t, target="label", task_type="binary")
    return train, test, catalog


class TestCatDBGenerator:
    def test_clean_generation_succeeds(self, generation_setup):
        train, test, catalog = generation_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        report = CatDB(llm).generate(train, test, catalog)
        assert report.success
        assert report.metrics["test_auc"] > 0.7
        assert report.cost.gamma == 1
        assert report.errors == []
        assert not report.fallback_used

    def test_faulty_generation_recovers(self, generation_setup):
        train, test, catalog = generation_setup
        recovered = 0
        for seed in range(6):
            llm = MockLLM("llama3.1-70b", seed=seed)
            report = CatDB(llm, max_fix_attempts=5).generate(
                train, test, catalog, iteration=seed
            )
            assert report.success
            if report.errors:
                recovered += 1
        assert recovered >= 1  # at least one run hit and survived an error

    def test_kb_disabled_routes_to_llm(self, generation_setup):
        train, test, catalog = generation_setup
        # find a seed whose fault is KB-patchable, then compare paths
        for seed in range(40):
            probe = MockLLM("gemini-1.5", seed=seed)
            with_kb = CatDB(probe, max_fix_attempts=5).generate(
                train, test, catalog
            )
            if with_kb.kb_fixes > 0:
                no_kb_llm = MockLLM("gemini-1.5", seed=seed)
                without_kb = CatDB(
                    no_kb_llm, max_fix_attempts=6, use_knowledge_base=False
                ).generate(train, test, catalog)
                assert without_kb.kb_fixes == 0
                assert without_kb.llm_fixes >= 1
                return
        pytest.skip("no KB-patchable fault sampled in 40 seeds")

    def test_report_accounting_consistent(self, generation_setup):
        train, test, catalog = generation_setup
        llm = MockLLM("gpt-4o", seed=1)
        report = CatDB(llm).generate(train, test, catalog)
        assert report.total_tokens == llm.usage.total_tokens
        assert report.end_to_end_seconds >= report.generation_seconds

    def test_combination_controls_prompt(self, generation_setup):
        train, test, catalog = generation_setup
        lean = CatDB(MockLLM("gpt-4o", fault_injection=False), combination=1)
        rich = CatDB(MockLLM("gpt-4o", fault_injection=False), combination=11)
        lean_report = lean.generate(train, test, catalog)
        rich_report = rich.generate(train, test, catalog)
        assert rich_report.cost.prompt_tokens > lean_report.cost.prompt_tokens


class TestCatDBChainGenerator:
    def test_chain_succeeds(self, generation_setup):
        train, test, catalog = generation_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        report = CatDBChain(llm, beta=2).generate(train, test, catalog)
        assert report.success
        assert report.variant == "catdb-chain"
        # beta=2: 2 preprocessing + 2 fe + 1 model-selection prompts
        assert report.cost.gamma == 5

    def test_chain_sections_tracked(self, generation_setup):
        train, test, catalog = generation_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        report = CatDBChain(llm, beta=2).generate(train, test, catalog)
        sections = report.cost.cost_by_section()
        assert "preprocessing" in sections
        assert "model-selection" in sections

    def test_chain_requires_beta_two(self, generation_setup):
        with pytest.raises(ValueError):
            CatDBChain(MockLLM("gpt-4o"), beta=1)

    def test_chain_costs_more_than_single(self, generation_setup):
        train, test, catalog = generation_setup
        single = CatDB(MockLLM("gpt-4o", fault_injection=False)).generate(
            train, test, catalog
        )
        chain = CatDBChain(
            MockLLM("gpt-4o", fault_injection=False), beta=2
        ).generate(train, test, catalog)
        assert chain.total_tokens > single.total_tokens
