"""Data-cleaning comparators: SAGA-like and Learn2Clean-like.

The paper's "AutoML w/ cleaning" workflows run one of these on the
training split, then hand the cleaned data to an AutoML tool (Section 5.1,
Tables 5-7).  Primitives follow Table 7's legend: Decimal-Scale
normalization (DS), Exact/Approximate Duplicate removal (ED/AD),
Inter-Quartile-Range (IQR) and Local-Outlier-Factor (LOF) outlier removal,
EM and MEDIAN imputation, and DROP of incomplete rows.

- :class:`SagaLike` searches pipelines of primitives with a small
  evolutionary loop scored by a downstream proxy model (SAGA optimizes
  cleaning pipelines for ML applications).
- :class:`Learn2CleanLike` greedily picks the best primitive per step
  (Q-learning-flavoured sequencing) and, like the original, *requires
  continuous columns* — it fails on categorical-only data (the paper's
  EU IT observation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines.base import default_vectorize, traced_cleaning_run
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import accuracy_score, r2_score
from repro.ml.model_selection import train_test_split
from repro.table.column import Column, ColumnKind
from repro.table.ops import drop_duplicate_rows, drop_missing_rows
from repro.table.table import Table

__all__ = [
    "CLEANING_PRIMITIVES",
    "CleaningReport",
    "SagaLike",
    "Learn2CleanLike",
]


# ---------------------------------------------------------------------------
# primitives (table -> table; never touch the target column)
# ---------------------------------------------------------------------------

def _numeric_names(table: Table, target: str) -> list[str]:
    return [
        c.name for c in table
        if c.kind is ColumnKind.NUMERIC and c.name != target
    ]


def prim_decimal_scale(table: Table, target: str) -> Table:
    """DS: scale each numeric column by a power of ten into [-1, 1]."""
    out = table.copy()
    for name in _numeric_names(table, target):
        column = out[name]
        values = column.non_missing()
        if values.size == 0:
            continue
        peak = float(np.abs(values).max())
        if peak == 0:
            continue
        power = 10.0 ** np.ceil(np.log10(peak))
        out.set_column(Column.from_numpy(
            name, column.data / power, column.missing.copy(), column.kind
        ))
    return out


def prim_exact_duplicates(table: Table, target: str) -> Table:
    """ED: drop exactly duplicated rows."""
    return drop_duplicate_rows(table)


def prim_approx_duplicates(table: Table, target: str) -> Table:
    """AD: drop rows duplicated after rounding numerics to 2 decimals."""
    names = _numeric_names(table, target)
    if not names:
        return drop_duplicate_rows(table)
    rounded_names = set(names)
    cells_by_column = []
    for name in table.column_names:
        column = table[name]
        if name not in rounded_names:
            cells_by_column.append(column.to_list())
            continue
        # round once per distinct value (Python round: correctly-rounded
        # decimal, unlike np.round's scaled multiply)
        miss = column.missing
        uniq, inverse = np.unique(column.data[~miss], return_inverse=True)
        rounded = np.array(
            [round(float(v), 2) for v in uniq.tolist()], dtype=object
        )
        cells = np.full(table.n_rows, None, dtype=object)
        if uniq.shape[0]:
            cells[~miss] = rounded[inverse]
        cells_by_column.append(cells.tolist())
    keys = list(zip(*cells_by_column)) if cells_by_column else []
    seen: set = set()
    keep = []
    for i, key in enumerate(keys):
        if key in seen:
            continue
        seen.add(key)
        keep.append(i)
    return table.take(np.asarray(keep, dtype=np.intp))


def prim_iqr_outliers(table: Table, target: str) -> Table:
    """IQR: drop rows with any numeric value outside 1.5 IQR fences."""
    keep = np.ones(table.n_rows, dtype=bool)
    for name in _numeric_names(table, target):
        column = table[name]
        values = column.non_missing()
        if values.size < 8:
            continue
        q1, q3 = np.percentile(values, [25, 75])
        iqr = q3 - q1
        lo, hi = q1 - 1.5 * iqr, q3 + 1.5 * iqr
        data = column.data
        bad = (~column.missing) & ((data < lo) | (data > hi))
        keep &= ~bad
    if keep.sum() < max(10, table.n_rows // 10):
        return table  # refuse to drop almost everything
    return table.filter_mask(keep)


def prim_lof_outliers(table: Table, target: str, k: int = 10) -> Table:
    """LOF: drop the ~2% of rows with the lowest local density."""
    names = _numeric_names(table, target)
    if len(names) < 1 or table.n_rows < 30:
        return table
    X = np.column_stack([
        np.nan_to_num(table[n].numeric_values(), nan=0.0) for n in names
    ])
    std = X.std(axis=0)
    X = (X - X.mean(axis=0)) / np.where(std > 0, std, 1.0)
    sample = min(table.n_rows, 800)
    idx = np.random.default_rng(0).choice(table.n_rows, size=sample, replace=False)
    ref = X[idx]
    d2 = (
        np.sum(X**2, axis=1, keepdims=True) - 2 * X @ ref.T + np.sum(ref**2, axis=1)
    )
    d2 = np.maximum(d2, 0)
    kth = np.sort(d2, axis=1)[:, min(k, sample - 1)]
    cutoff = np.quantile(kth, 0.98)
    keep = kth <= cutoff
    if keep.sum() < max(10, table.n_rows // 10):
        return table
    return table.filter_mask(keep)


def prim_em_impute(table: Table, target: str, iterations: int = 3) -> Table:
    """EM: iterative conditional-mean imputation over numeric columns."""
    names = _numeric_names(table, target)
    if not names:
        return table
    X = np.column_stack([table[n].numeric_values() for n in names])
    missing = np.isnan(X)
    col_means = np.nanmean(np.where(np.isinf(X), np.nan, X), axis=0)
    col_means = np.nan_to_num(col_means, nan=0.0)
    filled = np.where(missing, col_means, X)
    for _ in range(iterations):
        mean = filled.mean(axis=0)
        centered = filled - mean
        cov = centered.T @ centered / max(1, filled.shape[0] - 1)
        cov += np.eye(cov.shape[0]) * 1e-6
        # regress each missing cell on the observed cells of its row (diag approx)
        for j in range(filled.shape[1]):
            rows = np.flatnonzero(missing[:, j])
            if rows.size == 0:
                continue
            others = [o for o in range(filled.shape[1]) if o != j]
            if not others:
                continue
            beta = cov[j, others] / (np.diag(cov)[others] + 1e-9)
            filled[rows, j] = mean[j] + (centered[rows][:, others] * beta).sum(axis=1) / max(1, len(others))
    out = table.copy()
    for col_idx, name in enumerate(names):
        out.set_column(Column.from_numpy(
            name, filled[:, col_idx],
            np.zeros(table.n_rows, dtype=bool), ColumnKind.NUMERIC,
        ))
    return out


def prim_median_impute(table: Table, target: str) -> Table:
    """MEDIAN: per-column median (numeric) / mode (categorical) imputation."""
    out = table.copy()
    for column in table:
        if column.name == target or column.n_missing == 0:
            continue
        if column.kind is ColumnKind.NUMERIC:
            values = column.non_missing()
            fill = float(np.median(values)) if values.size else 0.0
        else:
            counts = column.value_counts()
            fill = next(iter(counts)) if counts else "missing"
        out.set_column(column.fill_missing(fill))
    return out


def prim_drop_incomplete(table: Table, target: str) -> Table:
    """DROP: remove rows with any missing feature value."""
    features = [c for c in table.column_names if c != target]
    cleaned = drop_missing_rows(table, subset=features)
    if cleaned.n_rows < max(10, table.n_rows // 10):
        return table
    return cleaned


CLEANING_PRIMITIVES: dict[str, Callable[[Table, str], Table]] = {
    "DS": prim_decimal_scale,
    "ED": prim_exact_duplicates,
    "AD": prim_approx_duplicates,
    "IQR": prim_iqr_outliers,
    "LOF": prim_lof_outliers,
    "EM": prim_em_impute,
    "MEDIAN": prim_median_impute,
    "DROP": prim_drop_incomplete,
}


# ---------------------------------------------------------------------------
# scoring
# ---------------------------------------------------------------------------

def _proxy_score(table: Table, target: str, task_type: str, seed: int = 0) -> float:
    """Small downstream model's holdout score — the cleaning fitness."""
    labels = None if task_type == "regression" else [str(v) for v in table[target]]
    try:
        train, val = train_test_split(
            table, test_size=0.3, random_state=seed, stratify=labels
        )
        X_train, X_val, _ = default_vectorize(train, val, target)
        if task_type == "regression":
            y_train = train[target].astype_numeric().numeric_values()
            y_val = val[target].astype_numeric().numeric_values()
            keep = ~np.isnan(y_train)
            model = RandomForestRegressor(n_estimators=10, max_depth=8, random_state=seed)
            model.fit(X_train[keep], y_train[keep])
            return r2_score(y_val, model.predict(X_val))
        y_train = np.asarray([str(v) for v in train[target]], dtype=object)
        y_val = np.asarray([str(v) for v in val[target]], dtype=object)
        model = RandomForestClassifier(n_estimators=10, max_depth=8, random_state=seed)
        model.fit(X_train, y_train)
        return accuracy_score(y_val, model.predict(X_val))
    except Exception:  # noqa: BLE001 - a broken pipeline scores worst
        return -1.0


@dataclass
class CleaningReport:
    """Outcome of a cleaning search."""

    system: str
    pipeline: list[str] = field(default_factory=list)
    cleaned: Table | None = None
    success: bool = True
    failure_reason: str = ""
    runtime_seconds: float = 0.0
    score: float = 0.0

    @property
    def pipeline_label(self) -> str:
        return " + ".join(self.pipeline) if self.pipeline else "(identity)"


class SagaLike:
    """Evolutionary search over cleaning pipelines (SAGA-flavoured)."""

    name = "saga"

    def __init__(
        self,
        generations: int = 3,
        population: int = 6,
        max_length: int = 3,
        seed: int = 0,
    ) -> None:
        self.generations = generations
        self.population = population
        self.max_length = max_length
        self.seed = seed

    @traced_cleaning_run
    def clean(self, table: Table, target: str, task_type: str) -> CleaningReport:
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        names = list(CLEANING_PRIMITIVES)
        def random_pipeline() -> list[str]:
            length = int(rng.integers(1, self.max_length + 1))
            return list(rng.choice(names, size=length, replace=False))

        def apply(pipeline: list[str]) -> Table:
            out = table
            for prim in pipeline:
                out = CLEANING_PRIMITIVES[prim](out, target)
            return out

        population = [random_pipeline() for _ in range(self.population)]
        best_pipeline: list[str] = []
        best_table = table
        best_score = _proxy_score(table, target, task_type, self.seed)
        for _gen in range(self.generations):
            scored = []
            for pipeline in population:
                cleaned = apply(pipeline)
                score = _proxy_score(cleaned, target, task_type, self.seed)
                scored.append((score, pipeline, cleaned))
            scored.sort(key=lambda t: -t[0])
            if scored[0][0] > best_score:
                best_score, best_pipeline, best_table = scored[0]
            # next generation: keep elite, mutate the rest
            elite = [p for _s, p, _t in scored[: max(1, self.population // 3)]]
            population = list(elite)
            while len(population) < self.population:
                parent = elite[int(rng.integers(0, len(elite)))]
                child = list(parent)
                move = rng.random()
                if move < 0.4 and len(child) < self.max_length:
                    child.append(str(rng.choice(names)))
                elif move < 0.7 and len(child) > 1:
                    child.pop(int(rng.integers(0, len(child))))
                else:
                    child[int(rng.integers(0, len(child)))] = str(rng.choice(names))
                population.append(child)
        return CleaningReport(
            system=self.name, pipeline=best_pipeline, cleaned=best_table,
            runtime_seconds=time.perf_counter() - start, score=best_score,
        )


class Learn2CleanLike:
    """Greedy per-step primitive selection; needs continuous columns."""

    name = "learn2clean"

    def __init__(self, max_steps: int = 3, seed: int = 0) -> None:
        self.max_steps = max_steps
        self.seed = seed

    @traced_cleaning_run
    def clean(self, table: Table, target: str, task_type: str) -> CleaningReport:
        start = time.perf_counter()
        if not _numeric_names(table, target):
            return CleaningReport(
                system=self.name, cleaned=None, success=False,
                failure_reason="N/A (no continuous columns)",
                runtime_seconds=time.perf_counter() - start,
            )
        current = table
        chosen: list[str] = []
        current_score = _proxy_score(table, target, task_type, self.seed)
        for _step in range(self.max_steps):
            best_name, best_table, best_score = "", current, current_score
            for name, primitive in CLEANING_PRIMITIVES.items():
                if name in chosen:
                    continue
                candidate = primitive(current, target)
                score = _proxy_score(candidate, target, task_type, self.seed)
                if score > best_score + 1e-6:
                    best_name, best_table, best_score = name, candidate, score
            if not best_name:
                break
            chosen.append(best_name)
            current, current_score = best_table, best_score
        return CleaningReport(
            system=self.name, pipeline=chosen, cleaned=current,
            runtime_seconds=time.perf_counter() - start, score=current_score,
        )
