"""Table 4 — catalog refinement distinct-value reduction (6 datasets)."""

from benchmarks.conftest import QUICK, save_result
from repro.experiments import table4_refinement


def test_table04_refinement(benchmark):
    result = benchmark.pedantic(
        lambda: table4_refinement.run(quick=QUICK), rounds=1, iterations=1
    )
    save_result("table04_refinement", result.render())

    assert result.rows, "refinement should touch columns on every dirty dataset"
    # shape: systematic reduction of distinct items on refined columns
    reduced = [r for r in result.rows if r["refined"] < r["original"]]
    assert len(reduced) >= 0.6 * len(result.rows)
    reduction = result.reduction_by_dataset()
    # the messy-categorical datasets shrink substantially
    assert reduction.get("wifi", 0) > 0.4
    assert reduction.get("etailing", 0) > 0.2
    # list features detected on yelp
    assert any(
        r["dataset"] == "yelp" and r["operation"] == "list_feature"
        for r in result.rows
    )
