"""Prompt construction (paper Section 3.3-3.4).

Turns data-catalog contents into structured LLM prompts: metadata
projection with top-K column selection (Algorithm 3), rule definition
(Algorithm 2), the Table-1 metadata combinations, and the single /
chained prompt templates of Figure 6 plus the error-correction template
of Figure 7.
"""

from repro.prompt.builder import ChainPromptPlan, Prompt, build_prompt_plan
from repro.prompt.combinations import (
    METADATA_COMBINATIONS,
    MetadataCombination,
    get_combination,
)
from repro.prompt.projection import clean_catalog, project_schema, select_top_k_columns
from repro.prompt.rules import Rule, build_rules
from repro.prompt.templates import (
    render_error_prompt,
    render_pipeline_prompt,
)

__all__ = [
    "ChainPromptPlan",
    "Prompt",
    "build_prompt_plan",
    "METADATA_COMBINATIONS",
    "MetadataCombination",
    "get_combination",
    "clean_catalog",
    "project_schema",
    "select_top_k_columns",
    "Rule",
    "build_rules",
    "render_error_prompt",
    "render_pipeline_prompt",
]
