"""Linear models: least squares, ridge, and (multinomial) logistic regression."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X,
    check_X_y,
)

__all__ = ["LinearRegression", "Ridge", "LogisticRegression"]


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via ``lstsq`` (rank-deficiency safe)."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept

    def fit(self, X: Any, y: Any) -> "LinearRegression":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        if self.fit_intercept:
            X = np.column_stack([np.ones(X.shape[0]), X])
        solution, *_ = np.linalg.lstsq(X, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        return X @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """L2-regularized least squares solved in closed form."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X: Any, y: Any) -> "Ridge":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        return X @ self.coef_ + self.intercept_


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression trained with full-batch gradient
    descent plus momentum and L2 regularization.

    Features should be scaled (the generated pipelines do this); training
    uses an internal feature standardization for stability regardless.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iter: int = 300,
        l2: float = 1e-3,
        tol: float = 1e-6,
        random_state: int = 0,
    ) -> None:
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self.random_state = random_state

    def fit(self, X: Any, y: Any) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        self.classes_ = sorted(set(y.tolist()), key=str)
        if len(self.classes_) < 2:
            raise ValueError("logistic regression needs at least two classes")
        index = {label: i for i, label in enumerate(self.classes_)}
        targets = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for i, label in enumerate(y):
            targets[i, index[label]] = 1.0

        self._mu = X.mean(axis=0)
        std = X.std(axis=0)
        self._sigma = np.where(std > 0, std, 1.0)
        Z = (X - self._mu) / self._sigma
        Z = np.column_stack([np.ones(Z.shape[0]), Z])

        rng = np.random.default_rng(self.random_state)
        W = rng.normal(0.0, 0.01, size=(Z.shape[1], len(self.classes_)))
        velocity = np.zeros_like(W)
        n = Z.shape[0]
        previous_loss = np.inf
        for _ in range(self.max_iter):
            proba = _softmax(Z @ W)
            grad = Z.T @ (proba - targets) / n + self.l2 * W
            velocity = 0.9 * velocity - self.learning_rate * grad
            W = W + velocity
            loss = -np.mean(np.sum(targets * np.log(proba + 1e-12), axis=1))
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.weights_ = W
        return self

    def _scores(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self._mu) / self._sigma
        Z = np.column_stack([np.ones(Z.shape[0]), Z])
        return Z @ self.weights_

    def predict_proba(self, X: Any) -> np.ndarray:
        self._check_fitted("weights_")
        X = check_X(X)
        return _softmax(self._scores(X))

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        picks = np.argmax(proba, axis=1)
        return np.asarray([self.classes_[p] for p in picks], dtype=object)


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
