"""Multi-table (star/snowflake) normalization helpers for dataset generators.

The paper's multi-table datasets (IMDB 7 tables, Financial 8, Airline 19,
Accidents 3, Yelp 4) are star/snowflake schemas whose dimension attributes
join back onto one fact table.  The generators build the denormalized
table first and then *normalize* selected column groups out into dimension
tables; the returned join plan reassembles the original.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.table.column import Column
from repro.table.table import Table

__all__ = ["split_into_dimensions"]


def split_into_dimensions(
    fact: Table,
    groups: dict[str, list[str]],
    rng: np.random.Generator,
    cardinality: int = 40,
) -> tuple[list[Table], list[tuple[str, str, str]]]:
    """Normalize a wide table into fact + dimension tables.

    Each ``groups`` entry moves its columns into a dimension table of
    ``cardinality`` distinct rows; the fact table keeps a key column.  The
    returned join plan re-assembles the original (denormalized) table.
    """
    n = fact.n_rows
    tables: list[Table] = []
    join_plan: list[tuple[str, str, str]] = []
    current = fact
    for dim_name, columns in groups.items():
        key_name = f"{dim_name}_id"
        keys = rng.integers(0, cardinality, size=n)
        dim_data: dict[str, list[Any]] = {key_name: list(range(cardinality))}
        for col_name in columns:
            picks = rng.integers(0, n, size=cardinality)
            # dimension attribute values: one representative per key
            dim_data[col_name] = current[col_name].take(picks).to_list()
        dim = Table.from_dict(dim_data, name=dim_name)
        current = current.drop(columns)
        current.set_column(Column(key_name, keys.tolist()))
        tables.append(dim)
        join_plan.append((current.name, dim_name, key_name))
    return [current] + tables, join_plan
