"""Tests for splits, CV, and hyper-parameter search."""

import numpy as np
import pytest

from repro.ml.linear import Ridge
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    RandomizedSearchCV,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNB
from repro.ml.tree import DecisionTreeClassifier
from repro.table.table import Table


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        X_tr, X_te = train_test_split(X, test_size=0.3, random_state=0)
        assert X_te.shape[0] == 30 and X_tr.shape[0] == 70

    def test_no_overlap_and_complete(self):
        X = np.arange(50)
        X_tr, X_te = train_test_split(X, test_size=0.2, random_state=1)
        assert sorted(np.concatenate([X_tr, X_te]).tolist()) == list(range(50))

    def test_multiple_arrays_aligned(self):
        X = np.arange(20).reshape(-1, 1)
        y = np.arange(20)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, random_state=2)
        assert (X_tr[:, 0] == y_tr).all()
        assert (X_te[:, 0] == y_te).all()

    def test_stratify_preserves_ratio(self):
        y = np.array(["a"] * 80 + ["b"] * 20, dtype=object)
        _tr, te = train_test_split(y, test_size=0.25, stratify=y, random_state=0)
        b_ratio = np.mean(te == "b")
        assert 0.1 < b_ratio < 0.3

    def test_table_input(self):
        t = Table.from_dict({"a": list(range(10))})
        tr, te = train_test_split(t, test_size=0.3, random_state=0)
        assert tr.n_rows + te.n_rows == 10

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), np.arange(6))

    def test_bad_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(5), test_size=1.5)

    def test_deterministic(self):
        X = np.arange(30)
        a = train_test_split(X, random_state=3)[1]
        b = train_test_split(X, random_state=3)[1]
        assert (a == b).all()


class TestKFold:
    def test_partition(self):
        folds = list(KFold(5, random_state=0).split(25))
        all_test = np.concatenate([test for _tr, test in folds])
        assert sorted(all_test.tolist()) == list(range(25))

    def test_train_test_disjoint(self):
        for train, test in KFold(4).split(20):
            assert set(train).isdisjoint(test)

    def test_too_few_rows(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestStratifiedKFold:
    def test_each_fold_has_both_classes(self):
        y = np.array(["a"] * 30 + ["b"] * 10, dtype=object)
        for _train, test in StratifiedKFold(5, random_state=0).split(y):
            labels = set(y[test].tolist())
            assert labels == {"a", "b"}

    def test_partition(self):
        y = np.array(["a", "b"] * 10, dtype=object)
        all_test = np.concatenate([t for _tr, t in StratifiedKFold(4).split(y)])
        assert sorted(all_test.tolist()) == list(range(20))


class TestCrossValScore:
    def test_returns_per_fold_scores(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(90, 3))
        y = np.where(X[:, 0] > 0, "p", "n").astype(object)
        scores = cross_val_score(GaussianNB(), X, y, cv=3)
        assert scores.shape == (3,)
        assert (scores > 0.7).all()

    def test_custom_scoring(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        y = X[:, 0] * 2.0
        scores = cross_val_score(
            Ridge(), X, y, cv=3,
            scoring=lambda t, p: -float(np.mean((np.asarray(t) - np.asarray(p)) ** 2)),
        )
        assert (scores <= 0).all()


class TestSearch:
    def _data(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 3))
        y = np.where(X[:, 0] + X[:, 1] > 0, "a", "b").astype(object)
        return X, y

    def test_grid_search_picks_best(self):
        X, y = self._data()
        search = GridSearchCV(
            DecisionTreeClassifier(), {"max_depth": [1, 6]}, cv=3
        ).fit(X, y)
        assert search.best_params_["max_depth"] == 6
        assert len(search.results_) == 2

    def test_grid_search_predict(self):
        X, y = self._data()
        search = GridSearchCV(DecisionTreeClassifier(), {"max_depth": [3]}).fit(X, y)
        assert search.predict(X[:5]).shape == (5,)
        assert search.predict_proba(X[:5]).shape == (5, 2)
        assert 0 <= search.score(X, y) <= 1

    def test_empty_grid_yields_default_params(self):
        X, y = self._data()
        search = GridSearchCV(DecisionTreeClassifier(), {}).fit(X, y)
        assert search.best_params_ == {}

    def test_randomized_search_bounded(self):
        X, y = self._data()
        search = RandomizedSearchCV(
            DecisionTreeClassifier(),
            {"max_depth": [1, 2, 3, 4, 5, 6], "min_samples_leaf": [1, 2, 5]},
            n_iter=4,
        ).fit(X, y)
        assert len(search.results_) == 4

    def test_randomized_search_small_space_exhaustive(self):
        X, y = self._data()
        search = RandomizedSearchCV(
            DecisionTreeClassifier(), {"max_depth": [2, 4]}, n_iter=10
        ).fit(X, y)
        assert len(search.results_) == 2
