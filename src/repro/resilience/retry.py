"""Bounded retries with exponential backoff and deterministic seeded jitter.

:class:`RetryPolicy` is a frozen value object: how many attempts, how the
backoff grows, which exceptions count as retryable.  :func:`retry_call`
executes a callable under a policy, optionally guarded by a
:class:`~repro.resilience.breaker.CircuitBreaker`, and emits through the
observability layer (``retry.attempts`` / ``retry.recoveries`` /
``retry.giveups`` counters, ``retry.backoff`` spans).

Jitter is *deterministic*: it is derived from a stable hash of the policy
seed plus the caller-supplied salt, never from wall-clock or a global RNG,
so a seeded run schedules exactly the same backoffs every time — parallel
and sequential runs stay bit-identical.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.resilience.errors import BreakerOpen, RetryExhausted, TransientError

__all__ = ["RetryPolicy", "retry_call", "stable_jitter_point"]

T = TypeVar("T")

#: Exception classes retried by default: the simulated transient family
#: plus the builtin transport errors a real HTTP driver would surface.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TransientError,
    TimeoutError,
    ConnectionError,
)


def stable_jitter_point(*parts: Any) -> float:
    """Deterministic point in ``[0, 1)`` from a stable md5 hash of ``parts``."""
    digest = hashlib.md5(
        "\x1f".join(str(p) for p in parts).encode("utf-8")
    ).hexdigest()
    return int(digest[:12], 16) / 16**12


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry one logical call.

    ``max_attempts`` counts the first try, so ``max_attempts=4`` means one
    call plus up to three retries.  The delay before retry ``k`` (0-based)
    is ``min(max_delay, base_delay * multiplier**k)`` scaled down by up to
    ``jitter`` (a fraction in ``[0, 1]``) using deterministic seeded
    jitter — "full jitter" capped at the deterministic point.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt under this policy."""
        return isinstance(exc, self.retryable)

    def delay(self, attempt: int, *salt: Any) -> float:
        """Backoff before retry ``attempt`` (0-based), with seeded jitter."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if raw <= 0 or self.jitter <= 0:
            return max(0.0, raw)
        point = stable_jitter_point("retry-jitter", self.seed, attempt, *salt)
        return raw * (1.0 - self.jitter * point)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    breaker: "Any | None" = None,
    sleep: Callable[[float], None] = time.sleep,
    salt: tuple[Any, ...] = (),
    on_transient: Callable[[BaseException], None] | None = None,
) -> T:
    """Run ``fn`` under ``policy``; raise :class:`RetryExhausted` on give-up.

    ``breaker`` (a :class:`~repro.resilience.breaker.CircuitBreaker`) is
    consulted before every attempt and informed of every outcome; an open
    breaker raises :class:`~repro.resilience.errors.BreakerOpen` straight
    through.  ``salt`` feeds the deterministic jitter so distinct call
    sites schedule distinct (but reproducible) backoffs.  ``on_transient``
    observes each retryable failure (used for fault-type metrics).
    """
    policy = policy or RetryPolicy()
    metrics = get_metrics()
    tracer = get_tracer()
    last_error: BaseException | None = None
    for attempt in range(policy.max_attempts):
        if breaker is not None:
            breaker.before_call()  # raises BreakerOpen when rejecting
        try:
            result = fn()
        except BreakerOpen:
            raise
        except BaseException as exc:  # noqa: BLE001 - classified right below
            if not policy.is_retryable(exc):
                raise
            last_error = exc
            if on_transient is not None:
                on_transient(exc)
            if breaker is not None:
                breaker.record_failure()
            metrics.inc("retry.attempts")
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.delay(attempt, *salt)
            with tracer.span(
                "retry.backoff", attempt=attempt,
                delay_seconds=round(delay, 6),
                error_type=type(exc).__name__,
            ):
                if delay > 0:
                    sleep(delay)
            continue
        if breaker is not None:
            breaker.record_success()
        if attempt > 0:
            metrics.inc("retry.recoveries")
        return result
    metrics.inc("retry.giveups")
    raise RetryExhausted(
        f"gave up after {policy.max_attempts} attempts: "
        f"{type(last_error).__name__}: {last_error}",
        attempts=policy.max_attempts,
        last_error=last_error,
    ) from last_error
