"""Tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.ascii_plot import bar_chart, series_plot


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["catdb", "flaml"], [0.9, 0.45], title="AUC")
        lines = out.splitlines()
        assert lines[0] == "AUC"
        assert lines[1].startswith("catdb")
        assert "0.9" in lines[1]

    def test_longest_bar_is_max(self):
        out = bar_chart(["a", "bb"], [1.0, 0.5])
        bar_a = out.splitlines()[0].split("|")[1]
        bar_b = out.splitlines()[1].split("|")[1]
        assert bar_a.count("█") > bar_b.count("█")

    def test_empty(self):
        assert bar_chart([], [], title="t") == "t"

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_zero_values_ok(self):
        out = bar_chart(["a"], [0.0])
        assert "0.0" in out


class TestSeriesPlot:
    def test_markers_present(self):
        out = series_plot(
            [0, 1, 2],
            {"catdb": [0.9, 0.88, 0.85], "flaml": [0.9, 0.7, 0.5]},
        )
        assert "C" in out and "F" in out
        assert "C=catdb" in out

    def test_none_values_skipped(self):
        out = series_plot([0, 1], {"x": [None, 1.0]})
        # one plotted marker plus the legend entry
        assert out.count("X") == 2

    def test_empty_series(self):
        assert series_plot([0], {"x": [None]}, title="t") == "t"

    def test_constant_series_no_crash(self):
        out = series_plot([0, 1], {"k": [1.0, 1.0]})
        assert "K" in out
