"""Tests for the flow-sensitive layer: CFG construction, reaching
definitions / definite assignment (use-before-def), the provenance-taint
lattice behind the alias-aware leakage rule, and the catalog-grounded
schema rules.

The alias corpus at the bottom pins the cases the old name-substring
heuristic could not see (renamed parameters, aliases, branch- and
loop-carried provenance, split unpacking).
"""

import ast

import numpy as np
import pytest

from repro.analysis import analyze_source
from repro.analysis.cfg import build_cfg, scope_cfgs
from repro.analysis.dataflow import Taint, analyze_dataflow
from repro.catalog.profiler import profile_table
from repro.table.table import Table


def _cfg_of(code: str):
    return build_cfg(ast.parse(code).body)


def _flow(code: str):
    return analyze_dataflow(ast.parse(code))


def _scope(flow, name):
    return next(s for s in flow.scopes if s.name == name)


def _error_rules(code: str, catalog=None) -> set[str]:
    report = analyze_source(code, catalog=catalog)
    return {f.rule_id for f in report.errors()}


def _all_rules(code: str, catalog=None) -> set[str]:
    report = analyze_source(code, catalog=catalog)
    return {f.rule_id for f in report.findings}


class TestCFGConstruction:
    def test_straight_line(self):
        cfg = _cfg_of("a = 1\nb = a\n")
        kinds = [n.kind for n in cfg]
        assert kinds.count("stmt") == 2
        assert cfg.exit.index in cfg.reachable()

    def test_if_merges(self):
        cfg = _cfg_of("if c:\n    x = 1\nelse:\n    x = 2\ny = x\n")
        test = next(n for n in cfg if n.kind == "test")
        assert len(test.succs) == 2

    def test_while_else_edges(self):
        cfg = _cfg_of(
            "while c:\n    body()\nelse:\n    done()\nafter()\n"
        )
        head = next(n for n in cfg if n.kind == "test")
        body = next(
            n for n in cfg
            if n.kind == "stmt" and "body" in ast.dump(n.stmt)
        )
        done = next(
            n for n in cfg
            if n.kind == "stmt" and "done" in ast.dump(n.stmt)
        )
        # back edge, and the else clause hangs off the loop head
        assert head.index in cfg.nodes[body.index].succs
        assert done.index in head.succs

    def test_while_break_skips_else(self):
        cfg = _cfg_of(
            "while c:\n    break\nelse:\n    done()\nafter()\n"
        )
        brk = next(
            n for n in cfg
            if n.kind == "stmt" and isinstance(n.stmt, ast.Break)
        )
        after = next(
            n for n in cfg
            if n.kind == "stmt" and "after" in ast.dump(n.stmt)
        )
        assert after.index in brk.succs

    def test_try_body_reaches_each_handler(self):
        cfg = _cfg_of(
            "try:\n    a = f()\n    b = g()\n"
            "except ValueError:\n    h1()\n"
            "except KeyError:\n    h2()\n"
        )
        handlers = [n for n in cfg if n.kind == "except"]
        assert len(handlers) == 2
        stmts = [
            n for n in cfg
            if n.kind == "stmt" and isinstance(n.stmt, ast.Assign)
        ]
        for handler in handlers:
            for stmt in stmts:
                assert handler.index in stmt.succs
            # pre-try state can also raise straight into the handler
            assert cfg.entry.index in cfg.nodes[handler.index].preds

    def test_nested_try_finally(self):
        cfg = _cfg_of(
            "try:\n"
            "    try:\n"
            "        x = f()\n"
            "    finally:\n"
            "        inner()\n"
            "except Exception:\n"
            "    outer()\n"
            "tail()\n"
        )
        # the finally body sits on the normal path to the tail, and the
        # outer handler is reachable from inside the inner try
        tail = next(
            n for n in cfg
            if n.kind == "stmt" and "tail" in ast.dump(n.stmt)
        )
        inner = next(
            n for n in cfg
            if n.kind == "stmt" and "inner" in ast.dump(n.stmt)
        )
        handler = next(n for n in cfg if n.kind == "except")
        assert tail.index in cfg.reachable()
        assert tail.index in inner.succs
        assign = next(
            n for n in cfg
            if n.kind == "stmt" and isinstance(n.stmt, ast.Assign)
        )
        assert handler.index in assign.succs

    def test_match_without_wildcard_falls_through(self):
        cfg = _cfg_of(
            "match p:\n"
            "    case 1:\n        a()\n"
            "    case 2:\n        b()\n"
            "after()\n"
        )
        subject = next(n for n in cfg if n.kind == "test")
        after = next(
            n for n in cfg
            if n.kind == "stmt" and "after" in ast.dump(n.stmt)
        )
        assert after.index in subject.succs  # no case may match

    def test_match_wildcard_is_complete(self):
        cfg = _cfg_of(
            "match p:\n"
            "    case 1:\n        a()\n"
            "    case _:\n        b()\n"
            "after()\n"
        )
        subject = next(n for n in cfg if n.kind == "test")
        after = next(
            n for n in cfg
            if n.kind == "stmt" and "after" in ast.dump(n.stmt)
        )
        # the wildcard case guarantees one arm runs
        assert after.index not in subject.succs

    def test_with_binds_item(self):
        cfg = _cfg_of("with open(p) as fh:\n    fh.read()\n")
        item = next(n for n in cfg if n.kind == "withitem")
        assert isinstance(item.binds, ast.Name) and item.binds.id == "fh"

    def test_return_ends_flow(self):
        cfg = build_cfg(
            ast.parse(
                "def f():\n    return 1\n    dead()\n"
            ).body[0].body,
            "f",
        )
        dead = [
            n for n in cfg
            if n.kind == "stmt" and n.stmt is not None
            and "dead" in ast.dump(n.stmt)
        ]
        assert not dead  # unreachable tail is not even materialized

    def test_scope_cfgs_one_per_function(self):
        tree = ast.parse(
            "def f():\n    pass\n\nclass C:\n    def m(self):\n        pass\n"
        )
        names = [cfg.name for _, cfg in scope_cfgs(tree)]
        assert names == ["<module>", "f", "m"]


class TestUseBeforeDef:
    def test_definite(self):
        flow = _flow("print(x)\nx = 1\n")
        (ubd,) = flow.use_before_def
        assert ubd.name == "x" and ubd.definite

    def test_branch_dependent_is_maybe(self):
        flow = _flow("if c:\n    x = 1\nprint(x)\nc = 1\n")
        ubd = next(u for u in flow.use_before_def if u.name == "x")
        assert not ubd.definite

    def test_both_branches_bind_is_clean(self):
        flow = _flow(
            "c = 1\nif c:\n    x = 1\nelse:\n    x = 2\nprint(x)\n"
        )
        assert not [u for u in flow.use_before_def if u.name == "x"]

    def test_try_finally_stays_precise(self):
        # no handlers: the finally body always runs after the full try
        # body, so x IS definitely assigned — no spurious maybe-finding
        flow = _flow(
            "try:\n    x = f()\nfinally:\n    print(x)\nf = None\n"
        )
        assert not [u for u in flow.use_before_def if u.name == "x"]

    def test_except_path_is_maybe(self):
        flow = _flow(
            "try:\n    x = f()\nexcept Exception:\n    pass\n"
            "print(x)\nf = None\n"
        )
        ubd = next(u for u in flow.use_before_def if u.name == "x")
        assert not ubd.definite

    def test_loop_carried_binding_is_maybe(self):
        flow = _flow("for i in rng:\n    print(total)\n    total = i\nrng = []\n")
        ubd = next(u for u in flow.use_before_def if u.name == "total")
        assert not ubd.definite

    def test_foreign_names_not_candidates(self):
        # a name never bound in the scope is a runtime NameError (or a
        # global), not a flow finding
        flow = _flow("print(undefined_thing)\n")
        assert not flow.use_before_def

    def test_walrus_is_a_binding(self):
        flow = _flow("if (n := 3) > 2:\n    print(n)\n")
        assert not flow.use_before_def

    def test_rule_severity_split(self):
        definite = (
            "def run_pipeline(train, test):\n"
            "    model.fit(train)\n"
            "    model = object()\n"
            "    return {}\n"
        )
        report = analyze_source(definite)
        assert "use-before-def" in {f.rule_id for f in report.errors()}
        maybe = (
            "def run_pipeline(train, test):\n"
            "    if len(train) > 1:\n"
            "        model = object()\n"
            "    model.fit(train)\n"
            "    return {}\n"
        )
        report = analyze_source(maybe)
        assert "branch-use-before-def" in {f.rule_id for f in report.warnings()}


class TestTaintLattice:
    def test_join_is_or(self):
        assert Taint.TRAIN | Taint.TEST is Taint.WHOLE
        assert (Taint.UNKNOWN | Taint.TRAIN) is Taint.TRAIN

    def test_run_pipeline_positional_seeding(self):
        flow = _flow(
            "def run_pipeline(a_split, b_split):\n"
            "    m = object()\n"
            "    m.fit(b_split)\n"
        )
        (fit,) = flow.fit_calls
        assert fit.worst() is Taint.TEST

    def test_concat_makes_whole(self):
        flow = _flow(
            "def run_pipeline(train, test):\n"
            "    full = concat(train, test)\n"
            "    scaler.fit(full)\n"
            "    scaler = object()\n"
            "    concat = None\n"
        )
        fit = next(f for f in flow.fit_calls)
        assert fit.worst() is Taint.WHOLE

    def test_split_unpack_provenance(self):
        flow = _flow(
            "a, b = train_test_split(data)\n"
            "m.fit(b)\n"
        )
        (fit,) = flow.fit_calls
        assert fit.worst() is Taint.TEST

    def test_subscript_weak_update(self):
        # writing a test-derived column into train makes train suspect
        flow = _flow(
            "def run_pipeline(train, test):\n"
            "    train['leak'] = test['y']\n"
            "    m.fit(train)\n"
        )
        (fit,) = flow.fit_calls
        assert fit.worst() is Taint.WHOLE

    def test_subscript_taints_recorded(self):
        flow = _flow(
            "def run_pipeline(train, test):\n"
            "    x = train['col']\n"
        )
        assert Taint.TRAIN in flow.subscript_taints.values()


#: alias/branch leakage shapes invisible to a name-substring heuristic:
#: none of the fitted expressions contains "test" in its name
_ALIAS_LEAKS = {
    "renamed-params": (
        "def run_pipeline(tr_part, holdout):\n"
        "    scaler = object()\n"
        "    scaler.fit(holdout)\n"
        "    return {}\n"
    ),
    "simple-alias": (
        "def run_pipeline(train, test):\n"
        "    eval_df = test\n"
        "    scaler = object()\n"
        "    scaler.fit(eval_df)\n"
        "    return {}\n"
    ),
    "two-level-alias": (
        "def run_pipeline(train, test):\n"
        "    a = test\n"
        "    b = a\n"
        "    scaler = object()\n"
        "    scaler.fit(b)\n"
        "    return {}\n"
    ),
    "branch-alias": (
        "def run_pipeline(train, test):\n"
        "    data = train\n"
        "    if len(test) > 10:\n"
        "        data = test\n"
        "    scaler = object()\n"
        "    scaler.fit(data)\n"
        "    return {}\n"
    ),
    "split-unpack": (
        "def run_pipeline(train, test):\n"
        "    a, b = train_test_split(train)\n"
        "    merged = concat(a, b, test)\n"
        "    scaler = object()\n"
        "    scaler.fit(merged)\n"
        "    concat = None\n"
        "    return {}\n"
    ),
    "loop-carried": (
        "def run_pipeline(train, test):\n"
        "    acc = train\n"
        "    for part in (train, test):\n"
        "        acc = combine(acc, part)\n"
        "    scaler = object()\n"
        "    scaler.fit(acc)\n"
        "    combine = None\n"
        "    return {}\n"
    ),
}


class TestAliasLeakageCorpus:
    @pytest.mark.parametrize("name", sorted(_ALIAS_LEAKS))
    def test_alias_case_flagged(self, name):
        assert "data-leakage" in _error_rules(_ALIAS_LEAKS[name]), name

    @pytest.mark.parametrize("name", sorted(_ALIAS_LEAKS))
    def test_alias_case_misses_name_heuristic(self, name):
        # the fitted argument never carries a test-ish *name*: confirm
        # each case is invisible to a substring check on the call text
        code = _ALIAS_LEAKS[name]
        tree = ast.parse(code)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fit"
            ):
                for arg in node.args:
                    assert not any(
                        "test" in n.id.lower()
                        for n in ast.walk(arg)
                        if isinstance(n, ast.Name)
                    ), name

    def test_fit_on_train_alias_is_clean(self):
        clean = (
            "def run_pipeline(train, test):\n"
            "    X = train\n"
            "    scaler = object()\n"
            "    scaler.fit(X)\n"
            "    return {}\n"
        )
        assert "data-leakage" not in _all_rules(clean)

    def test_transform_on_test_is_clean(self):
        clean = (
            "def run_pipeline(train, test):\n"
            "    scaler = object()\n"
            "    scaler.fit(train)\n"
            "    out = scaler.transform(test)\n"
            "    return {}\n"
        )
        assert "data-leakage" not in _all_rules(clean)


@pytest.fixture(scope="module")
def schema_catalog():
    rng = np.random.default_rng(0)
    n = 60
    t = Table.from_dict({
        "age": rng.integers(18, 80, size=n).astype(float),
        "city": np.where(rng.normal(size=n) > 0, "north", "south"),
        "income": rng.normal(50_000, 10_000, size=n),
        "label": np.where(rng.normal(size=n) > 0, "yes", "no"),
    }, name="schema")
    return profile_table(t, target="label", task_type="binary")


class TestSchemaRules:
    def test_unknown_column_flagged_with_suggestion(self, schema_catalog):
        code = (
            "def run_pipeline(train, test):\n"
            "    x = train['agee']\n"
            "    return {}\n"
        )
        report = analyze_source(code, catalog=schema_catalog)
        finding = next(
            f for f in report.errors() if f.rule_id == "schema-column"
        )
        assert "did you mean 'age'" in finding.message

    def test_features_entry_checked(self, schema_catalog):
        code = (
            "FEATURES = ['age', 'cityy']\n"
            "def run_pipeline(train, test):\n"
            "    return {}\n"
        )
        assert "schema-column" in _error_rules(code, schema_catalog)

    def test_locally_created_column_ok(self, schema_catalog):
        code = (
            "def run_pipeline(train, test):\n"
            "    train['derived'] = train['age']\n"
            "    x = train['derived']\n"
            "    return {}\n"
        )
        assert "schema-column" not in _all_rules(code, schema_catalog)

    def test_plain_dict_subscripts_ignored(self, schema_catalog):
        code = (
            "def run_pipeline(train, test):\n"
            "    metrics = {'train_accuracy': 1.0}\n"
            "    return metrics['train_accuracy']\n"
        )
        assert "schema-column" not in _all_rules(code, schema_catalog)

    def test_untainted_subscripts_ignored(self, schema_catalog):
        code = "conf = load()\nx = conf['not_a_column']\nload = None\n"
        assert "schema-column" not in _all_rules(code, schema_catalog)

    def test_target_in_features_flagged(self, schema_catalog):
        code = (
            "FEATURES = ['age', 'label']\n"
            "def run_pipeline(train, test):\n"
            "    return {}\n"
        )
        report = analyze_source(code, catalog=schema_catalog)
        assert any(
            f.rule_id == "schema-target" and f.error_type == "task_mismatch"
            for f in report.errors()
        )

    def test_bogus_target_constant_flagged(self, schema_catalog):
        code = "TARGET = 'labl'\n"
        report = analyze_source(code, catalog=schema_catalog)
        finding = next(
            f for f in report.errors() if f.rule_id == "schema-target"
        )
        assert "did you mean 'label'" in finding.message

    def test_string_column_arithmetic_flagged(self, schema_catalog):
        code = (
            "def run_pipeline(train, test):\n"
            "    x = train['city'] * 2\n"
            "    return {}\n"
        )
        assert "schema-dtype" in _error_rules(code, schema_catalog)

    def test_numeric_column_vs_string_constant(self, schema_catalog):
        code = (
            "def run_pipeline(train, test):\n"
            "    mask = train['age'] > 'old'\n"
            "    return {}\n"
        )
        assert "schema-dtype" in _error_rules(code, schema_catalog)

    def test_compatible_ops_clean(self, schema_catalog):
        code = (
            "def run_pipeline(train, test):\n"
            "    x = train['income'] / 1000\n"
            "    mask = train['age'] > 40\n"
            "    keep = train['city'] == 'north'\n"
            "    return {}\n"
        )
        assert not _error_rules(code, schema_catalog)

    def test_no_catalog_no_findings(self):
        code = (
            "def run_pipeline(train, test):\n"
            "    x = train['whatever'] * 2\n"
            "    return {}\n"
        )
        rules = _all_rules(code)
        assert not rules & {"schema-column", "schema-target", "schema-dtype"}


class TestAnalyzerPerformance:
    def test_flow_sensitive_pass_is_fast(self, schema_catalog):
        # the CI micro-benchmark gates the p50; this is the coarse local
        # guard — a representative pipeline must analyze well under the
        # 15 ms budget even with the catalog rules on
        import time

        code = (
            "import numpy as np\n"
            "FEATURES = ['age', 'city', 'income']\n"
            "TARGET = 'label'\n"
            "def run_pipeline(train, test):\n"
            "    tr = train\n"
            "    scaler = Scaler()\n"
            "    scaler.fit(np.asarray(tr['income']))\n"
            "    for col in FEATURES:\n"
            "        pass\n"
            "    if len(test) > 10:\n"
            "        holdout = test\n"
            "    else:\n"
            "        holdout = test\n"
            "    preds = scaler.transform(np.asarray(holdout['income']))\n"
            "    metrics = {'test_accuracy': float(len(preds))}\n"
            "    return metrics\n"
            "class Scaler:\n"
            "    def fit(self, x):\n"
            "        return self\n"
            "    def transform(self, x):\n"
            "        return x\n"
        )
        analyze_source(code, catalog=schema_catalog)  # warm up imports
        start = time.perf_counter()
        rounds = 20
        for _ in range(rounds):
            analyze_source(code, catalog=schema_catalog)
        per_pass_ms = (time.perf_counter() - start) * 1000 / rounds
        assert per_pass_ms < 15, f"{per_pass_ms:.2f} ms per analysis pass"
