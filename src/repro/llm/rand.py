"""Deterministic hashing utilities for the simulated LLM.

Every "random" choice the mock model makes is derived from a stable md5
hash of its inputs, so identical prompts give identical outputs (the
paper runs LLMs at temperature zero) while different iterations — which
mix an iteration counter into the hash — vary, matching the residual
variation the paper reports.
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence

import numpy as np

__all__ = ["stable_hash", "stable_rng", "weighted_pick"]


def stable_hash(*parts: Any) -> int:
    """64-bit deterministic hash of the string forms of ``parts``."""
    digest = hashlib.md5("\x1f".join(str(p) for p in parts).encode("utf-8"))
    return int(digest.hexdigest()[:16], 16)


def stable_rng(*parts: Any) -> np.random.Generator:
    """Numpy generator seeded from :func:`stable_hash`."""
    return np.random.default_rng(stable_hash(*parts) % (2**63))


def weighted_pick(options: Sequence[Any], weights: Sequence[float], *hash_parts: Any) -> Any:
    """Deterministically pick one option proportionally to ``weights``."""
    if len(options) != len(weights):
        raise ValueError("options and weights must align")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = (stable_hash(*hash_parts) % 10**9) / 10**9 * total
    cumulative = 0.0
    for option, weight in zip(options, weights):
        cumulative += weight
        if point < cumulative:
            return option
    return options[-1]
