"""Shared baseline-report structure and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.generation.executor import select_primary_metric
from repro.ml.metrics import accuracy_score, r2_score, roc_auc_score
from repro.ml.pipeline import TableVectorizer
from repro.obs.trace import traced
from repro.table.table import Table

__all__ = [
    "BaselineReport",
    "evaluate_predictions",
    "default_vectorize",
    "traced_baseline_run",
    "traced_cleaning_run",
]


def traced_baseline_run(fn):
    """Span-wrap a baseline's ``run(self, train, test, ...)`` method.

    All comparator systems (CAAFE, AIDE, AutoGen, mini-AutoML) route
    through the observability tracer via this decorator, so ``--trace``
    covers baseline runs with the same span/ledger machinery as CatDB.
    Timings inside baselines use monotonic ``time.perf_counter`` only —
    never wall-clock ``time.time`` — so runtimes cannot go negative under
    clock adjustment.
    """
    return traced(
        "baseline.run",
        lambda self, train, *a, **k: {
            "system": self.name, "dataset": train.name,
        },
    )(fn)


def traced_cleaning_run(fn):
    """Span-wrap a cleaning tool's ``clean(self, table, ...)`` method."""
    return traced(
        "baseline.clean",
        lambda self, table, *a, **k: {
            "system": self.name, "dataset": table.name,
        },
    )(fn)


@dataclass
class BaselineReport:
    """Outcome of one baseline run, aligned with GenerationReport fields."""

    system: str
    dataset: str
    success: bool = False
    failure_reason: str = ""  # "OOM" | "TO" | "N/A" | free text
    metrics: dict[str, Any] = field(default_factory=dict)
    total_tokens: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    runtime_seconds: float = 0.0  # wall-clock work
    llm_latency_seconds: float = 0.0
    pipeline_runtime_seconds: float = 0.0
    n_llm_requests: int = 0
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def end_to_end_seconds(self) -> float:
        return self.runtime_seconds + self.llm_latency_seconds

    @property
    def primary_metric(self) -> float | None:
        """Headline test metric under the documented fixed priority
        (``test_auc`` > ``test_r2`` > ``test_accuracy``)."""
        return select_primary_metric(self.metrics)

    def primary_metric_for(self, task_type: str) -> float | None:
        """Task-aware headline metric (regression prefers ``test_r2``)."""
        return select_primary_metric(self.metrics, task_type)


def evaluate_predictions(
    task_type: str,
    y_train: np.ndarray,
    y_test: np.ndarray,
    train_pred: np.ndarray,
    test_pred: np.ndarray,
    train_proba: np.ndarray | None = None,
    test_proba: np.ndarray | None = None,
    labels: list | None = None,
) -> dict[str, float]:
    """The metric set all systems report (train/test accuracy + AUC or R2)."""
    if task_type == "regression":
        return {
            "train_r2": r2_score(y_train, train_pred),
            "test_r2": r2_score(y_test, test_pred),
        }
    metrics = {
        "train_accuracy": accuracy_score(y_train, train_pred),
        "test_accuracy": accuracy_score(y_test, test_pred),
    }
    if train_proba is not None and test_proba is not None and labels is not None:
        try:
            metrics["train_auc"] = roc_auc_score(y_train, train_proba, labels=labels)
            metrics["test_auc"] = roc_auc_score(y_test, test_proba, labels=labels)
        except ValueError:
            metrics["train_auc"] = metrics["train_accuracy"]
            metrics["test_auc"] = metrics["test_accuracy"]
    else:
        metrics["train_auc"] = metrics["train_accuracy"]
        metrics["test_auc"] = metrics["test_accuracy"]
    return metrics


def default_vectorize(
    train: Table, test: Table, target: str
) -> tuple[np.ndarray, np.ndarray, TableVectorizer]:
    """Vanilla featurization every AutoML tool starts from: median-imputed
    scaled numerics, one-hot categoricals — no cleaning, no refinement."""
    vectorizer = TableVectorizer(target=target)
    X_train = vectorizer.fit_transform(train)
    X_test = vectorizer.transform(test)
    return X_train, X_test, vectorizer
