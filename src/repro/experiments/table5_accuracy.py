"""Table 5 — accuracy on the six cleaning datasets.

Compares CatDB on original versus refined data against CAAFE (TabPFN and
RandomForest backends), AIDE, AutoGen, AutoML tools, and data-cleaning +
AutoML workflows.  Reproduced shapes: refinement lifts CatDB's test
accuracy substantially on dirty datasets (EU IT, Etailing, Yelp);
CAAFE-TabPFN fails on large data; cleaning workflows help AutoML but stay
behind CatDB refined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.baselines.cleaning import Learn2CleanLike, SagaLike
from repro.catalog.materialize import materialize_refined
from repro.catalog.refinement import refine_catalog
from repro.experiments.common import (
    format_table,
    grid_rows,
    metric_str,
    prepare_dataset,
    run_automl,
    run_catdb,
    run_grid,
    run_llm_baseline,
)
from repro.experiments.table4_refinement import REFINEMENT_DATASETS
from repro.llm.mock import MockLLM
from repro.runner import JobGraph

__all__ = ["Table5Result", "run"]

_TRAIN_KEYS = ("train_accuracy", "train_auc", "train_r2")
_TEST_KEYS = ("test_accuracy", "test_auc", "test_r2")


def _train_test(metrics: dict[str, Any]) -> tuple[float | None, float | None]:
    train = next((metrics[k] for k in _TRAIN_KEYS if k in metrics), None)
    test = next((metrics[k] for k in _TEST_KEYS if k in metrics), None)
    return train, test


@dataclass
class Table5Result:
    rows: list[dict] = field(default_factory=list)

    def cell(self, dataset: str, system: str) -> dict | None:
        for row in self.rows:
            if row["dataset"] == dataset and row["system"] == system:
                return row
        return None

    def render(self) -> str:
        systems = sorted({r["system"] for r in self.rows})
        datasets = list(dict.fromkeys(r["dataset"] for r in self.rows))
        headers = ["system"] + [f"{d} (train/test)" for d in datasets]
        table_rows = []
        for system in systems:
            cells = [system]
            for dataset in datasets:
                row = self.cell(dataset, system)
                if row is None:
                    cells.append("-")
                elif row["failure"]:
                    cells.append(row["failure"])
                else:
                    cells.append(
                        f"{metric_str(row['train'])}/{metric_str(row['test'])}"
                    )
            table_rows.append(cells)
        return format_table(headers, table_rows,
                            title="Table 5: accuracy on six cleaning datasets")


def _row(dataset: str, system: str, metrics: dict, failure: str = "",
         extra: dict | None = None) -> dict:
    train, test = _train_test(metrics or {})
    return {
        "dataset": dataset, "system": system,
        "train": train, "test": test, "failure": failure,
        **(extra or {}),
    }


def run(
    datasets: tuple[str, ...] = REFINEMENT_DATASETS,
    llm_name: str = "gemini-1.5",
    automl_tools: tuple[str, ...] = ("h2o", "flaml", "autogluon"),
    automl_budget: float = 6.0,
    quick: bool = True,
    seed: int = 0,
    workers: int | None = None,
    resume: bool = False,
    progress: bool = False,
) -> Table5Result:
    graph = JobGraph()
    for name in datasets:
        graph.add(
            f"prepare:{name}",
            lambda name=name: prepare_dataset(name, seed=seed, quick=quick),
            seed=seed,
        )

        def refine(prepared):
            from repro.api import _replay_structural_ops

            refine_llm = MockLLM(llm_name, seed=seed, fault_injection=False)
            refinement = refine_catalog(
                prepared.train, prepared.catalog, refine_llm
            )
            refined_test = _replay_structural_ops(
                materialize_refined(prepared.test,
                                    refinement.category_mappings),
                refinement,
            )
            return refinement, refined_test

        graph.add(f"refine:{name}", refine, deps=(f"prepare:{name}",),
                  seed=seed)

        def clean(prepared):
            # cleaning + AutoML workflow: best of SAGA / Learn2Clean lookalikes
            cleaners = [SagaLike(generations=1, population=3, seed=seed),
                        Learn2CleanLike(max_steps=2, seed=seed)]
            best_clean = None
            for cleaner in cleaners:
                clean_report = cleaner.clean(prepared.train, prepared.target,
                                             prepared.task_type)
                if clean_report.success and (
                    best_clean is None or clean_report.score > best_clean.score
                ):
                    best_clean = clean_report
            return best_clean

        graph.add(f"clean:{name}", clean, deps=(f"prepare:{name}",),
                  seed=seed)

    for name in datasets:

        def original_cell(prepared, name=name):
            report = run_catdb(prepared, llm_name=llm_name, seed=seed)
            return _row(name, "catdb-original", report.metrics,
                        "" if report.success else "N/A")

        graph.add(
            f"cell:{name}:catdb-original", original_cell,
            deps=(f"prepare:{name}",),
            config={"dataset": name, "system": "catdb-original",
                    "llm": llm_name, "seed": seed, "quick": quick},
            seed=seed,
        )

        def refined_cell(prepared, refined, name=name):
            refinement, refined_test = refined
            report = run_catdb(
                prepared, llm_name=llm_name, seed=seed,
                catalog=refinement.catalog, train=refinement.table,
                test=refined_test,
            )
            return _row(name, "catdb-refined", report.metrics,
                        "" if report.success else "N/A")

        graph.add(
            f"cell:{name}:catdb-refined", refined_cell,
            deps=(f"prepare:{name}", f"refine:{name}"),
            config={"dataset": name, "system": "catdb-refined",
                    "llm": llm_name, "seed": seed, "quick": quick},
            seed=seed,
        )

        for system in ("caafe-tabpfn", "caafe-rforest", "aide", "autogen"):

            def baseline_cell(prepared, name=name, system=system):
                report = run_llm_baseline(prepared, system,
                                          llm_name=llm_name, seed=seed)
                return _row(name, system, report.metrics,
                            "" if report.success
                            else report.failure_reason or "N/A")

            graph.add(
                f"cell:{name}:{system}", baseline_cell,
                deps=(f"prepare:{name}",),
                config={"dataset": name, "system": system,
                        "llm": llm_name, "seed": seed, "quick": quick},
                seed=seed,
            )

        for tool in automl_tools:

            def automl_cell(prepared, name=name, tool=tool):
                report = run_automl(prepared, tool,
                                    time_budget_seconds=automl_budget,
                                    seed=seed)
                return _row(name, tool, report.metrics,
                            "" if report.success
                            else report.failure_reason or "N/A")

            graph.add(
                f"cell:{name}:{tool}", automl_cell,
                deps=(f"prepare:{name}",),
                config={"dataset": name, "system": tool, "seed": seed,
                        "budget": automl_budget, "quick": quick},
                seed=seed,
            )

        for tool in automl_tools:

            def clean_cell(prepared, best_clean, name=name, tool=tool):
                if best_clean is None or best_clean.cleaned is None:
                    return _row(name, f"clean+{tool}", {}, "N/A")
                report = run_automl(
                    prepared, tool, time_budget_seconds=automl_budget,
                    seed=seed, train=best_clean.cleaned, test=prepared.test,
                )
                return _row(
                    name, f"clean+{tool}", report.metrics,
                    "" if report.success else report.failure_reason or "N/A",
                    extra={"cleaning_method": best_clean.system,
                           "cleaning_pipeline": best_clean.pipeline_label},
                )

            graph.add(
                f"cell:{name}:clean+{tool}", clean_cell,
                deps=(f"prepare:{name}", f"clean:{name}"),
                config={"dataset": name, "system": f"clean+{tool}",
                        "seed": seed, "budget": automl_budget,
                        "quick": quick},
                seed=seed,
            )

    results = run_grid(graph, workers=workers, resume=resume,
                       progress=progress, label="table5")
    result = Table5Result()
    result.rows = grid_rows(graph, results, fallback=lambda config, res: _row(
        config["dataset"], config["system"], {}, "N/A",
    ))
    return result
