"""Command-line interface: ``python -m repro`` / ``catdb-repro``.

Subcommands:

- ``datasets``            list the 20 Table-3 dataset replicas
- ``profile <dataset>``   profile a dataset and print its catalog
- ``generate <dataset>``  run CatDB end-to-end and print code + metrics
- ``experiment <id>``     run one paper experiment (fig9, table4, ...)
- ``soak``                fault-injection soak: N seeded generate runs
                          under a flaky transport, asserting graceful
                          degradation and determinism
- ``runs``                inspect the observability run ledger
                          (``list`` / ``show <id>`` / ``diff <a> <b>``)
- ``lint``                scope-aware static analysis over .py files
                          (``--profile repo`` self-lints the substrate;
                          ``--profile pipeline`` applies the generated-
                          code gate); see ``docs/static_analysis.md``

``generate`` and ``soak`` expose the resilience knobs (``--max-retries``,
``--llm-timeout``, ``--exec-timeout``, ``--fault-rate``); see
``docs/resilience.md``.  They also expose the execution-isolation knobs
(``--exec-mode inproc|pool``, ``--exec-memory-mb``); ``soak
--adversarial --exec-mode pool`` runs the hostile-pipeline containment
gate; see ``docs/execution_pool.md``.

``profile``, ``generate``, and ``experiment`` accept ``--trace`` to record
span trees + metrics into the run ledger (``--runs-dir``, default
``runs/``); see ``docs/observability.md``.

Grid-shaped experiments (table2/5/6/7/8, fig11/12/13/14) run on the
parallel scheduler: ``--workers N`` (default ``$REPRO_EXPERIMENT_WORKERS``
or 1, ``0`` = all cores), ``--resume`` to skip cells already in the run
ledger, ``--progress`` for a live cell counter; see
``docs/architecture.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.execpool.config import EXEC_MODES, MEMORY_ENV, MODE_ENV
from repro.table.io_csv import DEFAULT_CHUNK_ROWS

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig9": ("repro.experiments.fig9_profiling", {}),
    "fig10": ("repro.experiments.fig10_metadata", {"llms": ("gemini-1.5",)}),
    "table2": ("repro.experiments.table2_errors", {"iterations": 4}),
    "table4": ("repro.experiments.table4_refinement", {}),
    "table5": ("repro.experiments.table5_accuracy", {}),
    "table6": ("repro.experiments.table6_runtime", {}),
    "fig11": ("repro.experiments.fig11_iterations", {"iterations": 2}),
    "fig12": ("repro.experiments.fig12_cost_runtime", {"iterations": 2}),
    "table7": ("repro.experiments.table7_single_iteration",
               {"llms": ("gemini-1.5",)}),
    "fig13": ("repro.experiments.fig13_tokens", {"llms": ("gemini-1.5",)}),
    "table8": ("repro.experiments.table8_runtime", {"llms": ("gemini-1.5",)}),
    "fig14": ("repro.experiments.fig14_robustness", {}),
}

# Experiments whose run() is a grid over the parallel scheduler and accepts
# workers/resume/progress (fig9's own --profile-workers knob is unrelated:
# it sizes the *profiling* pool, not the experiment grid).
_GRID_EXPERIMENTS = frozenset({
    "table2", "table5", "table6", "table7", "table8",
    "fig11", "fig12", "fig13", "fig14",
})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="catdb-repro",
        description="CatDB reproduction: catalog-guided LLM pipeline generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_args(command: argparse.ArgumentParser) -> None:
        command.add_argument("--trace", action="store_true",
                             help="record spans + metrics to the run ledger")
        command.add_argument("--runs-dir", default=None,
                             help="ledger directory (default: runs/ or "
                                  "$REPRO_RUNS_DIR)")

    def _add_resilience_args(
        command: argparse.ArgumentParser,
        fault_rate_default: float = 0.0,
        exec_timeout_default: float | None = None,
    ) -> None:
        command.add_argument("--max-retries", type=int, default=None,
                             help="transport retries after the first "
                                  "attempt (default 3 once resilience "
                                  "is active)")
        command.add_argument("--llm-timeout", type=float, default=None,
                             help="per-LLM-call deadline in seconds")
        command.add_argument("--exec-timeout", type=float,
                             default=exec_timeout_default,
                             help="wall-clock budget per generated-"
                                  "pipeline execution in seconds")
        command.add_argument("--fault-rate", type=float,
                             default=fault_rate_default,
                             help="transient-fault injection rate "
                                  "(FlakyLLM; 0 disables)")
        command.add_argument("--exec-mode", default=None,
                             choices=list(EXEC_MODES),
                             help="pipeline execution backend: inproc "
                                  "(default) or pool (isolated subprocess "
                                  "workers; $REPRO_EXEC_MODE)")
        command.add_argument("--exec-memory-mb", type=int, default=None,
                             help="address-space cap per pool execution "
                                  "in MiB (pool mode only; "
                                  "$REPRO_EXEC_MEMORY_MB)")

    sub.add_parser("datasets", help="list the 20 dataset replicas")

    profile = sub.add_parser("profile", help="profile a dataset")
    add_trace_args(profile)
    profile.add_argument("dataset",
                         help="registry dataset name, or a CSV path "
                              "(with --streaming and --target)")
    profile.add_argument("--rows", type=int, default=None,
                         help="override generated row count")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--profile-workers", type=int, default=None,
                         help="profiling worker-pool size "
                              "(1 = sequential, 0 = all cores)")
    profile.add_argument("--streaming", action="store_true",
                         help="profile chunk-by-chunk with mergeable "
                              "sketches (constant memory)")
    profile.add_argument("--chunk-rows", type=int, default=None,
                         help="rows per streaming chunk "
                              f"(default {DEFAULT_CHUNK_ROWS})")
    profile.add_argument("--target", default=None,
                         help="target column (required for CSV paths)")
    profile.add_argument("--task-type", default="binary",
                         choices=["binary", "multiclass", "regression"],
                         help="task type for CSV paths")

    generate = sub.add_parser("generate", help="generate a pipeline with CatDB")
    add_trace_args(generate)
    generate.add_argument("dataset")
    generate.add_argument("--llm", default="gpt-4o",
                          help="gpt-4o | gemini-1.5 | llama3.1-70b")
    generate.add_argument("--beta", type=int, default=1,
                          help=">=2 selects CatDB Chain")
    generate.add_argument("--alpha", type=int, default=None,
                          help="top-K feature columns")
    generate.add_argument("--combination", type=int, default=11,
                          help="Table-1 metadata combination (1-11)")
    generate.add_argument("--refine", action="store_true",
                          help="run catalog refinement first")
    generate.add_argument("--rows", type=int, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--profile-workers", type=int, default=None,
                          help="profiling worker-pool size "
                               "(1 = sequential, 0 = all cores)")
    generate.add_argument("--show-code", action="store_true")
    _add_resilience_args(generate)

    soak = sub.add_parser(
        "soak",
        help="fault-injection soak: seeded generate runs under FlakyLLM",
    )
    add_trace_args(soak)
    soak.add_argument("--dataset", default="wifi")
    soak.add_argument("--rows", type=int, default=120)
    soak.add_argument("--seeds", type=int, default=50,
                      help="number of seeded runs")
    soak.add_argument("--llm", default="gpt-4o")
    soak.add_argument("--beta", type=int, default=1)
    soak.add_argument("--no-determinism-check", action="store_true",
                      help="skip comparing faulted pipelines against the "
                           "faults-off baseline")
    soak.add_argument("--adversarial", action="store_true",
                      help="run the adversarial containment soak instead: "
                           "hostile pipelines (hang/OOM/segfault/exit/"
                           "flood) must be contained and classified")
    _add_resilience_args(soak, fault_rate_default=0.3, exec_timeout_default=10.0)

    experiment = sub.add_parser("experiment", help="run one paper experiment")
    add_trace_args(experiment)
    experiment.add_argument("artifact", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--workers", type=int, default=None,
                            help="experiment grid worker threads "
                                 "(default $REPRO_EXPERIMENT_WORKERS or 1; "
                                 "0 = all cores; grid experiments only)")
    experiment.add_argument("--resume", action="store_true",
                            help="skip grid cells already recorded in the "
                                 "run ledger (implies reading --runs-dir)")
    experiment.add_argument("--progress", action="store_true",
                            help="live `N/M cells` progress on stderr")
    experiment.add_argument("--datasets", default=None,
                            help="comma-separated dataset subset "
                                 "(grid experiments only)")
    experiment.add_argument("--exec-mode", default=None,
                            choices=list(EXEC_MODES),
                            help="pipeline execution backend for every "
                                 "grid cell (exported as $REPRO_EXEC_MODE "
                                 "so scheduler workers inherit it)")
    experiment.add_argument("--exec-memory-mb", type=int, default=None,
                            help="address-space cap per pool execution "
                                 "in MiB (exported as "
                                 "$REPRO_EXEC_MEMORY_MB)")

    runs = sub.add_parser("runs", help="inspect the observability run ledger")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    runs_list.add_argument("--dir", default=None,
                           help="ledger directory (default: runs/)")
    runs_show = runs_sub.add_parser(
        "show", help="render one run's span tree + metrics"
    )
    runs_show.add_argument("run_id", help="run id (or unique prefix)")
    runs_show.add_argument("--dir", default=None)
    runs_diff = runs_sub.add_parser(
        "diff", help="per-phase wall-time + token delta between two runs"
    )
    runs_diff.add_argument("run_a")
    runs_diff.add_argument("run_b")
    runs_diff.add_argument("--dir", default=None)

    results = sub.add_parser(
        "results", help="collate regenerated benchmark results"
    )
    results.add_argument("--dir", default=None,
                         help="results directory (default: benchmarks/results)")

    lint = sub.add_parser(
        "lint", help="scope-aware static analysis over .py files"
    )
    lint.add_argument("paths", nargs="+",
                      help="files or directories to analyze")
    lint.add_argument("--profile", default="repo",
                      choices=("repo", "pipeline", "validate"),
                      help="rule profile (default: repo self-lint)")
    lint.add_argument("--format", default="text", choices=("text", "json"),
                      dest="output_format", help="findings output format")
    lint.add_argument("--strict", action="store_true",
                      help="fail on warnings too, not just errors")
    lint.add_argument("--workers", type=int, default=1,
                      help="analysis thread-pool size (verdict is "
                           "worker-count invariant)")
    lint.add_argument("--disable", action="append", default=[],
                      metavar="RULE_ID",
                      help="disable a rule by id (repeatable)")
    lint.add_argument("--fix", action="store_true",
                      help="apply the deterministic auto-fix tier in place "
                           "before reporting (files are rewritten)")
    return parser


def _cmd_datasets() -> int:
    from repro.datasets.registry import DATASET_SPECS

    print(f"{'id':>2s} {'name':14s} {'task':10s} {'tables':>6s} "
          f"{'paper rows':>11s} {'paper cols':>10s} {'classes':>7s}")
    for spec in sorted(DATASET_SPECS.values(), key=lambda s: s.dataset_id):
        print(f"{spec.dataset_id:>2d} {spec.name:14s} {spec.task_type:10s} "
              f"{spec.paper_tables:>6d} {spec.paper_rows:>11,d} "
              f"{spec.paper_cols:>10d} {spec.paper_classes:>7d}")
    return 0


def _begin_trace(args: argparse.Namespace) -> bool:
    """Enable the observability switch when ``--trace`` was passed."""
    if not getattr(args, "trace", False):
        return False
    from repro.obs import enable_tracing

    enable_tracing(args.runs_dir)
    return True


def _finish_trace(session: "object | None") -> None:
    """Print where the ledger record landed, plus its span tree."""
    if session is None or session.record is None:  # type: ignore[attr-defined]
        return
    from repro.obs import render_span_tree

    record = session.record  # type: ignore[attr-defined]
    print(f"\ntrace: run {record.run_id} recorded "
          f"-> {session.ledger.path}")  # type: ignore[attr-defined]
    print(render_span_tree(record.spans))


def _cmd_profile(args: argparse.Namespace) -> int:
    import os

    from repro.obs import run_session

    csv_source = args.dataset.endswith(".csv") or os.path.isfile(args.dataset)
    if csv_source and not args.target:
        print("error: --target is required when profiling a CSV path",
              file=sys.stderr)
        return 2
    chunk_rows = args.chunk_rows or DEFAULT_CHUNK_ROWS
    traced = _begin_trace(args)
    with run_session(
        "profile", dataset=args.dataset,
        config={"rows": args.rows, "seed": args.seed,
                "workers": args.profile_workers,
                "streaming": bool(args.streaming or csv_source),
                "chunk_rows": chunk_rows},
        force=traced,
    ) as session:
        if csv_source:
            from repro.catalog import profile_table_streaming

            catalog = profile_table_streaming(
                args.dataset,
                target=args.target,
                task_type=args.task_type,
                chunk_rows=chunk_rows,
                workers=args.profile_workers,
                seed=args.seed,
            )
        else:
            from repro.datasets.registry import load_dataset

            overrides = {"n": args.rows} if args.rows else {}
            bundle = load_dataset(args.dataset, seed=args.seed, **overrides)
            catalog = bundle.profile(
                seed=args.seed,
                workers=args.profile_workers,
                streaming=args.streaming,
                chunk_rows=args.chunk_rows,
            )
        if session is not None:
            session.outcome.update(n_columns=len(catalog))
    print(catalog)
    print(f"{'column':24s} {'type':8s} {'feature':12s} {'distinct':>8s} "
          f"{'missing%':>8s} {'corr':>6s}")
    for profile in catalog.profiles():
        marker = " *target*" if profile.name == catalog.info.target else ""
        print(f"{profile.name:24s} {profile.data_type:8s} "
              f"{profile.feature_type.value:12s} {profile.distinct_count:>8d} "
              f"{profile.missing_percentage:>8.1f} "
              f"{profile.target_correlation:>6.2f}{marker}")
    if session is not None:
        _finish_trace(session)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.api import LLM, catdb_pipgen
    from repro.datasets.registry import load_dataset
    from repro.obs import run_session

    traced = _begin_trace(args)
    overrides = {"n": args.rows} if args.rows else {}
    bundle = load_dataset(args.dataset, seed=args.seed, **overrides)
    with run_session(
        "generate", dataset=args.dataset, llm=args.llm,
        config={
            "beta": args.beta, "alpha": args.alpha,
            "combination": args.combination, "refine": args.refine,
            "rows": args.rows, "seed": args.seed,
            "fault_rate": args.fault_rate, "max_retries": args.max_retries,
            "llm_timeout": args.llm_timeout, "exec_timeout": args.exec_timeout,
            "exec_mode": args.exec_mode,
        },
        force=traced,
    ) as session:
        catalog = bundle.profile(seed=args.seed, workers=args.profile_workers)
        llm = LLM(args.llm, config={
            "seed": args.seed, "fault_rate": args.fault_rate,
            "max_retries": args.max_retries, "llm_timeout": args.llm_timeout,
        })
        P = catdb_pipgen(
            catalog, llm, data=bundle.unified,
            alpha=args.alpha, beta=args.beta, combination=args.combination,
            refine=args.refine, seed=args.seed,
            exec_timeout_seconds=args.exec_timeout,
            exec_mode=args.exec_mode, exec_memory_mb=args.exec_memory_mb,
        )
        if session is not None:
            session.outcome.update(
                success=P.success,
                degraded=P.report.degraded,
                primary_metric=P.report.primary_metric,
                total_tokens=P.report.total_tokens,
                fix_attempts=P.report.fix_attempts,
            )
    print(f"success: {P.success}")
    if P.report.degraded:
        print(f"degraded: {P.report.degraded_reason}")
    print("results:", {k: round(v, 4) if isinstance(v, float) else v
                       for k, v in P.results.items()})
    report = P.report
    print(f"tokens: {report.total_tokens} | interactions: {report.cost.gamma} "
          f"| error prompts: {report.cost.n_error_prompts} "
          f"| kb fixes: {report.kb_fixes}")
    if report.errors:
        print("errors:", [(e.error_type.name, e.group.value)
                          for e in report.errors])
    if args.show_code:
        print("\n" + P.code)
    if session is not None:
        _finish_trace(session)
    return 0 if P.success else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    """Fault-injection soak (CI gate): N seeded generate runs under FlakyLLM.

    Every seeded run must finish without an unhandled exception -- either a
    full success or a structured graceful degradation.  Unless
    ``--no-determinism-check`` is passed, every *non-degraded* faulted run
    must also produce the exact pipeline code of the same seed with faults
    disabled (retries are invisible: the mock transport is
    prompt-deterministic, so a recovered call returns identical content).
    """
    from repro.experiments.common import prepare_dataset, run_catdb

    if args.adversarial:
        from repro.execpool.adversarial import run_adversarial_soak

        return run_adversarial_soak(
            seeds=args.seeds,
            timeout_seconds=args.exec_timeout or 2.0,
            memory_mb=args.exec_memory_mb or 512,
            exec_mode=args.exec_mode or "pool",
        )

    _begin_trace(args)
    hard_failures: list[tuple[int, str]] = []
    mismatches: list[int] = []
    degraded = 0
    succeeded = 0
    static_skips = 0
    static_fixes = 0
    llm_fixes_avoided = 0
    static_fix_types: dict[str, int] = {}
    for seed in range(args.seeds):
        prepared = prepare_dataset(
            args.dataset, seed=seed, quick=False, n=args.rows
        )
        baseline_code = None
        if not args.no_determinism_check:
            baseline = run_catdb(
                prepared, args.llm, beta=args.beta, seed=seed
            )
            baseline_code = baseline.code
        try:
            report = run_catdb(
                prepared, args.llm, beta=args.beta, seed=seed,
                fault_rate=args.fault_rate,
                max_retries=args.max_retries,
                llm_timeout=args.llm_timeout,
                exec_timeout=args.exec_timeout,
                exec_mode=args.exec_mode,
                exec_memory_mb=args.exec_memory_mb,
                retry_base_delay=0.0,  # soak shouldn't sleep through backoff
            )
        except Exception as exc:  # noqa: BLE001 - any escape is the failure
            hard_failures.append((seed, f"{type(exc).__name__}: {exc}"))
            print(f"seed {seed:3d}: UNHANDLED {type(exc).__name__}: {exc}")
            continue
        status = "degraded" if report.degraded else (
            "ok" if report.success else "failed"
        )
        if report.degraded:
            degraded += 1
        elif report.success:
            succeeded += 1
        else:
            hard_failures.append((seed, "completed without success/degraded"))
        # static-gate consistency: every SE-group error must have been
        # caught by the analyzer (one exec skip each) rather than by
        # paying an execution — injected syntax faults can never reach
        # the executor
        static_skips += report.static_exec_skipped
        static_fixes += report.static_fixes
        llm_fixes_avoided += report.llm_fixes_avoided
        for type_name, count in report.static_fix_types.items():
            static_fix_types[type_name] = (
                static_fix_types.get(type_name, 0) + count
            )
        se_errors = sum(1 for e in report.errors if e.group.value == "SE")
        if se_errors > report.static_exec_skipped:
            hard_failures.append((
                seed,
                f"static gate inconsistency: {se_errors} SE errors but "
                f"only {report.static_exec_skipped} exec skips",
            ))
        note = ""
        if (
            baseline_code is not None
            and not report.degraded
            and report.code != baseline_code
        ):
            mismatches.append(seed)
            note = "  [determinism MISMATCH]"
        print(f"seed {seed:3d}: {status:8s} "
              f"fix_attempts={report.fix_attempts}{note}")
    print(f"\nsoak: {args.seeds} seeds @ fault_rate={args.fault_rate} "
          f"-> {succeeded} ok, {degraded} degraded, "
          f"{len(hard_failures)} hard failures, "
          f"{len(mismatches)} determinism mismatches, "
          f"static.exec_skipped={static_skips}")
    print(f"repair.static_fixes={static_fixes} "
          f"repair.llm_fixes_avoided={llm_fixes_avoided}"
          + (f" classes={sorted(static_fix_types)}" if static_fix_types else ""))
    if hard_failures or mismatches:
        for seed, why in hard_failures:
            print(f"  hard failure seed {seed}: {why}", file=sys.stderr)
        for seed in mismatches:
            print(f"  mismatch seed {seed}: faulted pipeline != baseline",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer over files/directories.

    Exit status: 0 when clean (or warnings only), 1 on error-severity
    findings (``--strict`` promotes warnings to failures too), 2 when no
    Python files were found under the given paths.
    """
    import json

    from repro.analysis import RuleConfig, lint_paths, render_findings

    config = RuleConfig(enabled={rule_id: False for rule_id in args.disable})
    n_fixes = 0
    fixed_files = 0
    if args.fix:
        from repro.analysis.engine import _collect_py_files
        from repro.analysis.fixes import autofix

        for path in _collect_py_files(args.paths):
            source = path.read_text(encoding="utf-8")
            result = autofix(source, profile=args.profile, config=config)
            if result.changed:
                path.write_text(result.code, encoding="utf-8")
                fixed_files += 1
                n_fixes += len(result.applied)
    reports = lint_paths(
        args.paths, profile=args.profile, config=config, workers=args.workers
    )
    if not reports:
        print("no python files found", file=sys.stderr)
        return 2
    n_errors = sum(len(r.errors()) for r in reports)
    n_warnings = sum(len(r.warnings()) for r in reports)
    if args.output_format == "json":
        print(json.dumps([
            {"path": r.path, "findings": [f.to_dict() for f in r.findings]}
            for r in reports if r.findings
        ], indent=2))
    else:
        rendered = render_findings(r for r in reports if r.findings)
        if rendered:
            print(rendered)
        if args.fix:
            print(f"fix: {n_fixes} fixes applied across {fixed_files} files")
        print(f"lint: {len(reports)} files, profile={args.profile} "
              f"-> {n_errors} errors, {n_warnings} warnings")
    if n_errors or (args.strict and n_warnings):
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib
    import os

    # Experiments drive run_catdb/run_llm_baseline/run_automl, each of
    # which records its own ledger entry once tracing is on.  Grid-shaped
    # experiments additionally run on the parallel scheduler and record
    # one runner.cell entry per grid cell (the --resume key).
    # The exec knobs travel through the environment: every execution in
    # every scheduler worker thread resolves $REPRO_EXEC_MODE, so one
    # flag moves a whole grid onto the subprocess pool.
    if args.exec_mode is not None:
        os.environ[MODE_ENV] = args.exec_mode
    if args.exec_memory_mb is not None:
        os.environ[MEMORY_ENV] = str(args.exec_memory_mb)
    _begin_trace(args)
    module_name, kwargs = _EXPERIMENTS[args.artifact]
    kwargs = dict(kwargs)
    if args.artifact in _GRID_EXPERIMENTS:
        kwargs.update(workers=args.workers, resume=args.resume,
                      progress=args.progress)
        if args.datasets:
            kwargs["datasets"] = tuple(
                name.strip() for name in args.datasets.split(",") if name.strip()
            )
    elif args.workers is not None or args.resume or args.datasets:
        print(f"error: --workers/--resume/--datasets are only supported by "
              f"grid experiments ({', '.join(sorted(_GRID_EXPERIMENTS))})",
              file=sys.stderr)
        return 2
    module = importlib.import_module(module_name)
    result = module.run(**kwargs)
    print(result.render())
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs import (
        RunLedger,
        default_ledger_path,
        render_diff,
        render_record,
        render_records_table,
    )

    ledger = RunLedger(args.dir or default_ledger_path())
    if args.runs_command == "list":
        records = ledger.records()
        if not records:
            print(f"no runs recorded in {ledger.path}")
            return 0
        print(render_records_table(records))
        return 0
    try:
        if args.runs_command == "show":
            print(render_record(ledger.get(args.run_id)))
            return 0
        if args.runs_command == "diff":
            print(render_diff(ledger.diff(args.run_a, args.run_b)))
            return 0
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    return 2


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "results":
        from repro.experiments.summary import collate_results

        print(collate_results(args.dir))
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
