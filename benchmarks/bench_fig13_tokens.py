"""Figure 13 — token consumption including error handling (10 datasets)."""

from benchmarks.conftest import QUICK, save_result
from repro.experiments import fig13_tokens


def test_fig13_tokens(benchmark):
    llms = ("gpt-4o", "llama3.1-70b")
    result = benchmark.pedantic(
        lambda: fig13_tokens.run(llms=llms, quick=QUICK),
        rounds=1, iterations=1,
    )
    save_result("fig13_tokens", result.render())

    assert len({r["dataset"] for r in result.rows}) == 10

    catdb_rows = [r for r in result.rows if r["system"] == "catdb"]
    chain_rows = [r for r in result.rows if r["system"] == "catdb-chain"]
    # every run accounted some tokens
    assert all(r["total_tokens"] > 0 for r in catdb_rows + chain_rows)

    # shape: the chain costs more than the single prompt per dataset/LLM
    chain_by_key = {(r["dataset"], r["llm"]): r for r in chain_rows}
    dominated = sum(
        1 for r in catdb_rows
        if (r["dataset"], r["llm"]) in chain_by_key
        and chain_by_key[(r["dataset"], r["llm"])]["total_tokens"]
        >= r["total_tokens"]
    )
    assert dominated >= 0.8 * len(catdb_rows)

    # shape: error-management tokens appear for the weak repair model
    llama_error = sum(
        r["error_tokens"] for r in catdb_rows + chain_rows
        if r["llm"] == "llama3.1-70b"
    )
    gpt_error = sum(
        r["error_tokens"] for r in catdb_rows + chain_rows
        if r["llm"] == "gpt-4o"
    )
    assert llama_error >= gpt_error
