"""Micro-benchmarks of the substrate layers.

Not paper artifacts — these time the building blocks every experiment
rests on (profiling, vectorization, tree fitting, prompt construction,
simulated LLM round-trips), so substrate regressions are visible
independently of the end-to-end replays.
"""

import numpy as np

from repro.catalog.cache import ProfileCache, clear_default_cache
from repro.catalog.embeddings import pairwise_similarities
from repro.catalog.profiler import profile_table
from repro.generation.executor import execute_pipeline_code
from repro.llm.base import ResilientLLM
from repro.llm.codegen import generate_pipeline_code
from repro.llm.mock import MockLLM
from repro.llm.profiles import get_profile
from repro.resilience.retry import RetryPolicy
from repro.ml.forest import RandomForestClassifier
from repro.ml.pipeline import TableVectorizer
from repro.obs.trace import Tracer, set_tracer
from repro.prompt.builder import build_prompt_plan
from repro.table.table import Table


def _wide_table(n=800, d=40, seed=0):
    rng = np.random.default_rng(seed)
    data = {f"v{i}": rng.normal(size=n) for i in range(d)}
    data["cat"] = rng.choice(["a", "b", "c", "d"], size=n).tolist()
    data["y"] = np.where(rng.normal(size=n) > 0, "p", "n").tolist()
    return Table.from_dict(data, name="micro")


def test_micro_profiling(benchmark):
    table = _wide_table()
    catalog = benchmark(
        lambda: profile_table(table, target="y", task_type="binary")
    )
    assert len(catalog) == 42


def _substrate_table(n=500, d=60, seed=0):
    """>=50 columns, mixed types — the profiling-substrate stress shape."""
    rng = np.random.default_rng(seed)
    data = {}
    for i in range(d):
        if i % 3 == 0:
            data[f"c{i}"] = rng.choice(
                [f"k{j}" for j in range(12)], size=n
            ).tolist()
        else:
            data[f"c{i}"] = rng.normal(size=n)
    data["y"] = np.where(rng.normal(size=n) > 0, "p", "n").tolist()
    return Table.from_dict(data, name="substrate")


def test_micro_profiling_sequential_wide(benchmark):
    table = _substrate_table()

    def run():
        clear_default_cache()  # time the cold path, not cache hits
        return profile_table(table, target="y", task_type="binary", workers=1)

    catalog = benchmark(run)
    assert len(catalog) == 61


def test_micro_profiling_parallel_wide(benchmark):
    table = _substrate_table()

    def run():
        clear_default_cache()
        return profile_table(table, target="y", task_type="binary", workers=4)

    catalog = benchmark(run)
    assert len(catalog) == 61


def test_micro_profiling_warm_cache(benchmark):
    """Re-profiling unchanged content (the refinement path) is near-free."""
    table = _substrate_table()
    clear_default_cache()
    profile_table(table, target="y", task_type="binary")  # warm

    catalog = benchmark(
        lambda: profile_table(table, target="y", task_type="binary")
    )
    assert len(catalog) == 61


def test_micro_profiling_tracer_off(benchmark):
    """Profiling with the default null tracer — the overhead baseline.

    Compare against ``test_micro_profiling_tracer_on``: the acceptance
    bound is <5% overhead when tracing is disabled (this pair also shows
    what *enabled* tracing costs, which is allowed to be higher).
    """
    table = _substrate_table()

    def run():
        clear_default_cache()
        return profile_table(table, target="y", task_type="binary", workers=1)

    catalog = benchmark(run)
    assert len(catalog) == 61


def test_micro_profiling_tracer_on(benchmark):
    """Same profiling call with a live tracer collecting the span tree."""
    table = _substrate_table()

    def run():
        clear_default_cache()
        previous = set_tracer(Tracer())
        try:
            return profile_table(
                table, target="y", task_type="binary", workers=1
            )
        finally:
            set_tracer(previous)

    catalog = benchmark(run)
    assert len(catalog) == 61


def test_micro_profiling_parallel_matches_sequential():
    table = _substrate_table()
    sequential = profile_table(
        table, target="y", task_type="binary", workers=1, cache=ProfileCache()
    )
    parallel = profile_table(
        table, target="y", task_type="binary", workers=4, cache=ProfileCache()
    )
    assert sequential.to_dict() == parallel.to_dict()


def test_micro_pairwise_similarities(benchmark):
    table = _substrate_table()

    def run():
        clear_default_cache()
        return pairwise_similarities(table)

    sims = benchmark(run)
    assert len(sims) == 61


def test_micro_vectorizer(benchmark):
    table = _wide_table()
    vectorizer = TableVectorizer(target="y").fit(table)

    X = benchmark(lambda: vectorizer.transform(table))
    assert X.shape[0] == table.n_rows


def test_micro_forest_fit(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(600, 20))
    y = np.where(X[:, 0] + X[:, 1] > 0, "a", "b")

    model = benchmark(
        lambda: RandomForestClassifier(
            n_estimators=10, max_depth=8, random_state=0
        ).fit(X, y)
    )
    assert model.score(X, y) > 0.8


def test_micro_prompt_construction(benchmark):
    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")

    plan = benchmark(lambda: build_prompt_plan(catalog, beta=1))
    assert plan.single is not None


def test_micro_llm_roundtrip(benchmark):
    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    llm = MockLLM("gpt-4o", fault_injection=False)

    response = benchmark(lambda: llm.complete(plan.single.text))
    assert "<CODE>" in response.content


def test_micro_llm_roundtrip_resilient(benchmark):
    """The same round-trip through the ResilientLLM wrapper (no faults).

    Compare against ``test_micro_llm_roundtrip``: the happy-path cost of
    the retry/deadline/breaker machinery should be negligible next to
    the completion itself.
    """
    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    llm = ResilientLLM(
        MockLLM("gpt-4o", fault_injection=False),
        policy=RetryPolicy(max_attempts=4),
    )

    response = benchmark(lambda: llm.complete(plan.single.text))
    assert "<CODE>" in response.content


def test_micro_pipeline_execution(benchmark):
    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    payload = {
        "task": "pipeline",
        "dataset": catalog.info.to_dict(),
        "schema": plan._full_schema,
        "rules": [r.to_payload() for r in plan.rules],
    }
    code = generate_pipeline_code(payload, get_profile("gpt-4o"))
    train, test = table.take(range(560)), table.take(range(560, 800))

    result = benchmark.pedantic(
        lambda: execute_pipeline_code(code, train, test), rounds=3, iterations=1
    )
    assert result.success


def test_micro_static_analysis(benchmark):
    """Full pipeline-profile analysis of one generated pipeline.

    Target: well under 10 ms per pipeline — the gate runs once per
    repair iteration, so it must be negligible next to an execution
    (compare ``test_micro_pipeline_execution``).
    """
    from repro.analysis import analyze_source

    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    payload = {
        "task": "pipeline",
        "dataset": catalog.info.to_dict(),
        "schema": plan._full_schema,
        "rules": [r.to_payload() for r in plan.rules],
    }
    code = generate_pipeline_code(payload, get_profile("gpt-4o"))

    report = benchmark(lambda: analyze_source(code))
    assert report.ok


def test_micro_static_analysis_flow_catalog(benchmark):
    """Flow-sensitive analysis of one pipeline, schema grounding on.

    The expensive configuration: per-scope CFG construction, the
    reaching-definitions/definite-assignment fixpoints, provenance-taint
    propagation, and the catalog-grounded ``schema-*`` rules all run.
    This is the bench job's analyzer gate — ``make_bench_report.py
    --max-analyzer-ms 15`` fails CI when the mean pass exceeds 15 ms,
    keeping the gate negligible next to an execution attempt (compare
    ``test_micro_pipeline_execution``).
    """
    from repro.analysis import analyze_source

    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    payload = {
        "task": "pipeline",
        "dataset": catalog.info.to_dict(),
        "schema": plan._full_schema,
        "rules": [r.to_payload() for r in plan.rules],
    }
    code = generate_pipeline_code(payload, get_profile("gpt-4o"))

    report = benchmark(lambda: analyze_source(code, catalog=catalog))
    assert report.ok


def test_micro_repair_loop_exec_skip_on(benchmark):
    """Repair-loop cost with the static gate ON for a syntax-faulted
    candidate: classification happens without executing the pipeline."""
    from repro.analysis import analyze_source
    from repro.llm.faults import _INJECTORS

    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    payload = {
        "task": "pipeline",
        "dataset": catalog.info.to_dict(),
        "schema": plan._full_schema,
        "rules": [r.to_payload() for r in plan.rules],
    }
    code = generate_pipeline_code(payload, get_profile("gpt-4o"))
    dirty = _INJECTORS["truncated_code"](code, 3)

    report = benchmark(lambda: analyze_source(dirty))
    assert report.first_error() is not None


def _tall_table(n=20_000, seed=0):
    """Few columns, many rows — the streaming-profiler stress shape."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "uid": [f"u{i}" for i in range(n)],
            "amount": rng.normal(50, 9, size=n),
            "city": rng.choice(
                ["ams", "ber", "par", "rom", "mad"], size=n
            ).tolist(),
            "y": np.where(rng.normal(size=n) > 0, "p", "n").tolist(),
        },
        name="tall",
    )


def test_micro_profiling_batch_tall(benchmark):
    """Batch profiler on the tall shape — the streaming pair's baseline."""
    table = _tall_table()

    def run():
        clear_default_cache()
        return profile_table(table, target="y", task_type="binary", workers=1)

    catalog = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(catalog) == 4


def test_micro_profiling_streaming_tall(benchmark):
    """Streaming profiler on the same rows, chunked as on disk.

    Compare against ``test_micro_profiling_batch_tall``: the sketch path
    pays a constant factor for mergeable summaries; what it buys is the
    constant memory ceiling (``test_micro_profiling_streaming_memory``).
    """
    from repro.catalog import chunks_from_table, profile_table_streaming

    table = _tall_table()

    def run():
        clear_default_cache()
        return profile_table_streaming(
            chunks_from_table(table, 4000),
            target="y",
            task_type="binary",
            chunk_rows=4000,
            workers=1,
        )

    catalog = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(catalog) == 4


def test_micro_profiling_streaming_memory(tmp_path):
    """Allocation-peak pair: streaming must profile a 120k-row CSV with
    a far lower peak than load-then-batch (tracemalloc, Python+numpy)."""
    import csv
    import tracemalloc

    from repro.catalog import profile_table_streaming
    from repro.table.io_csv import read_csv

    rng = np.random.default_rng(0)
    path = tmp_path / "tall.csv"
    n = 120_000
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["uid", "amount", "city", "y"])
        cities = ["ams", "ber", "par", "rom", "mad"]
        for i in range(n):
            writer.writerow(
                [f"u{i}", f"{rng.normal(50, 9):.4f}",
                 cities[int(rng.integers(5))],
                 "p" if rng.random() > 0.5 else "n"]
            )

    clear_default_cache()
    tracemalloc.start()
    profile_table(read_csv(path), target="y", task_type="binary", workers=1)
    _, batch_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    clear_default_cache()
    tracemalloc.start()
    profile_table_streaming(
        str(path), target="y", task_type="binary",
        chunk_rows=10_000, workers=1,
    )
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(f"\npeak allocations: batch {batch_peak / 1e6:.1f} MB, "
          f"streaming {stream_peak / 1e6:.1f} MB")
    # The gap widens with row count (fixed sketch state vs O(rows)
    # columns): ~1.4x at 120k rows here, ~2.6x RSS at 1M rows in the
    # CI streaming-smoke job.
    assert stream_peak < batch_peak * 0.85


def test_micro_repair_loop_exec_skip_off(benchmark):
    """The same faulted candidate classified the pre-gate way: pay an
    execution attempt to learn the code is broken.  The on/off delta is
    the per-iteration saving of the static gate."""
    from repro.llm.faults import _INJECTORS

    table = _wide_table()
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    payload = {
        "task": "pipeline",
        "dataset": catalog.info.to_dict(),
        "schema": plan._full_schema,
        "rules": [r.to_payload() for r in plan.rules],
    }
    code = generate_pipeline_code(payload, get_profile("gpt-4o"))
    dirty = _INJECTORS["truncated_code"](code, 3)
    train, test = table.take(range(560)), table.take(range(560, 800))

    result = benchmark.pedantic(
        lambda: execute_pipeline_code(dirty, train, test),
        rounds=3, iterations=1,
    )
    assert result.error is not None
