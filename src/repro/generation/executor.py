"""Sandboxed execution of generated pipeline code.

Executes the script in a fresh namespace (imports are real — only the
documented ``repro`` APIs and numpy are available in this environment),
calls ``run_pipeline(train, test)``, and classifies any raised exception
onto the 23-type taxonomy, recovering the failing line number from the
traceback for the error-correction prompt.

``timeout_seconds`` enforces a hard wall-clock budget on the script via
:func:`repro.resilience.deadline.run_with_timeout` (signal-based on a
POSIX main thread, async-exception thread mode elsewhere); a pipeline
that loops or sleeps forever is killed at the budget and reported as a
runtime :class:`~repro.generation.errors.PipelineError`, never a hang.

``mode`` selects the trust boundary: ``"inproc"`` (default) runs the
script in this interpreter, ``"pool"`` ships it to a warm subprocess
worker (:mod:`repro.execpool`) with per-execution RSS/CPU rlimits and
SIGKILL-on-timeout, so OOM/segfault/``os._exit``/infinite-loop pipelines
are reaped and classified instead of taking down the orchestrator.
Clean pipelines return identical results in both modes (the pool worker
runs the same implementation; only the transport differs) — the parity
contract ``tests/test_execpool.py`` pins.  ``mode=None`` consults
``$REPRO_EXEC_MODE``.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.execpool.config import resolve_exec_mode, resolve_memory_mb
from repro.generation.errors import ERROR_TYPES, PipelineError, classify_exception
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.resilience.deadline import ExecutionTimeout, run_with_timeout
from repro.table.table import Table

__all__ = ["ExecutionResult", "execute_pipeline_code", "select_primary_metric"]

#: Fixed fallback priority when the task type is unknown.  A pipeline may
#: emit several test metrics at once (e.g. ``test_auc`` + ``test_accuracy``
#: for classification); AUC wins because it is the paper's headline
#: classification metric, then R², then accuracy.
METRIC_PRIORITY = ("test_auc", "test_r2", "test_accuracy")

_TASK_METRIC_ORDER = {
    "regression": ("test_r2", "test_auc", "test_accuracy"),
    "binary": ("test_auc", "test_accuracy", "test_r2"),
    "multiclass": ("test_auc", "test_accuracy", "test_r2"),
    "classification": ("test_auc", "test_accuracy", "test_r2"),
}


def select_primary_metric(
    metrics: dict[str, Any], task_type: str | None = None
) -> float | None:
    """Pick the headline test metric out of a pipeline's metric dict.

    With a known ``task_type`` the ordering is task-aware: regression
    prefers ``test_r2`` even when a pipeline also emitted ``test_auc``;
    classification prefers ``test_auc`` then ``test_accuracy``.  Without a
    task type the documented :data:`METRIC_PRIORITY` applies.  Returns
    ``None`` when no known test metric is present.
    """
    order = _TASK_METRIC_ORDER.get(task_type or "", METRIC_PRIORITY)
    for key in order:
        if key in metrics:
            return float(metrics[key])
    return None


@dataclass
class ExecutionResult:
    """Outcome of one pipeline execution."""

    success: bool
    metrics: dict[str, Any] = field(default_factory=dict)
    error: PipelineError | None = None
    runtime_seconds: float = 0.0

    @property
    def primary_metric(self) -> float | None:
        """Headline metric under :data:`METRIC_PRIORITY` (task-agnostic)."""
        return select_primary_metric(self.metrics)

    def primary_metric_for(self, task_type: str) -> float | None:
        """Task-aware headline metric (see :func:`select_primary_metric`)."""
        return select_primary_metric(self.metrics, task_type)


def _failing_line(exc: BaseException, filename: str) -> int | None:
    for frame in reversed(traceback.extract_tb(exc.__traceback__)):
        if frame.filename == filename:
            return frame.lineno
    return None


def execute_pipeline_code(
    code: str,
    train: Table,
    test: Table,
    filename: str = "<pipeline>",
    timeout_seconds: float | None = None,
    timeout_mode: str = "auto",
    mode: str | None = None,
    memory_mb: int | None = None,
) -> ExecutionResult:
    """Compile and run the script; never raises, always classifies.

    ``timeout_seconds`` bounds the script's wall-clock runtime (see the
    module docstring); ``timeout_mode`` selects the in-process
    enforcement mechanism (``"auto"`` | ``"signal"`` | ``"thread"``).
    ``mode`` picks the execution backend (``"inproc"`` | ``"pool"``;
    ``None`` = ``$REPRO_EXEC_MODE`` or in-process) and ``memory_mb`` caps
    the pool worker's address space for this execution (``None`` =
    ``$REPRO_EXEC_MEMORY_MB`` or unlimited; ignored in-process).
    """
    resolved_mode = resolve_exec_mode(mode)
    with get_tracer().span(
        "execute.pipeline", rows=train.n_rows, cols=train.n_cols,
        mode=resolved_mode,
    ) as span:
        if resolved_mode == "pool":
            from repro.execpool.pool import get_pool

            result = get_pool().execute(
                code, train, test, filename=filename,
                timeout_seconds=timeout_seconds,
                memory_mb=resolve_memory_mb(memory_mb),
            )
        else:
            result = _execute_pipeline_code_impl(
                code, train, test, filename,
                timeout_seconds=timeout_seconds, timeout_mode=timeout_mode,
            )
        span.set(success=result.success)
        metrics = get_metrics()
        metrics.inc("execute.runs")
        if result.error is not None:
            span.set(error_type=result.error.error_type.name)
            if result.error.details.get("timed_out"):
                span.set(timed_out=True)
                metrics.inc("execute.timeouts")
        if not result.success and result.error is not None:
            metrics.inc("execute.errors", type=result.error.error_type.name)
        return result


def _execute_pipeline_code_impl(
    code: str,
    train: Table,
    test: Table,
    filename: str = "<pipeline>",
    timeout_seconds: float | None = None,
    timeout_mode: str = "auto",
) -> ExecutionResult:
    start = time.perf_counter()
    namespace: dict[str, Any] = {"__name__": "__catdb_pipeline__"}
    try:
        compiled = compile(code, filename, "exec")
    except SyntaxError as exc:
        elapsed = time.perf_counter() - start
        return ExecutionResult(
            success=False,
            error=classify_exception(exc, line=exc.lineno),
            runtime_seconds=elapsed,
        )

    def _run() -> dict[str, Any]:
        exec(compiled, namespace)  # noqa: S102 - sandbox is the local venv
        run = namespace.get("run_pipeline")
        if run is None:
            raise RuntimeError("script does not define run_pipeline")
        result = run(train, test)
        if not isinstance(result, dict):
            raise RuntimeError("run_pipeline must return a metrics dict")
        return result

    try:
        metrics = run_with_timeout(_run, timeout_seconds, mode=timeout_mode)
    except BaseException as exc:  # noqa: BLE001 - everything must be classified
        elapsed = time.perf_counter() - start
        error = classify_exception(exc, line=_failing_line(exc, filename))
        if isinstance(exc, ExecutionTimeout):
            error.details["timed_out"] = True
            error.details["timeout_seconds"] = timeout_seconds
        return ExecutionResult(success=False, error=error, runtime_seconds=elapsed)
    elapsed = time.perf_counter() - start
    error = _semantic_check(metrics, train)
    if error is not None:
        return ExecutionResult(
            success=False, metrics=metrics, error=error, runtime_seconds=elapsed
        )
    return ExecutionResult(success=True, metrics=metrics, runtime_seconds=elapsed)


def _semantic_check(metrics: dict[str, Any], train: Table) -> PipelineError | None:
    """Runtime sanity guards against silent corruption (paper "Guarantees").

    A pipeline that returns non-finite or out-of-range scores is treated as
    a semantic failure even though it did not raise.
    """
    for key, value in metrics.items():
        if key in ("model", "n_features"):
            continue
        if not isinstance(value, (int, float)):
            return PipelineError(
                ERROR_TYPES["no_convergence"],
                f"metric {key!r} is not numeric: {value!r}",
            )
        if value != value:  # NaN
            return PipelineError(
                ERROR_TYPES["no_convergence"], f"metric {key!r} is NaN"
            )
        if key.endswith(("accuracy", "auc")) and not -1e-9 <= value <= 1 + 1e-9:
            return PipelineError(
                ERROR_TYPES["no_convergence"],
                f"metric {key!r}={value} outside [0, 1]",
            )
    return None
