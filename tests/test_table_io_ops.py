"""Tests for CSV I/O and relational ops."""

from repro.table.io_csv import read_csv, sniff_delimiter, write_csv
from repro.table.ops import (
    drop_duplicate_rows,
    drop_missing_rows,
    group_by,
    sort_by,
    stack_tables,
)
from repro.table.table import Table


class TestCsv:
    def test_roundtrip(self, tmp_path):
        t = Table.from_dict({"a": [1, 2], "b": ["x", None]})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert back["a"].to_list() == [1.0, 2.0]
        assert back["b"].to_list() == ["x", None]

    def test_sniff_comma(self):
        assert sniff_delimiter("a,b,c\n1,2,3\n") == ","

    def test_sniff_semicolon(self):
        assert sniff_delimiter("a;b;c\n1;2;3\n4;5;6\n") == ";"

    def test_sniff_tab(self):
        assert sniff_delimiter("a\tb\n1\t2\n") == "\t"

    def test_sniff_empty_defaults_comma(self):
        assert sniff_delimiter("") == ","

    def test_read_custom_delimiter(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a|b\n1|x\n")
        t = read_csv(path, delimiter="|")
        assert t.column_names == ["a", "b"]

    def test_read_ragged_rows_pads_missing(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n3\n")
        t = read_csv(path)
        assert t["b"].to_list() == [2.0, None]

    def test_table_name_from_filename(self, tmp_path):
        path = tmp_path / "sales.csv"
        write_csv(Table.from_dict({"a": [1]}), path)
        assert read_csv(path).name == "sales"

    def test_write_selected_columns(self, tmp_path):
        t = Table.from_dict({"a": [1], "b": [2]})
        path = tmp_path / "t.csv"
        write_csv(t, path, columns=["b"])
        assert read_csv(path).column_names == ["b"]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        assert read_csv(path).n_rows == 0

    def test_boolean_cells_roundtrip(self, tmp_path):
        t = Table.from_dict({"flag": [True, False]})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        assert read_csv(path)["flag"].to_list() == [True, False]


class TestOps:
    def test_sort_by_ascending_missing_last(self):
        t = Table.from_dict({"a": [3, None, 1]})
        assert sort_by(t, "a")["a"].to_list() == [1.0, 3.0, None]

    def test_sort_by_descending(self):
        t = Table.from_dict({"a": [3, 1, 2]})
        assert sort_by(t, "a", descending=True)["a"].to_list() == [3.0, 2.0, 1.0]

    def test_group_by_aggregates(self):
        t = Table.from_dict({"k": ["a", "a", "b"], "v": [1, 3, 5]})
        grouped = group_by(t, "k", {"total": ("v", sum), "n": ("v", len)})
        rows = {r["k"]: r for r in grouped.to_rows()}
        assert rows["a"]["total"] == 4.0
        assert rows["b"]["n"] == 1.0

    def test_group_by_skips_missing_values(self):
        t = Table.from_dict({"k": ["a", "a"], "v": [1, None]})
        grouped = group_by(t, "k", {"n": ("v", len)})
        assert grouped["n"].to_list() == [1.0]

    def test_drop_duplicate_rows(self):
        t = Table.from_dict({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert drop_duplicate_rows(t).n_rows == 2

    def test_drop_duplicate_rows_subset(self):
        t = Table.from_dict({"a": [1, 1], "b": ["x", "y"]})
        assert drop_duplicate_rows(t, subset=["a"]).n_rows == 1

    def test_drop_missing_rows_all_columns(self):
        t = Table.from_dict({"a": [1, None], "b": ["x", "y"]})
        assert drop_missing_rows(t).n_rows == 1

    def test_drop_missing_rows_subset(self):
        t = Table.from_dict({"a": [1, None], "b": [None, "y"]})
        assert drop_missing_rows(t, subset=["b"]).n_rows == 1

    def test_stack_tables(self):
        t = Table.from_dict({"a": [1]})
        stacked = stack_tables([t, t, t])
        assert stacked.n_rows == 3

    def test_stack_empty(self):
        assert stack_tables([]).n_rows == 0
