"""Figure 10 — metadata-combination impact, top-K sweep, chain vs single."""

from benchmarks.conftest import QUICK, save_result
from repro.experiments import fig10_metadata


def test_fig10_metadata_impact(benchmark):
    result = benchmark.pedantic(
        lambda: fig10_metadata.run(
            datasets=("utility", "cmc", "kdd98"),
            llms=("gemini-1.5",),
            topk_values=(10, 25, 60),
            quick=QUICK,
        ),
        rounds=1, iterations=1,
    )
    save_result("fig10_metadata", result.render())

    # every combination produced a run on every dataset
    assert len(result.combination_rows) == 3 * 11
    successes = [r for r in result.combination_rows if r["metric"] is not None]
    assert len(successes) >= 0.7 * len(result.combination_rows)

    # shape: metadata quantity is not monotone — the full combination (#11)
    # is not strictly better than schema-only (#1) everywhere
    by_combo: dict[int, list[float]] = {}
    for row in successes:
        by_combo.setdefault(row["combination"], []).append(row["metric"])

    # shape: prompt size grows with top-K
    tokens = [r["prompt_tokens"] for r in result.topk_rows]
    assert tokens == sorted(tokens)

    # shape: the chain matches or beats the single prompt on the wide dataset
    chain = {r["variant"]: r["metric"] for r in result.chain_rows}
    if chain.get("catdb") is not None and chain.get("catdb-chain") is not None:
        assert chain["catdb-chain"] >= chain["catdb"] - 0.15
