"""Gaussian naive Bayes."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, check_X, check_X_y

__all__ = ["GaussianNB"]


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Per-class Gaussian likelihoods with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing

    def fit(self, X: Any, y: Any) -> "GaussianNB":
        X, y = check_X_y(X, y)
        self.classes_ = sorted(set(y.tolist()), key=str)
        n, d = X.shape
        k = len(self.classes_)
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.class_log_prior_ = np.zeros(k)
        max_var = float(X.var(axis=0).max()) if n > 1 else 1.0
        epsilon = self.var_smoothing * max(max_var, 1e-12)
        for c, label in enumerate(self.classes_):
            mask = y == label
            Xc = X[mask]
            self.theta_[c] = Xc.mean(axis=0)
            self.var_[c] = Xc.var(axis=0) + epsilon
            self.class_log_prior_[c] = np.log(mask.sum() / n)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((X.shape[0], len(self.classes_)))
        for c in range(len(self.classes_)):
            log_det = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_[c]))
            mahalanobis = -0.5 * np.sum(
                (X - self.theta_[c]) ** 2 / self.var_[c], axis=1
            )
            jll[:, c] = self.class_log_prior_[c] + log_det + mahalanobis
        return jll

    def predict_proba(self, X: Any) -> np.ndarray:
        self._check_fitted("theta_")
        X = check_X(X)
        jll = self._joint_log_likelihood(X)
        shifted = jll - jll.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        picks = np.argmax(proba, axis=1)
        return np.asarray([self.classes_[p] for p in picks], dtype=object)
