"""Algorithm 4 — PIPEGEN: generate, validate, and repair pipelines.

``CatDB`` implements the single-prompt variant (beta = 1); ``CatDBChain``
repeats the generate/validate/fix loop for each chain step, passing each
step's code into the next prompt (Figure 6 ordering: all pre-processing
prompts, then all feature-engineering prompts, then one model-selection
prompt).

The error-management loop follows the paper exactly: statically validate
(ast), execute on a local sample, then (a) apply a local knowledge-base
patch when the error signature is known, (b) otherwise send a syntax-error
prompt (code + error only) or a runtime-error prompt (code + error +
projected metadata) to the LLM, bounded by ``tau_2`` attempts, with a
deterministic hand-crafted fallback pipeline as the last resort.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.catalog.catalog import DataCatalog
from typing import TYPE_CHECKING

from repro.generation.cost import CostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.generation.constraints import LibraryPolicy
from repro.analysis.engine import analyze_source
from repro.analysis.fixes import fix_error
from repro.generation.errors import ErrorGroup, PipelineError
from repro.generation.executor import ExecutionResult, execute_pipeline_code
from repro.generation.knowledge_base import KnowledgeBase
from repro.generation.validator import extract_code_block
from repro.llm.base import LLMClient
from repro.llm.codegen import generate_pipeline_code
from repro.llm.profiles import get_profile
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.resilience.errors import ResilienceGiveUp, TransientError
from repro.prompt.builder import ChainPromptPlan, build_prompt_plan
from repro.prompt.combinations import MetadataCombination
from repro.prompt.rules import SECTION_FE, SECTION_MODEL, SECTION_PREPROCESSING
from repro.prompt.templates import render_error_prompt
from repro.table.table import Table

__all__ = ["GenerationReport", "CatDB", "CatDBChain"]

_SAMPLE_ROWS = 250

#: LLM-transport failures the generator absorbs by degrading gracefully
#: instead of raising: resilience give-ups (retries exhausted, breaker
#: open) plus raw transient/transport errors from an unwrapped client.
_DEGRADE_ERRORS = (ResilienceGiveUp, TransientError, ConnectionError, TimeoutError)


@dataclass
class GenerationReport:
    """Everything one generation run produced and cost."""

    dataset: str
    llm: str
    variant: str  # "catdb" | "catdb-chain"
    success: bool = False
    code: str = ""
    metrics: dict[str, Any] = field(default_factory=dict)
    errors: list[PipelineError] = field(default_factory=list)
    cost: CostModel = field(default_factory=CostModel)
    llm_latency_seconds: float = 0.0
    pipeline_runtime_seconds: float = 0.0
    generation_seconds: float = 0.0
    fix_attempts: int = 0
    kb_fixes: int = 0
    llm_fixes: int = 0
    static_fixes: int = 0  # errors repaired by the deterministic fix tier
    llm_fixes_avoided: int = 0  # static fixes with no KB patch available
    static_fix_types: dict[str, int] = field(default_factory=dict)
    fallback_used: bool = False
    degraded: bool = False
    degraded_reason: str = ""
    library_violations: list = field(default_factory=list)
    static_exec_skipped: int = 0  # candidate executions avoided by the static gate

    @property
    def end_to_end_seconds(self) -> float:
        """Wall-clock work plus simulated LLM latency (Table 8 accounting)."""
        return self.generation_seconds + self.llm_latency_seconds

    @property
    def total_tokens(self) -> int:
        return self.cost.total_tokens

    @property
    def primary_metric(self) -> float | None:
        """Headline test metric under the documented fixed priority
        (``test_auc`` > ``test_r2`` > ``test_accuracy``); use
        :meth:`primary_metric_for` when the task type is known."""
        from repro.generation.executor import select_primary_metric

        return select_primary_metric(self.metrics)

    def primary_metric_for(self, task_type: str) -> float | None:
        """Task-aware headline metric (regression prefers ``test_r2``)."""
        from repro.generation.executor import select_primary_metric

        return select_primary_metric(self.metrics, task_type)


class _GeneratorBase:
    """Shared machinery of CatDB and CatDB Chain."""

    variant = "catdb"

    def __init__(
        self,
        llm: LLMClient,
        alpha: int | None = None,
        combination: MetadataCombination | int = 11,
        max_fix_attempts: int = 5,
        knowledge_base: KnowledgeBase | None = None,
        use_knowledge_base: bool = True,
        sample_rows: int = _SAMPLE_ROWS,
        library_policy: "LibraryPolicy | None" = None,
        exec_timeout_seconds: float | None = None,
        exec_timeout_mode: str = "auto",
        exec_mode: str | None = None,
        exec_memory_mb: int | None = None,
        static_gate: bool = True,
        static_fix: bool = True,
    ) -> None:
        self.llm = llm
        self.alpha = alpha
        self.combination = combination
        self.max_fix_attempts = max_fix_attempts
        self.knowledge_base = knowledge_base if knowledge_base is not None else KnowledgeBase()
        self.use_knowledge_base = use_knowledge_base
        self.sample_rows = sample_rows
        self.library_policy = library_policy
        self.exec_timeout_seconds = exec_timeout_seconds
        self.exec_timeout_mode = exec_timeout_mode
        # "inproc" | "pool" | None ($REPRO_EXEC_MODE): pool mode runs
        # every candidate in an isolated subprocess worker, so hostile
        # generated code cannot take the repair loop down with it
        self.exec_mode = exec_mode
        self.exec_memory_mb = exec_memory_mb
        # when on, statically-dirty code routes to repair without paying
        # an execution; off reproduces the execute-everything behaviour
        # (kept togglable for the exec-skip benchmark)
        self.static_gate = static_gate
        # when on, mechanical error classes are rewritten by the
        # deterministic fix tier before the KB and the LLM are consulted
        self.static_fix = static_fix

    # -- LLM round trips -----------------------------------------------------------

    def _submit(
        self, report: GenerationReport, text: str, role: str, section: str,
        iteration: int = 0, attempt: int = 0,
    ) -> str:
        response = self.llm.complete(text)
        report.cost.record(
            role=role, section=section,
            prompt_tokens=response.prompt_tokens,
            completion_tokens=response.completion_tokens,
            iteration=iteration, attempt=attempt,
        )
        report.llm_latency_seconds += float(
            response.metadata.get("latency_seconds", 0.0)
        )
        code = extract_code_block(response.content)
        if self.library_policy is not None:
            from repro.generation.constraints import enforce_policy

            code, remaining = enforce_policy(code, self.library_policy)
            report.library_violations.extend(remaining)
        return code

    # -- error management (Algorithm 4, lines 3-15) ---------------------------------

    def _note_degraded(self, report: GenerationReport, exc: BaseException) -> None:
        """Record that the LLM transport gave up; generation continues."""
        report.degraded = True
        report.degraded_reason = f"{type(exc).__name__}: {exc}"
        get_metrics().inc("generate.degraded", reason=type(exc).__name__)

    def _execute(self, code: str, train: Table, test: Table) -> ExecutionResult:
        return execute_pipeline_code(
            code, train, test,
            timeout_seconds=self.exec_timeout_seconds,
            timeout_mode=self.exec_timeout_mode,
            mode=self.exec_mode,
            memory_mb=self.exec_memory_mb,
        )

    def _analyze(
        self,
        report: GenerationReport,
        code: str,
        catalog: DataCatalog | None = None,
    ) -> PipelineError | None:
        """Static gate: run the full pipeline profile, skip exec on error.

        Every finding is counted per rule; an error-severity finding maps
        onto the taxonomy and is returned *without* executing the code —
        the repair loop consumes it exactly like an observed failure, so
        a statically-dirty candidate never costs a pipeline run.  With a
        catalog, column references and dtypes are grounded in the real
        schema (the ``schema-*`` rules).
        """
        metrics = get_metrics()
        with get_tracer().span("static.analyze") as span:
            analysis = analyze_source(code, profile="pipeline", catalog=catalog)
            for finding in analysis.findings:
                metrics.inc("static.findings", rule=finding.rule_id)
            error = analysis.first_error()
            span.set(findings=len(analysis.findings), clean=error is None)
            if error is not None:
                span.set(error_type=error.error_type.name)
                metrics.inc("static.exec_skipped")
                report.static_exec_skipped += 1
            return error

    def _first_error(
        self,
        report: GenerationReport,
        code: str,
        train_sample: Table,
        test_sample: Table,
        catalog: DataCatalog | None = None,
    ) -> PipelineError | None:
        with get_tracer().span("generate.validate") as span:
            if self.static_gate:
                error = self._analyze(report, code, catalog=catalog)
                if error is not None:
                    span.set(error_type=error.error_type.name)
                    return error
            result = self._execute(code, train_sample, test_sample)
            if result.error is not None:
                span.set(error_type=result.error.error_type.name)
            return result.error

    def _repair_loop(
        self,
        report: GenerationReport,
        code: str,
        plan: ChainPromptPlan,
        train_sample: Table,
        test_sample: Table,
        section: str = "single",
    ) -> str:
        catalog = plan.catalog
        tracer = get_tracer()
        metrics = get_metrics()
        for attempt in range(self.max_fix_attempts):
            error = self._first_error(
                report, code, train_sample, test_sample, catalog=catalog
            )
            if error is None:
                return code
            report.errors.append(error)
            report.fix_attempts += 1
            metrics.inc("pipeline.errors", type=error.error_type.name)
            metrics.inc("repair.iterations")

            with tracer.span(
                "generate.repair", attempt=attempt, section=section,
                error_type=error.error_type.name,
            ) as span:
                # cheapest tier first: a deterministic rewrite costs
                # neither a KB lookup nor an LLM round-trip, and the next
                # loop iteration re-analyzes the result (parity contract)
                if self.static_fix:
                    outcome = fix_error(code, error)
                    if outcome.changed:
                        self.knowledge_base.record(
                            catalog.info.name, self.llm.model, error,
                            fixed_by="static",
                        )
                        type_name = error.error_type.name
                        report.static_fixes += 1
                        report.static_fix_types[type_name] = (
                            report.static_fix_types.get(type_name, 0) + 1
                        )
                        metrics.inc("repair.static_fixes", type=type_name)
                        kb_would_fix = self.use_knowledge_base and (
                            self.knowledge_base.find_patch(error, code)
                            is not None
                        )
                        if not kb_would_fix:
                            report.llm_fixes_avoided += 1
                            metrics.inc("repair.llm_fixes_avoided")
                        span.set(fixed_by="static")
                        code = outcome.code
                        continue

                if self.use_knowledge_base:
                    entry = self.knowledge_base.find_patch(error, code)
                else:
                    entry = None
                if entry is not None:
                    self.knowledge_base.record(
                        catalog.info.name, self.llm.model, error, fixed_by="kb"
                    )
                    code = entry.patch(code)
                    report.kb_fixes += 1
                    metrics.inc("repair.kb_fixes")
                    span.set(fixed_by="kb")
                    continue

                include_metadata = error.group is ErrorGroup.RE
                self.knowledge_base.record(
                    catalog.info.name, self.llm.model, error, fixed_by="llm"
                )
                prompt = render_error_prompt(
                    catalog.info,
                    code,
                    error.error_type.name,
                    error.message,
                    error.line,
                    attempt=attempt,
                    schema=plan._full_schema if include_metadata else (),
                    rules=plan.rules if include_metadata else (),
                    include_metadata=include_metadata,
                )
                # One repair iteration is exactly one logical LLM call,
                # even when the mock repair internally falls back to full
                # regeneration (that happens inside the same completion)
                # and regardless of transport retries (ResilientLLM does
                # not consume iteration budget).  A give-up ends the loop
                # with the best code so far instead of raising.
                try:
                    code = self._submit(
                        report, prompt, role="error", section=section,
                        attempt=attempt,
                    )
                except _DEGRADE_ERRORS as exc:
                    self._note_degraded(report, exc)
                    span.set(fixed_by="degraded")
                    return code
                report.llm_fixes += 1
                metrics.inc("repair.llm_fixes")
                span.set(fixed_by="llm")
        return code

    # -- fallback (Algorithm 4, lines 16-17) ------------------------------------------

    def _handcraft(self, plan: ChainPromptPlan) -> str:
        """Deterministic fallback pipeline built straight from the catalog."""
        payload = {
            "task": "pipeline",
            "dataset": plan.catalog.info.to_dict(),
            "schema": plan._full_schema,
            "rules": [r.to_payload() for r in plan.rules],
            "subtasks": [SECTION_PREPROCESSING, SECTION_FE, SECTION_MODEL],
        }
        return generate_pipeline_code(payload, get_profile("gpt-4o"), salt=0)

    # -- finalization --------------------------------------------------------------------

    def _finalize(
        self,
        report: GenerationReport,
        code: str,
        plan: ChainPromptPlan,
        train: Table,
        test: Table,
        train_sample: Table,
        test_sample: Table,
    ) -> GenerationReport:
        metrics = get_metrics()
        with get_tracer().span("generate.finalize") as span:
            if not code or self._first_error(
                report, code, train_sample, test_sample,
                catalog=plan.catalog,
            ) is not None:
                report.fallback_used = True
                code = self._handcraft(plan)
            result: ExecutionResult = self._execute(code, train, test)
            if not result.success and not report.fallback_used:
                if result.error is not None:
                    report.errors.append(result.error)
                report.fallback_used = True
                code = self._handcraft(plan)
                result = self._execute(code, train, test)
            report.code = code
            report.success = result.success
            report.metrics = result.metrics
            report.pipeline_runtime_seconds = result.runtime_seconds
            if not result.success and result.error is not None:
                report.errors.append(result.error)
            span.set(
                success=result.success, fallback=report.fallback_used,
                degraded=report.degraded,
            )
        if report.fallback_used:
            metrics.inc("generate.fallbacks")
        metrics.inc(
            "generate.runs", variant=self.variant,
        )
        metrics.inc("generate.success" if report.success else "generate.failure")
        return report

    def _samples(self, train: Table, test: Table) -> tuple[Table, Table]:
        return (
            train.sample_rows(min(self.sample_rows, train.n_rows), seed=0),
            test.sample_rows(min(self.sample_rows, test.n_rows), seed=1),
        )


class CatDB(_GeneratorBase):
    """Single-prompt CatDB (beta = 1)."""

    variant = "catdb"

    def generate(
        self,
        train: Table,
        test: Table,
        catalog: DataCatalog,
        iteration: int = 0,
    ) -> GenerationReport:
        start = time.perf_counter()
        report = GenerationReport(
            dataset=catalog.info.name, llm=self.llm.model, variant=self.variant
        )
        with get_tracer().span(
            "generate.run", dataset=catalog.info.name, llm=self.llm.model,
            variant=self.variant, iteration=iteration,
        ) as span:
            plan = build_prompt_plan(
                catalog, alpha=self.alpha, beta=1,
                combination=self.combination, iteration=iteration,
            )
            assert plan.single is not None
            train_sample, test_sample = self._samples(train, test)
            try:
                code = self._submit(
                    report, plan.single.text, role="pipeline", section="single",
                    iteration=iteration,
                )
            except _DEGRADE_ERRORS as exc:
                # no pipeline at all: _finalize falls back to the
                # deterministic handcrafted pipeline
                self._note_degraded(report, exc)
                code = ""
            else:
                code = self._repair_loop(
                    report, code, plan, train_sample, test_sample
                )
            report.generation_seconds = time.perf_counter() - start
            report = self._finalize(
                report, code, plan, train, test, train_sample, test_sample
            )
            report.generation_seconds = time.perf_counter() - start
            span.set(
                success=report.success,
                prompt_tokens=report.cost.prompt_tokens,
                completion_tokens=report.cost.completion_tokens,
            )
        return report


class CatDBChain(_GeneratorBase):
    """CatDB Chain (beta > 1): chunked prompts with per-step verification."""

    variant = "catdb-chain"

    def __init__(self, llm: LLMClient, beta: int = 2, **kwargs: Any) -> None:
        super().__init__(llm, **kwargs)
        if beta < 2:
            raise ValueError("CatDBChain requires beta >= 2")
        self.beta = beta

    def generate(
        self,
        train: Table,
        test: Table,
        catalog: DataCatalog,
        iteration: int = 0,
    ) -> GenerationReport:
        start = time.perf_counter()
        report = GenerationReport(
            dataset=catalog.info.name, llm=self.llm.model, variant=self.variant
        )
        tracer = get_tracer()
        with tracer.span(
            "generate.run", dataset=catalog.info.name, llm=self.llm.model,
            variant=self.variant, iteration=iteration, beta=self.beta,
        ) as run_span:
            plan = build_prompt_plan(
                catalog, alpha=self.alpha, beta=self.beta,
                combination=self.combination, iteration=iteration,
            )
            train_sample, test_sample = self._samples(train, test)
            code: str | None = None

            # Figure 6 ordering: all preprocessing prompts, then all
            # feature-engineering prompts, then one model-selection prompt;
            # the code so far is appended to every prompt.  Once the
            # transport gives up (retries exhausted / breaker open) the
            # chain stops and the best code so far goes to finalization.
            sections = [
                (section, chunk_index)
                for section in (SECTION_PREPROCESSING, SECTION_FE)
                for chunk_index in range(plan.beta)
            ] + [(SECTION_MODEL, 0)]
            for section, chunk_index in sections:
                with tracer.span(
                    "generate.chain_step", section=section,
                    chunk=chunk_index,
                ):
                    prompt = plan.chain_step(section, chunk_index, code)
                    try:
                        code = self._submit(
                            report, prompt.text, role="pipeline",
                            section=section, iteration=iteration,
                        )
                    except _DEGRADE_ERRORS as exc:
                        self._note_degraded(report, exc)
                        break
                    code = self._repair_loop(
                        report, code, plan, train_sample, test_sample,
                        section=section,
                    )
                if report.degraded:
                    break
            report.generation_seconds = time.perf_counter() - start
            report = self._finalize(
                report, code or "", plan, train, test, train_sample,
                test_sample,
            )
            report.generation_seconds = time.perf_counter() - start
            run_span.set(
                success=report.success,
                prompt_tokens=report.cost.prompt_tokens,
                completion_tokens=report.cost.completion_tokens,
            )
        return report
