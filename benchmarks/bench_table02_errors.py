"""Table 2 + Figure 8 — the error-trace dataset and its distributions."""

from benchmarks.conftest import QUICK, save_result
from repro.experiments import table2_errors
from repro.generation.errors import ERROR_TYPES


def test_table02_error_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: table2_errors.run(
            llms=("gemini-1.5", "llama3.1-70b"),
            datasets=(
                ("wifi", "cmc", "etailing", "utility") if QUICK
                else ("wifi", "diabetes", "cmc", "etailing", "utility",
                      "bike_sharing")
            ),
            iterations=3 if QUICK else 10,
            quick=QUICK,
        ),
        rounds=1, iterations=1,
    )
    save_result("table02_errors", result.render())

    assert result.knowledge_base.traces, "replay should collect error traces"

    # shape (Table 2): runtime/semantic errors dominate for every model
    for llm in ("gemini-1.5", "llama3.1-70b"):
        dist = result.group_distribution(llm)
        assert dist["RE"] > dist["SE"], (llm, dist)
        assert dist["RE"] > 50.0, (llm, dist)

    # shape (Table 2): Gemini's KB share exceeds Llama's (21.2% vs 2.5%)
    gemini = result.group_distribution("gemini-1.5")
    llama = result.group_distribution("llama3.1-70b")
    assert gemini["KB"] >= llama["KB"]

    # Figure 8: observed error types map onto the 23-type taxonomy
    for type_name in result.type_distribution():
        assert type_name in ERROR_TYPES
