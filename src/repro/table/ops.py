"""Relational helpers over :class:`~repro.table.Table`.

Small set of operations the dataset generators, cleaners, and generated
pipelines rely on: sorting, group-by aggregation, and duplicate removal.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.table.column import Column, ColumnKind
from repro.table.table import Table

__all__ = [
    "sort_by",
    "group_by",
    "drop_duplicate_rows",
    "drop_missing_rows",
    "stack_tables",
]


def drop_missing_rows(table: Table, subset: Sequence[str] | None = None) -> Table:
    """Drop every row with a missing value in ``subset`` (default: all columns)."""
    names = list(subset) if subset is not None else table.column_names
    keep = np.ones(table.n_rows, dtype=bool)
    for name in names:
        keep &= ~table[name].missing
    return table.filter_mask(keep)


def _sort_rank(col: Column) -> np.ndarray:
    """Per-row sort key: the value itself for numeric columns, the rank
    of the value in the sorted pool otherwise.  Missing slots get 0 (the
    caller orders them separately)."""
    if col.kind is ColumnKind.NUMERIC:
        return np.where(col.missing, 0.0, col.numeric_values())
    order = sorted(
        range(col.pool.shape[0]), key=col.pool.tolist().__getitem__
    )
    ranks = np.empty(col.pool.shape[0] + 1, dtype=np.int64)
    ranks[-1] = 0
    for rank, code in enumerate(order):
        ranks[code] = rank
    return ranks[col.codes]  # code -1 wraps to the trailing 0 slot


def sort_by(table: Table, name: str, descending: bool = False) -> Table:
    """Stable sort by one column; missing values sort last."""
    col = table[name]
    miss = col.missing
    rank = _sort_rank(col)
    idx = np.arange(table.n_rows, dtype=np.intp)
    present = idx[~miss]
    if descending:
        # ties break by descending row index (the seed's reverse sort),
        # and missing rows land last in reverse row order
        order_present = present[np.lexsort((-present, -rank[present]))]
        order_missing = idx[miss][::-1]
    else:
        order_present = present[np.lexsort((present, rank[present]))]
        order_missing = idx[miss]
    return table.take(np.concatenate([order_present, order_missing]))


def _group_rows(col: Column) -> list[tuple[Any, list[int]]] | None:
    """Groups of row indices keyed by cell value, in first-seen order.

    Missing cells form a ``None``-keyed group, positioned where the first
    missing row appears (seed dict-insertion semantics).  Returns ``None``
    when the pool cannot back a hash table faithfully.
    """
    n = len(col)
    if n == 0:
        return []
    if col.kind is ColumnKind.NUMERIC:
        present = ~col.missing
        ids = np.full(n, -1, dtype=np.int64)
        uniq, inverse = np.unique(
            col.numeric_values()[present], return_inverse=True
        )
        if uniq.shape[0]:
            ids[present] = inverse
        pool_values = uniq.tolist()
    else:
        pool = col.pool
        pool_values = pool.tolist()
        try:
            index = {value: code for code, value in enumerate(pool_values)}
        except TypeError:
            return None
        if len(index) < pool.shape[0]:
            return None  # hash-equal pool entries: seed would merge them
        ids = col.codes.astype(np.int64)
    used, first, inverse = np.unique(ids, return_index=True, return_inverse=True)
    row_order = np.argsort(inverse, kind="stable")
    sizes = np.bincount(inverse)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    out: list[tuple[Any, list[int]]] = []
    for pos in np.argsort(first, kind="stable").tolist():
        gid = int(used[pos])
        key_value = None if gid < 0 else pool_values[gid]
        out.append(
            (key_value, row_order[offsets[pos]:offsets[pos + 1]].tolist())
        )
    return out


def group_by(
    table: Table,
    key: str,
    aggregations: Mapping[str, tuple[str, Callable[[list[Any]], Any]]],
) -> Table:
    """Group rows by ``key`` and aggregate.

    ``aggregations`` maps output column name to ``(input column, fn)`` where
    ``fn`` receives the list of non-missing values of that group.
    """
    key_col = table[key]
    grouped = _group_rows(key_col)
    if grouped is None:  # pathological pools: seed dict semantics
        groups: dict[Any, list[int]] = {}
        append_for = groups.setdefault
        for i, group_key in enumerate(key_col.to_list()):  # repro: allow-per-row
            append_for(group_key, []).append(i)
        grouped = list(groups.items())
    sources = {
        in_name: table[in_name].to_list()
        for in_name, _ in aggregations.values()
    }
    out: dict[str, list[Any]] = {key: []}
    for out_name in aggregations:
        out[out_name] = []
    for group_key, indices in grouped:
        out[key].append(group_key)
        for out_name, (in_name, fn) in aggregations.items():
            cells = sources[in_name]
            values = [cells[i] for i in indices if cells[i] is not None]
            out[out_name].append(fn(values) if values else None)
    return Table.from_dict(out, name=table.name)


def drop_duplicate_rows(table: Table, subset: Sequence[str] | None = None) -> Table:
    """Keep the first occurrence of each distinct row (or ``subset`` of columns)."""
    names = list(subset) if subset is not None else table.column_names
    cols = [table[n] for n in names]
    matrix = _row_signature_matrix(cols, table.n_rows)
    if matrix is None:  # pathological pools: seed set semantics
        seen: set[tuple[Any, ...]] = set()
        keep: list[int] = []
        lists = [col.to_list() for col in cols]
        for i, signature in enumerate(zip(*lists)):  # repro: allow-per-row
            if signature in seen:
                continue
            seen.add(signature)
            keep.append(i)
        return table.take(np.asarray(keep, dtype=np.intp))
    if matrix.shape[1] == 0:
        first = np.zeros(min(table.n_rows, 1), dtype=np.intp)
        return table.take(first)
    _, first = np.unique(matrix, axis=0, return_index=True)
    return table.take(np.sort(first))


def _row_signature_matrix(cols: list[Column], n_rows: int) -> np.ndarray | None:
    """Per-column integer codes stacked into an ``(n_rows, k)`` matrix
    whose row equality matches the seed's value-tuple equality."""
    parts = []
    for col in cols:
        if col.kind is ColumnKind.NUMERIC:
            present = ~col.missing
            codes = np.full(n_rows, -1, dtype=np.int64)
            uniq, inverse = np.unique(
                col.numeric_values()[present], return_inverse=True
            )
            if uniq.shape[0]:
                codes[present] = inverse
        else:
            pool_values = col.pool.tolist()
            try:
                index = {value: code for code, value in enumerate(pool_values)}
            except TypeError:
                return None
            if len(index) < len(pool_values):
                return None  # hash-equal pool entries: tuples would merge them
            codes = col.codes.astype(np.int64)
        parts.append(codes)
    if not parts:
        return np.empty((n_rows, 0), dtype=np.int64)
    return np.column_stack(parts)


def stack_tables(tables: Sequence[Table], name: str = "stacked") -> Table:
    """Vertically concatenate tables with identical schemas."""
    if not tables:
        return Table(name=name)
    result = tables[0]
    for other in tables[1:]:
        result = result.concat_rows(other)
    result.name = name
    return result
