"""Seed-vs-encoded pairs for the dictionary-encoded data plane.

Each pair times the same observable work twice: once with the seed's
per-row Python implementation (embedded here, rebuilt from the per-cell
coercion primitives the batch path keeps) and once through the
dictionary-encoded vectorized path.  Every pair doubles as a parity
check — both sides must produce bit-identical results before the timing
counts.  The CI bench job gates on the measured ratios via
``make_bench_report.py --min-ingest-speedup 3 --min-join-speedup 5``.
"""

from __future__ import annotations

import csv
import hashlib
from typing import Any

import numpy as np
import pytest

from repro.catalog.cache import column_fingerprint
from repro.ml.preprocessing import LabelEncoder, OneHotEncoder, _is_missing
from repro.table.column import (
    Column,
    ColumnKind,
    _format_value,
    _infer_kind,
    _is_missing_scalar,
    _to_bool,
)
from repro.table.io_csv import read_csv
from repro.table.table import Table

# -- seed reference: per-cell coercion, stats, fingerprint ---------------------


def _seed_cells(values: list[Any], kind=None):
    """The seed ``Column.__init__`` loop: per-cell kind coercion."""
    kind = ColumnKind(kind) if kind is not None else _infer_kind(values)
    cells: list[Any] = []
    for value in values:
        if _is_missing_scalar(value):
            cells.append(None)
        elif kind is ColumnKind.NUMERIC:
            try:
                cells.append(float(value))
            except (TypeError, ValueError):
                cells.append(None)
        elif kind is ColumnKind.BOOLEAN:
            cells.append(_to_bool(value))
        else:
            cells.append(_format_value(value))
    return kind, cells


def _seed_encode(value: Any) -> bytes:
    if value is None:
        return b"\xff\x00none"
    encoded = str(value).encode("utf-8", "surrogatepass")
    return len(encoded).to_bytes(4, "little") + encoded


def _seed_fingerprint(kind: ColumnKind, cells: list[Any]) -> tuple:
    """Seed ``column_fingerprint``: one md5 update per cell."""
    data_digest = hashlib.md5()
    mask_digest = hashlib.md5()
    for value in cells:
        data_digest.update(_seed_encode(value))
    mask_digest.update(np.array([v is None for v in cells], bool).tobytes())
    content = hashlib.md5(
        data_digest.digest() + mask_digest.digest()
    ).hexdigest()
    return (kind.value, len(cells), sum(v is None for v in cells), content)


# -- pair 1: CSV ingest + profile of a wide categorical table ------------------

N_INGEST_ROWS = 4_000
N_INGEST_COLS = 30


@pytest.fixture(scope="module")
def wide_csv(tmp_path_factory):
    rng = np.random.default_rng(0)
    path = tmp_path_factory.mktemp("bench_table") / "wide_cat.csv"
    header = [f"c{j}" for j in range(N_INGEST_COLS)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for _ in range(N_INGEST_ROWS):
            writer.writerow(
                [
                    ""
                    if rng.random() < 0.02
                    else f"k{j}_{int(rng.integers(24))}"
                    for j in range(N_INGEST_COLS)
                ]
            )
    return str(path)


def _seed_ingest_profile(path: str) -> dict[str, tuple]:
    """Per-row parse + per-cell coerce + per-cell column stats."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = list(reader)
    stats: dict[str, tuple] = {}
    for j, name in enumerate(header):
        kind, cells = _seed_cells([row[j] for row in rows])
        unique = list(dict.fromkeys(v for v in cells if v is not None))
        counts: dict[Any, int] = {}
        for value in cells:
            if value is None:
                continue
            counts[value] = counts.get(value, 0) + 1
        counts = dict(
            sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        )
        stats[name] = (
            kind.value, unique, counts, _seed_fingerprint(kind, cells),
        )
    return stats


def _encoded_ingest_profile(path: str) -> dict[str, tuple]:
    """Vectorized ingest + per-distinct column stats via the codes."""
    table = read_csv(path)
    return {
        col.name: (
            col.kind.value,
            col.unique(),
            col.value_counts(),
            column_fingerprint(col),
        )
        for col in table
    }


def test_table_ingest_profile_seed(benchmark, wide_csv):
    stats = benchmark.pedantic(
        lambda: _seed_ingest_profile(wide_csv), rounds=3, iterations=1
    )
    assert stats == _encoded_ingest_profile(wide_csv)


def test_table_ingest_profile_encoded(benchmark, wide_csv):
    stats = benchmark.pedantic(
        lambda: _encoded_ingest_profile(wide_csv), rounds=3, iterations=1
    )
    assert stats == _seed_ingest_profile(wide_csv)


# -- pair 2: 100k-row hash join ------------------------------------------------

N_JOIN_ROWS = 100_000
N_DIM_ROWS = 5_000


@pytest.fixture(scope="module")
def join_tables():
    rng = np.random.default_rng(7)
    fact = Table.from_dict(
        {
            "k": [
                f"id{int(v)}"
                for v in rng.integers(0, N_DIM_ROWS, size=N_JOIN_ROWS)
            ],
            "v": rng.normal(size=N_JOIN_ROWS),
        },
        name="fact",
    )
    dim = Table.from_dict(
        {
            "k": [f"id{i}" for i in range(N_DIM_ROWS)],
            "w": rng.normal(size=N_DIM_ROWS),
            "g": [f"g{i % 11}" for i in range(N_DIM_ROWS)],
        },
        name="dim",
    )
    return fact, dim


def _seed_join(left: Table, right: Table, on: str, how: str = "inner",
               suffix: str = "_r") -> Table:
    """The seed ``Table.join``: per-row index build, probe, and gather."""
    right_index: dict[Any, list[int]] = {}
    right_col = right[on]
    for j in range(right.n_rows):  # repro: allow-per-row (seed reference)
        key = right_col[j]
        if key is None:
            continue
        right_index.setdefault(key, []).append(j)
    left_rows: list[int] = []
    right_rows: list[int] = []
    left_col = left[on]
    for i in range(left.n_rows):  # repro: allow-per-row (seed reference)
        key = left_col[i]
        matches = right_index.get(key, []) if key is not None else []
        if matches:
            if how == "left":
                matches = matches[:1]
            for j in matches:
                left_rows.append(i)
                right_rows.append(j)
        elif how == "left":
            left_rows.append(i)
            right_rows.append(-1)
    columns = []
    for name in left.column_names:
        source = left[name]
        columns.append(
            Column(name, [source[i] for i in left_rows], kind=source.kind)
        )
    taken = set(left.column_names)
    for name in right.column_names:
        if name == on:
            continue
        out_name = name if name not in taken else name + suffix
        source = right[name]
        columns.append(
            Column(
                out_name,
                [None if j < 0 else source[j] for j in right_rows],
                kind=source.kind,
            )
        )
        taken.add(out_name)
    return Table(columns, name=left.name)


def _table_cells(table: Table) -> dict[str, list[Any]]:
    return {name: table[name].to_list() for name in table.column_names}


def test_table_join_100k_seed(benchmark, join_tables):
    fact, dim = join_tables
    joined = benchmark.pedantic(
        lambda: _seed_join(fact, dim, "k"), rounds=3, iterations=1
    )
    assert _table_cells(joined) == _table_cells(fact.join(dim, on="k"))


def test_table_join_100k_encoded(benchmark, join_tables):
    fact, dim = join_tables
    joined = benchmark.pedantic(
        lambda: fact.join(dim, on="k"), rounds=3, iterations=1
    )
    assert _table_cells(joined) == _table_cells(_seed_join(fact, dim, "k"))


# -- pair 3: row concatenation -------------------------------------------------


def _seed_concat_rows(a: Table, b: Table) -> Table:
    """The seed vstack: per-cell gather + full re-coercion per column."""
    columns = []
    for name in a.column_names:
        col_a, col_b = a[name], b[name]
        values: list[Any] = []
        for i in range(a.n_rows):  # repro: allow-per-row (seed reference)
            values.append(col_a[i])
        for i in range(b.n_rows):  # repro: allow-per-row (seed reference)
            values.append(col_b[i])
        columns.append(Column(name, values, kind=col_a.kind))
    return Table(columns, name=a.name)


@pytest.fixture(scope="module")
def concat_tables(join_tables):
    fact, _dim = join_tables
    half = N_JOIN_ROWS // 2
    return fact.take(range(half)), fact.take(range(half, N_JOIN_ROWS))


def test_table_concat_rows_seed(benchmark, concat_tables):
    a, b = concat_tables
    stacked = benchmark.pedantic(
        lambda: _seed_concat_rows(a, b), rounds=3, iterations=1
    )
    assert _table_cells(stacked) == _table_cells(a.concat_rows(b))


def test_table_concat_rows_encoded(benchmark, concat_tables):
    a, b = concat_tables
    stacked = benchmark.pedantic(
        lambda: a.concat_rows(b), rounds=3, iterations=1
    )
    assert _table_cells(stacked) == _table_cells(_seed_concat_rows(a, b))


# -- pair 4: categorical encoders ----------------------------------------------

N_ENCODE_ROWS = 50_000
N_ENCODE_COLS = 6


@pytest.fixture(scope="module")
def encode_matrix():
    rng = np.random.default_rng(3)
    X = np.empty((N_ENCODE_ROWS, N_ENCODE_COLS), dtype=object)
    for j in range(N_ENCODE_COLS):
        X[:, j] = [
            None if rng.random() < 0.03 else f"cat{j}_{int(v)}"
            for v in rng.integers(0, 20, size=N_ENCODE_ROWS)
        ]
    return X


def _seed_onehot_transform(encoder: OneHotEncoder, X: np.ndarray):
    """The seed ``OneHotEncoder.transform``: per-cell dict probe + scatter."""
    widths = [len(values) for values in encoder.categories_]
    out = np.zeros((X.shape[0], sum(widths)), dtype=np.float64)
    offset = 0
    for j, index in enumerate(encoder._index):
        cats = encoder.categories_[j]
        has_other = bool(cats) and cats[-1] == encoder.OTHER
        for i in range(X.shape[0]):
            value = X[i, j]
            if _is_missing(value):
                continue
            code = index.get(value)
            if code is None and has_other:
                code = index[encoder.OTHER]
            if code is not None:
                out[i, offset + code] = 1.0
        offset += widths[j]
    return out


def _seed_label_transform(encoder: LabelEncoder, y: list[Any]) -> np.ndarray:
    """The seed ``LabelEncoder.transform``: per-cell membership + lookup."""
    out = []
    for value in y:
        if value not in encoder._index:
            raise ValueError(f"unseen label {value!r}")
        out.append(encoder._index[value])
    return np.asarray(out, dtype=np.int64)


def test_table_encode_onehot_seed(benchmark, encode_matrix):
    encoder = OneHotEncoder(max_categories=16).fit(encode_matrix)
    out = benchmark.pedantic(
        lambda: _seed_onehot_transform(encoder, encode_matrix),
        rounds=3, iterations=1,
    )
    np.testing.assert_array_equal(out, encoder.transform(encode_matrix))


def test_table_encode_onehot_encoded(benchmark, encode_matrix):
    encoder = OneHotEncoder(max_categories=16).fit(encode_matrix)
    out = benchmark.pedantic(
        lambda: encoder.transform(encode_matrix), rounds=3, iterations=1
    )
    np.testing.assert_array_equal(
        out, _seed_onehot_transform(encoder, encode_matrix)
    )


def test_table_encode_label_seed(benchmark, encode_matrix):
    y = encode_matrix[:, 0].tolist()
    y = ["<na>" if v is None else v for v in y]
    encoder = LabelEncoder().fit(y)
    out = benchmark.pedantic(
        lambda: _seed_label_transform(encoder, y), rounds=3, iterations=1
    )
    np.testing.assert_array_equal(out, encoder.transform(y))


def test_table_encode_label_encoded(benchmark, encode_matrix):
    y = encode_matrix[:, 0].tolist()
    y = ["<na>" if v is None else v for v in y]
    encoder = LabelEncoder().fit(y)
    out = benchmark.pedantic(
        lambda: encoder.transform(y), rounds=3, iterations=1
    )
    np.testing.assert_array_equal(out, _seed_label_transform(encoder, y))
