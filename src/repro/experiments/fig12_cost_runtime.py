"""Figure 12 — token cost and runtime over 10 iterations.

Aggregates the :mod:`fig11_iterations` runs into per-system token and
runtime totals.  Reproduced shapes: CatDB cheaper than CatDB Chain, both
cheaper than CAAFE on wide data (CAAFE's cost is prompt-dominated by the
10-samples-per-feature schema); CatDB pipeline runtime far below CAAFE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments import fig11_iterations
from repro.experiments.common import LLM_PROFILES, format_table

__all__ = ["Fig12Result", "run"]


@dataclass
class Fig12Result:
    source: fig11_iterations.Fig11Result = field(
        default_factory=fig11_iterations.Fig11Result
    )

    def totals(self) -> list[dict]:
        combos = sorted({(r.dataset, r.llm, r.system) for r in self.source.runs})
        rows = []
        for dataset, llm, system in combos:
            runs = [
                r for r in self.source.runs
                if (r.dataset, r.llm, r.system) == (dataset, llm, system)
            ]
            rows.append({
                "dataset": dataset, "llm": llm, "system": system,
                "total_tokens": sum(r.total_tokens for r in runs),
                "mean_tokens": float(np.mean([r.total_tokens for r in runs])),
                "total_seconds": sum(r.end_to_end_seconds for r in runs),
                "pipeline_seconds": sum(r.pipeline_seconds for r in runs),
            })
        return rows

    def render(self) -> str:
        rows = [
            [r["dataset"], r["llm"], r["system"],
             r["total_tokens"], f"{r['total_seconds']:.2f}",
             f"{r['pipeline_seconds']:.2f}"]
            for r in self.totals()
        ]
        return format_table(
            ["dataset", "llm", "system", "tokens (all iters)",
             "runtime[s]", "pipeline[s]"],
            rows, title="Figure 12: cost and runtime across iterations",
        )


def run(
    source: fig11_iterations.Fig11Result | None = None,
    datasets: tuple[str, ...] = fig11_iterations.ITERATION_DATASETS,
    llms: tuple[str, ...] = LLM_PROFILES,
    iterations: int = 10,
    quick: bool = True,
    seed: int = 0,
    workers: int | None = None,
    resume: bool = False,
    progress: bool = False,
) -> Fig12Result:
    if source is None:
        source = fig11_iterations.run(
            datasets=datasets, llms=llms, iterations=iterations,
            quick=quick, seed=seed, workers=workers, resume=resume,
            progress=progress,
        )
    return Fig12Result(source=source)
