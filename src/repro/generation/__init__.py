"""Pipeline generation, validation, and error management (paper Section 4).

Submodule attributes are resolved lazily to keep import edges acyclic
(``repro.llm.faults`` needs :mod:`repro.generation.errors` while
:mod:`repro.generation.generator` needs :mod:`repro.prompt`, which renders
prompts through :mod:`repro.llm`).
"""

from typing import TYPE_CHECKING

__all__ = [
    "CostModel",
    "InteractionCost",
    "ERROR_TYPES",
    "ErrorGroup",
    "ErrorType",
    "PipelineError",
    "classify_exception",
    "ExecutionResult",
    "execute_pipeline_code",
    "CatDB",
    "CatDBChain",
    "GenerationReport",
    "KnowledgeBase",
    "KnowledgeBaseEntry",
    "ValidationIssue",
    "validate_source",
    "ArtifactStore",
    "RunArtifact",
    "LibraryPolicy",
    "LibraryViolation",
    "check_imports",
    "enforce_policy",
]

_LOCATIONS = {
    "CostModel": "repro.generation.cost",
    "InteractionCost": "repro.generation.cost",
    "ERROR_TYPES": "repro.generation.errors",
    "ErrorGroup": "repro.generation.errors",
    "ErrorType": "repro.generation.errors",
    "PipelineError": "repro.generation.errors",
    "classify_exception": "repro.generation.errors",
    "ExecutionResult": "repro.generation.executor",
    "execute_pipeline_code": "repro.generation.executor",
    "CatDB": "repro.generation.generator",
    "CatDBChain": "repro.generation.generator",
    "GenerationReport": "repro.generation.generator",
    "KnowledgeBase": "repro.generation.knowledge_base",
    "KnowledgeBaseEntry": "repro.generation.knowledge_base",
    "ValidationIssue": "repro.generation.validator",
    "validate_source": "repro.generation.validator",
    "ArtifactStore": "repro.generation.artifacts",
    "RunArtifact": "repro.generation.artifacts",
    "LibraryPolicy": "repro.generation.constraints",
    "LibraryViolation": "repro.generation.constraints",
    "check_imports": "repro.generation.constraints",
    "enforce_policy": "repro.generation.constraints",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.generation.cost import CostModel, InteractionCost
    from repro.generation.errors import (
        ERROR_TYPES,
        ErrorGroup,
        ErrorType,
        PipelineError,
        classify_exception,
    )
    from repro.generation.executor import ExecutionResult, execute_pipeline_code
    from repro.generation.generator import CatDB, CatDBChain, GenerationReport
    from repro.generation.knowledge_base import KnowledgeBase, KnowledgeBaseEntry
    from repro.generation.validator import ValidationIssue, validate_source


def __getattr__(name: str):
    if name in _LOCATIONS:
        import importlib

        module = importlib.import_module(_LOCATIONS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
