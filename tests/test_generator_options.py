"""Tests for generator options: alpha, fallback, artifact fields."""

import numpy as np
import pytest

from repro.catalog.profiler import profile_table
from repro.generation.generator import CatDB
from repro.llm.mock import MockLLM
from repro.ml.model_selection import train_test_split
from repro.table.table import Table


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(1)
    n = 260
    data = {f"v{i}": rng.normal(size=n) for i in range(8)}
    data["y"] = np.where(data["v0"] + data["v1"] > 0, "a", "b").tolist()
    t = Table.from_dict(data, name="opts")
    labels = [str(v) for v in t["y"]]
    train, test = train_test_split(t, test_size=0.3, random_state=0,
                                   stratify=labels)
    return train, test, profile_table(t, target="y", task_type="binary")


class TestAlpha:
    def test_alpha_reduces_prompt_tokens(self, setup):
        train, test, catalog = setup
        full = CatDB(MockLLM("gpt-4o", fault_injection=False)).generate(
            train, test, catalog
        )
        narrow = CatDB(MockLLM("gpt-4o", fault_injection=False), alpha=2).generate(
            train, test, catalog
        )
        assert narrow.cost.prompt_tokens < full.cost.prompt_tokens
        assert narrow.success

    def test_alpha_pipeline_uses_fewer_features(self, setup):
        train, test, catalog = setup
        narrow = CatDB(MockLLM("gpt-4o", fault_injection=False), alpha=3).generate(
            train, test, catalog
        )
        assert narrow.metrics["n_features"] <= 3


class TestFallback:
    def test_zero_repair_budget_forces_fallback_on_fault(self, setup):
        train, test, catalog = setup
        # near-certain fault on the first generation, no repair attempts
        for seed in range(10):
            llm = MockLLM("llama3.1-70b", seed=seed, error_rate_multiplier=10.0)
            report = CatDB(llm, max_fix_attempts=0).generate(
                train, test, catalog, iteration=seed
            )
            assert report.success  # fallback guarantees a pipeline
            if report.fallback_used:
                return
        pytest.fail("no injected fault in 10 stress-mode generations")

    def test_fallback_metrics_reasonable(self, setup):
        train, test, catalog = setup
        llm = MockLLM("llama3.1-70b", seed=0, error_rate_multiplier=10.0)
        report = CatDB(llm, max_fix_attempts=0).generate(train, test, catalog)
        assert report.primary_metric is not None
        assert report.primary_metric > 0.6


class TestReportShape:
    def test_tokens_match_client_usage(self, setup):
        train, test, catalog = setup
        llm = MockLLM("gemini-1.5", seed=2)
        report = CatDB(llm).generate(train, test, catalog)
        assert report.total_tokens == llm.usage.total_tokens

    def test_variant_labels(self, setup):
        train, test, catalog = setup
        report = CatDB(MockLLM("gpt-4o", fault_injection=False)).generate(
            train, test, catalog
        )
        assert report.variant == "catdb"
        assert report.dataset == "opts"
        assert report.llm == "gpt-4o"
