"""Fault injection and repair for generated pipelines.

A real LLM's pipeline code fails in characteristic ways; CatDB's whole
Section 4 is the machinery that detects and repairs those failures.  To
exercise that machinery offline, :func:`inject_fault` corrupts clean
generated code with one of the 23 taxonomy error types (chosen per the
model profile's empirical error mix), and :func:`repair_code` implements
the "LLM fixes its own code given the error message" step with
pattern-based repairs — falling back to full regeneration when the error
prompt carries the original metadata summary (as the paper's runtime-error
prompts do, Figure 7).

Injected faults are *organic* where possible: the corrupted code really
raises the documented exception when executed; only environment-specific
failures (permissions, memory limits) are simulated with explicit raises.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Sequence

from repro.generation.errors import ERROR_TYPES, ErrorGroup, ErrorType
from repro.llm.base import ChatMessage, LLMClient, LLMResponse, LLMUsage
from repro.llm.profiles import LLMProfile
from repro.llm.rand import stable_hash, weighted_pick
from repro.obs.metrics import get_metrics
from repro.resilience.errors import TransientError

__all__ = [
    "choose_error_type",
    "inject_fault",
    "repair_code",
    "should_fail",
    "TRANSIENT_FAULT_TYPES",
    "RateLimited",
    "ConnectionDropped",
    "TruncatedCompletion",
    "SlowResponse",
    "FlakyLLM",
]


# ---------------------------------------------------------------------------
# transient transport faults (Section 4's taxonomy covers *generated code*;
# these model the transport layer failing before clean code ever arrives)
# ---------------------------------------------------------------------------


class RateLimited(TransientError):
    """Simulated 429: the provider asked us to back off."""


class ConnectionDropped(TransientError):
    """Simulated connection reset mid-response."""


class TruncatedCompletion(TransientError):
    """Completion arrived garbled/cut short (content-length mismatch)."""

    def __init__(self, message: str, partial: str = "") -> None:
        super().__init__(message)
        self.partial = partial


class SlowResponse(TransientError):
    """The call stalled past the driver's own patience."""


#: Injection order is part of the deterministic schedule — do not reorder.
TRANSIENT_FAULT_TYPES: tuple[str, ...] = (
    "rate_limit",
    "connection_reset",
    "truncated_completion",
    "slow_response",
)


class FlakyLLM(LLMClient):
    """Decorator that injects transient transport faults into any client.

    Each ``complete`` call draws from a deterministic per-call schedule
    (``stable_hash(seed, call_index)``), so a seeded run injects exactly
    the same fault sequence every time.  Retried attempts advance the
    call index and therefore get fresh draws — exactly how a real flaky
    transport behaves, minus the nondeterminism.

    ``slow_response`` faults really sleep for ``slow_seconds`` before
    raising, so a per-call deadline (signal-based) can interrupt them;
    ``truncated_completion`` faults consume a real inner completion (the
    tokens were spent) and then raise with the mangled partial attached.
    """

    def __init__(
        self,
        inner: LLMClient,
        fault_rate: float = 0.3,
        seed: int = 0,
        fault_types: Sequence[str] = TRANSIENT_FAULT_TYPES,
        slow_seconds: float = 0.2,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        unknown = set(fault_types) - set(TRANSIENT_FAULT_TYPES)
        if unknown:
            raise ValueError(f"unknown transient fault types: {sorted(unknown)}")
        self.inner = inner
        self.model = inner.model
        self.fault_rate = fault_rate
        self.seed = seed
        self.fault_types = tuple(fault_types)
        self.slow_seconds = slow_seconds
        self._sleep = sleep
        self.calls = 0
        self.faults_injected = 0

    @property
    def usage(self) -> LLMUsage:
        """Token accounting lives with the inner client."""
        return self.inner.usage

    def reset_usage(self) -> None:
        self.inner.reset_usage()

    def _draw_fault(self, call_index: int) -> str | None:
        point = stable_hash("flaky", self.seed, call_index) % 10_000
        if point >= self.fault_rate * 10_000:
            return None
        kind_index = stable_hash("flaky-kind", self.seed, call_index)
        return self.fault_types[kind_index % len(self.fault_types)]

    def complete(self, messages: Sequence[ChatMessage] | str) -> LLMResponse:
        self.calls += 1
        kind = self._draw_fault(self.calls)
        if kind is None:
            return self.inner.complete(messages)
        self.faults_injected += 1
        get_metrics().inc("llm.faults_injected", type=kind)
        if kind == "rate_limit":
            raise RateLimited("simulated 429: rate limit exceeded")
        if kind == "connection_reset":
            raise ConnectionDropped("simulated connection reset by peer")
        if kind == "truncated_completion":
            response = self.inner.complete(messages)
            raise TruncatedCompletion(
                "simulated truncated completion: content-length mismatch",
                partial=response.content[: len(response.content) // 2],
            )
        # slow_response: stall, then fail like a driver-side socket timeout.
        # A signal-based per-call deadline interrupts the sleep first.
        self._sleep(self.slow_seconds)
        raise SlowResponse(
            f"simulated slow response: no data after {self.slow_seconds:g}s"
        )


def should_fail(
    profile: LLMProfile, *hash_parts: Any, rate_multiplier: float = 1.0
) -> bool:
    """Decide whether this generation contains an error.

    ``rate_multiplier`` scales the profile's base error rate: prompts with
    dataset-specific rules and rich metadata ground the model and lower the
    rate (CatDB's claim); bare prompts raise it (how AIDE/AutoGen behave in
    the paper's Table 8 failure counts).
    """
    rate = min(0.95, profile.error_rate * rate_multiplier)
    point = stable_hash("fail?", profile.name, *hash_parts) % 10_000
    return point < rate * 10_000


def choose_error_type(profile: LLMProfile, *hash_parts: Any) -> ErrorType:
    """Pick an error type following the profile's KB/SE/RE mix (Table 2)."""
    groups = [ErrorGroup.KB, ErrorGroup.SE, ErrorGroup.RE]
    group = weighted_pick(groups, list(profile.error_mix), "group", profile.name, *hash_parts)
    candidates = [e for e in ERROR_TYPES.values() if e.group is group]
    weights = [e.weight for e in candidates]
    return weighted_pick(candidates, weights, "type", profile.name, *hash_parts)


# ---------------------------------------------------------------------------
# corruption
# ---------------------------------------------------------------------------

def inject_fault(code: str, error_type: ErrorType, salt: int = 0) -> str:
    """Corrupt clean pipeline code so that it exhibits ``error_type``."""
    injector = _INJECTORS.get(error_type.name)
    if injector is None:
        raise KeyError(f"no injector for error type {error_type.name!r}")
    return injector(code, salt)


def _lines(code: str) -> list[str]:
    return code.split("\n")


def _after_imports_index(lines: list[str]) -> int:
    last = 0
    for i, line in enumerate(lines):
        if line.startswith(("import ", "from ")):
            last = i + 1
    return last


def _first_body_index(lines: list[str], anchor: str) -> int | None:
    for i, line in enumerate(lines):
        if anchor in line:
            return i
    return None


def _insert_after(code: str, anchor: str, new_lines: list[str]) -> str:
    lines = _lines(code)
    idx = _first_body_index(lines, anchor)
    if idx is None:
        idx = len(lines) - 1
    return "\n".join(lines[: idx + 1] + new_lines + lines[idx + 1 :])


def _inject_missing_package(code: str, salt: int) -> str:
    package = ["xgboost", "lightgbm", "catboost", "torch"][salt % 4]
    lines = _lines(code)
    idx = _after_imports_index(lines)
    lines.insert(idx, f"import {package}")
    return "\n".join(lines)


def _inject_package_version(code: str, salt: int) -> str:
    symbol = ["HistGradientBoosting", "TargetEncoder", "IterativeImputer"][salt % 3]
    lines = _lines(code)
    idx = _after_imports_index(lines)
    lines.insert(idx, f"from repro.ml import {symbol}")
    return "\n".join(lines)


def _inject_missing_data_file(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "def run_pipeline(train, test):",
        ['    schema_cache = open("/data/catalog/schema_cache.json")'],
    )


def _inject_env_variable(code: str, salt: int) -> str:
    lines = _lines(code)
    idx = _after_imports_index(lines)
    lines.insert(idx, "import os")
    out = "\n".join(lines)
    return _insert_after(
        out,
        "def run_pipeline(train, test):",
        ['    workspace = os.environ["CATDB_WORKSPACE"]'],
    )


def _inject_permission(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "def run_pipeline(train, test):",
        [
            "    # persist intermediate artifacts for reuse",
            '    raise PermissionError("cannot write model artifact to /var/lib/catdb")',
        ],
    )


def _inject_resource_limit(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "    model.fit(X_train, y_train)",
        ['    raise MemoryError("pipeline exceeded the sandbox memory budget")'],
    )


def _inject_stray_prose(code: str, salt: int) -> str:
    lines = _lines(code)
    idx = _after_imports_index(lines)
    lines.insert(idx, "Here is the complete pipeline implementing your requirements:")
    return "\n".join(lines)


def _inject_markdown_fence(code: str, salt: int) -> str:
    return "```python\n" + code + "\n```"


def _inject_broken_indentation(code: str, salt: int) -> str:
    lines = _lines(code)
    body = [
        i for i, line in enumerate(lines)
        if line.startswith("    ") and not line.strip().startswith("#")
    ]
    if not body:
        return "    " + code
    idx = body[salt % len(body)]
    lines[idx] = "  " + lines[idx]
    return "\n".join(lines)


def _inject_unclosed_bracket(code: str, salt: int) -> str:
    lines = _lines(code)
    for i, line in enumerate(lines):
        if "model = " in line and line.rstrip().endswith(")"):
            lines[i] = line.rstrip()[:-1]
            return "\n".join(lines)
    return code.rstrip()[:-1] if code.rstrip().endswith(")") else code + "\n("


def _inject_missing_import(code: str, salt: int) -> str:
    lines = [line for line in _lines(code) if not line.startswith("from repro.ml import")]
    return "\n".join(lines)


def _inject_truncated_code(code: str, salt: int) -> str:
    lines = _lines(code)
    keep = max(5, int(len(lines) * 0.7))
    lines = lines[:keep]
    if lines and not lines[-1].rstrip().endswith((":", ",")):
        lines[-1] = lines[-1].rstrip() + " ("
    return "\n".join(lines)


def _inject_unknown_column(code: str, salt: int) -> str:
    # the model hallucinates a feature and stops guarding column existence
    out = code.replace(
        "train.select([c for c in FEATURES + [TARGET] if c in train])",
        "train.select(FEATURES + [TARGET])",
    ).replace(
        "test.select([c for c in FEATURES + [TARGET] if c in test])",
        "test.select(FEATURES + [TARGET])",
    )
    match = re.search(r"FEATURES = \[\s*'([^']+)'", out)
    if match:
        original = match.group(1)
        out = out.replace(f"'{original}'", f"'{original}_normalized'", 1)
    else:
        out = _insert_after(
            out, "def run_pipeline(train, test):", ['    _ = train["engineered_score"]']
        )
    return out


def _inject_nan_in_features(code: str, salt: int) -> str:
    out = re.sub(r"'impute': '(median|mean|most_frequent)'", "'impute': None", code)
    out = re.sub(r"\n\s*train = drop_missing_rows\(train, subset=.*?\)", "", out)
    return out


def _inject_type_mismatch(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "    X_train = vectorizer.fit_transform(train)",
        ['    X_train = X_train + "standardized"'],
    )


def _inject_shape_mismatch(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "    X_test = vectorizer.transform(test)",
        ["    X_test = X_test[: X_test.shape[0] // 2]"],
    )


def _inject_unseen_label(code: str, salt: int) -> str:
    lines = [
        "    from repro.ml import LabelEncoder",
        "    _label_codec = LabelEncoder().fit(y_train[: max(2, len(y_train) // 4)])",
        "    _codes = _label_codec.transform(y_train)",
    ]
    anchor = "    y_train = np.asarray"
    idx = _first_body_index(_lines(code), anchor)
    if idx is None:
        anchor = "    y_train ="
    return _insert_after(code, anchor, lines)


def _inject_wrong_api(code: str, salt: int) -> str:
    return code.replace("model.predict(X_test)", "model.run_inference(X_test)", 1)


def _inject_undefined_variable(code: str, salt: int) -> str:
    return code.replace(
        "X_test = vectorizer.transform(test)",
        "X_test = vectoriser.transform(test)",
        1,
    )


def _inject_division_by_zero(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "    X_train = vectorizer.fit_transform(train)",
        ["    density = X_train.shape[0] / (X_train.shape[1] - X_train.shape[1])"],
    )


def _inject_index_out_of_bounds(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "    X_train = vectorizer.fit_transform(train)",
        ["    anchor_feature = X_train[0, X_train.shape[1]]"],
    )


def _inject_task_mismatch(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "    model.fit(X_train, y_train)",
        [
            '    if len(set(map(str, y_train))) > 50:',
            '        raise ValueError("classifier applied to a target with too many classes")',
        ],
    )


def _inject_no_convergence(code: str, salt: int) -> str:
    return _insert_after(
        code,
        "    model.fit(X_train, y_train)",
        [
            "    if float(np.std(model.predict(X_train[:20]).astype(object) == model.predict(X_train[:20]).astype(object))) == 0.0:",
            '        raise RuntimeError("optimizer failed to converge: constant predictions")',
        ],
    )


_INJECTORS = {
    "missing_package": _inject_missing_package,
    "package_version": _inject_package_version,
    "missing_data_file": _inject_missing_data_file,
    "env_variable": _inject_env_variable,
    "permission": _inject_permission,
    "resource_limit": _inject_resource_limit,
    "stray_prose": _inject_stray_prose,
    "markdown_fence": _inject_markdown_fence,
    "broken_indentation": _inject_broken_indentation,
    "unclosed_bracket": _inject_unclosed_bracket,
    "missing_import": _inject_missing_import,
    "truncated_code": _inject_truncated_code,
    "unknown_column": _inject_unknown_column,
    "nan_in_features": _inject_nan_in_features,
    "type_mismatch": _inject_type_mismatch,
    "shape_mismatch": _inject_shape_mismatch,
    "unseen_label": _inject_unseen_label,
    "wrong_api": _inject_wrong_api,
    "undefined_variable": _inject_undefined_variable,
    "division_by_zero": _inject_division_by_zero,
    "index_out_of_bounds": _inject_index_out_of_bounds,
    "task_mismatch": _inject_task_mismatch,
    "no_convergence": _inject_no_convergence,
}

assert set(_INJECTORS) == set(ERROR_TYPES), "every taxonomy type needs an injector"


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------

_INJECTED_LINE_PATTERNS = [
    r"^\s*import (xgboost|lightgbm|catboost|torch)\b.*$",
    r"^\s*from repro\.ml import (HistGradientBoosting|TargetEncoder|IterativeImputer).*$",
    r"^\s*schema_cache = open\(.*$",
    r"^\s*workspace = os\.environ\[.*$",
    r"^\s*raise PermissionError\(.*$",
    r"^\s*raise MemoryError\(.*$",
    r"^\s*# persist intermediate artifacts.*$",
    r"^Here is the complete pipeline.*$",
    r"^```(python)?\s*$",
    r"^\s*X_train = X_train \+ \"standardized\"$",
    r"^\s*X_test = X_test\[: X_test\.shape\[0\] // 2\]$",
    r"^\s*from repro\.ml import LabelEncoder$",
    r"^\s*_label_codec = .*$",
    r"^\s*_codes = _label_codec.*$",
    r"^\s*density = X_train\.shape\[0\] / .*$",
    r"^\s*anchor_feature = X_train\[0, X_train\.shape\[1\]\]$",
    r"^\s*if len\(set\(map\(str, y_train\)\)\) > 50:$",
    r"^\s*raise ValueError\(\"classifier applied to a target.*$",
    r"^\s*if float\(np\.std\(model\.predict\(X_train\[:20\]\).*$",
    r"^\s*raise RuntimeError\(\"optimizer failed to converge.*$",
]


def strip_injected_lines(code: str) -> str:
    """Remove lines matching known failure patterns (local-KB style patching)."""
    compiled = [re.compile(p) for p in _INJECTED_LINE_PATTERNS]
    kept = [
        line for line in _lines(code)
        if not any(p.match(line) for p in compiled)
    ]
    return "\n".join(kept)


def repair_code(
    code: str,
    error_type_name: str,
    payload: dict[str, Any] | None = None,
    profile: LLMProfile | None = None,
    salt: int = 0,
) -> str | None:
    """One LLM repair attempt: pattern-fix, else regenerate from metadata.

    Returns the repaired code, or ``None`` if this error cannot be repaired
    from the information available (no payload to regenerate from).
    """
    stripped = strip_injected_lines(code)

    if error_type_name == "broken_indentation":
        fixed_lines = []
        for line in stripped.split("\n"):
            indent = len(line) - len(line.lstrip(" "))
            if line.strip() and indent % 4 != 0:
                line = " " * (4 * round(indent / 4)) + line.lstrip(" ")
            fixed_lines.append(line)
        stripped = "\n".join(fixed_lines)
    elif error_type_name == "unclosed_bracket":
        lines = stripped.split("\n")
        for i, line in enumerate(lines):
            if "model = " in line and line.count("(") > line.count(")"):
                lines[i] = line + ")" * (line.count("(") - line.count(")"))
        stripped = "\n".join(lines)
    elif error_type_name == "missing_import":
        stripped = _reinsert_ml_import(stripped)
    elif error_type_name == "unknown_column":
        stripped = stripped.replace(
            "train.select(FEATURES + [TARGET])",
            "train.select([c for c in FEATURES + [TARGET] if c in train])",
        ).replace(
            "test.select(FEATURES + [TARGET])",
            "test.select([c for c in FEATURES + [TARGET] if c in test])",
        )
        stripped = re.sub(r"'(\w+)_normalized'", r"'\1'", stripped)
        stripped = re.sub(r"^\s*_ = train\[\"engineered_score\"\]\n?", "", stripped, flags=re.M)
    elif error_type_name == "nan_in_features":
        stripped = stripped.replace("'impute': None", "'impute': 'median'")
    elif error_type_name == "wrong_api":
        stripped = stripped.replace("model.run_inference(", "model.predict(")
    elif error_type_name == "undefined_variable":
        stripped = stripped.replace("vectoriser.", "vectorizer.")
    elif error_type_name == "truncated_code":
        if payload is not None and profile is not None:
            from repro.llm.codegen import generate_pipeline_code

            return generate_pipeline_code(payload, profile, salt=salt + 1)
        return None

    if _compiles(stripped) and "def run_pipeline" in stripped:
        return stripped
    if payload is not None and profile is not None:
        from repro.llm.codegen import generate_pipeline_code

        return generate_pipeline_code(payload, profile, salt=salt + 1)
    return None


def _reinsert_ml_import(code: str) -> str:
    used = set(re.findall(
        r"\b(TableVectorizer|RandomForestClassifier|RandomForestRegressor|"
        r"GradientBoostingClassifier|GradientBoostingRegressor|LogisticRegression|"
        r"LinearRegression|Ridge|DecisionTreeClassifier|DecisionTreeRegressor|"
        r"GridSearchCV|LinearSVC|accuracy_score|roc_auc_score|r2_score)\b",
        code,
    ))
    if not used:
        return code
    lines = code.split("\n")
    idx = 0
    for i, line in enumerate(lines):
        if line.startswith("import "):
            idx = i + 1
    lines.insert(idx, f"from repro.ml import {', '.join(sorted(used))}")
    return "\n".join(lines)


def _compiles(code: str) -> bool:
    try:
        compile(code, "<pipeline>", "exec")
    except SyntaxError:
        return False
    return True
