"""Pool worker: an isolated interpreter that executes pipeline jobs.

Spawned by :class:`~repro.execpool.pool.ExecPool` as a fresh
``python -m repro.execpool.worker`` process (no fork: nothing of the
orchestrator's state — locks, threads, contextvars — leaks in).  Startup
sequence:

1. Duplicate the protocol fds (stdin for jobs, stdout for replies), then
   point the *real* fds 0/1/2 at ``/dev/null``.  Pipeline code that
   floods stdout/stderr or reads stdin therefore touches ``/dev/null``,
   never the protocol stream.
2. Preload the modules generated pipelines import (numpy, ``repro.ml``,
   ``repro.table``) so warm executions pay no import cost and the
   per-job ``RLIMIT_AS`` cap never charges for module loading.
3. Send a ``ready`` frame, then loop: read a job, apply per-job rlimits
   (address space + CPU), run it through the *same*
   ``_execute_pipeline_code_impl`` the in-process mode uses (signal-mode
   wall budget — this is a fresh main thread, so SIGALRM works), restore
   the rlimits, and reply with the pickled
   :class:`~repro.generation.executor.ExecutionResult` plus the worker's
   peak RSS.

The in-worker wall budget (SIGALRM) kills pure-Python loops and sleeps
cleanly, preserving the in-process timeout classification; anything it
cannot interrupt — tight C loops, a blocked allocator — is SIGKILLed by
the parent at budget + grace and classified from the death.  A per-job
``RLIMIT_CPU`` (``SIGXCPU`` handler raising
:class:`~repro.resilience.deadline.ExecutionTimeout`) additionally bounds
CPU burn independent of the parent's clock.

Exceeding ``RLIMIT_AS`` makes allocations fail with ``MemoryError``
inside the pipeline, which the shared impl classifies as
``resource_limit`` — identical to an in-process MemoryError.
"""

from __future__ import annotations

import os
import resource
import signal
import sys
from typing import Any

__all__ = ["main", "serve"]


def _contain_stdio() -> tuple[Any, Any]:
    """Secure the protocol fds; route real stdio to /dev/null.

    Returns ``(job_stream, reply_stream)`` binary files over duplicated
    fds.  After this call fds 0/1/2 — and ``sys.stdin/stdout/stderr`` —
    all point at ``/dev/null``, so hostile pipeline I/O is swallowed at
    the OS level (C-level ``write(1, ...)`` included).
    """
    job_fd = os.dup(0)
    reply_fd = os.dup(1)
    os.set_inheritable(job_fd, False)
    os.set_inheritable(reply_fd, False)
    devnull = os.open(os.devnull, os.O_RDWR)
    os.dup2(devnull, 0)
    os.dup2(devnull, 1)
    os.dup2(devnull, 2)
    if devnull > 2:
        os.close(devnull)
    sys.stdin = open(0, "r", closefd=False)
    sys.stdout = open(1, "w", closefd=False)
    sys.stderr = open(2, "w", closefd=False)
    return os.fdopen(job_fd, "rb"), os.fdopen(reply_fd, "wb")


def _preload() -> None:
    """Import everything a generated pipeline may touch (warm cache)."""
    import numpy  # noqa: F401
    import repro.ml  # noqa: F401
    import repro.table.ops  # noqa: F401
    import repro.generation.executor  # noqa: F401


class _JobLimits:
    """Apply/restore per-job rlimits (soft caps only; hard stays put)."""

    def __init__(self, memory_mb: int | None, cpu_seconds: float | None) -> None:
        self._restore: list[tuple[int, tuple[int, int]]] = []
        if memory_mb is not None and memory_mb > 0:
            soft, hard = resource.getrlimit(resource.RLIMIT_AS)
            cap = memory_mb * 1024 * 1024
            if hard == resource.RLIM_INFINITY or cap < hard:
                resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
                self._restore.append((resource.RLIMIT_AS, (soft, hard)))
        if cpu_seconds is not None and cpu_seconds > 0:
            soft, hard = resource.getrlimit(resource.RLIMIT_CPU)
            used = resource.getrusage(resource.RUSAGE_SELF)
            budget = int(used.ru_utime + used.ru_stime + cpu_seconds) + 1
            if hard == resource.RLIM_INFINITY or budget < hard:
                resource.setrlimit(resource.RLIMIT_CPU, (budget, hard))
                self._restore.append((resource.RLIMIT_CPU, (soft, hard)))

    def restore(self) -> None:
        for which, limits in reversed(self._restore):
            try:
                resource.setrlimit(which, limits)
            except (ValueError, OSError):
                pass  # soft cap already consumed; recycling will replace us


def _install_sigxcpu() -> None:
    """CPU-rlimit overrun surfaces as the taxonomy's timeout error."""
    from repro.resilience.deadline import ExecutionTimeout

    def _on_xcpu(signum: int, frame: Any) -> None:
        raise ExecutionTimeout(
            "execution exceeded its CPU-time budget (RLIMIT_CPU)"
        )

    signal.signal(signal.SIGXCPU, _on_xcpu)


def serve(job_stream: Any, reply_stream: Any) -> None:
    """The worker loop: one reply frame per job frame, until EOF."""
    from repro.execpool.protocol import (
        ExecJob,
        WorkerDied,
        WorkerReply,
        read_frame,
        write_frame,
    )
    from repro.generation.executor import _execute_pipeline_code_impl

    _install_sigxcpu()
    jobs_done = 0
    write_frame(reply_stream, WorkerReply(kind="ready", pid=os.getpid()))
    job_fd = job_stream.fileno()
    while True:
        try:
            job: ExecJob = read_frame(job_fd)
        except (WorkerDied, EOFError):
            return  # parent closed the job pipe: clean shutdown
        cpu_seconds = job.cpu_seconds
        if cpu_seconds is None and job.timeout_seconds:
            # wall budget implies a CPU ceiling too (headroom for BLAS
            # threads); kills tight C loops even if SIGALRM cannot
            cpu_seconds = 4.0 * job.timeout_seconds + 5.0
        limits = _JobLimits(job.memory_mb, cpu_seconds)
        try:
            result = _execute_pipeline_code_impl(
                job.code,
                job.train,
                job.test,
                job.filename,
                timeout_seconds=job.timeout_seconds,
                timeout_mode="signal",
            )
        finally:
            limits.restore()
        jobs_done += 1
        peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        try:
            write_frame(reply_stream, WorkerReply(
                kind="result",
                result=result,
                peak_rss_bytes=peak_rss,
                jobs_done=jobs_done,
                pid=os.getpid(),
            ))
        except BrokenPipeError:
            return  # parent went away mid-reply


def main() -> int:
    job_stream, reply_stream = _contain_stdio()
    # the worker must never outlive a dead parent; a closed job pipe
    # (read EOF) is the shutdown signal, so default SIGPIPE dispositions
    # are fine — but ignore SIGINT so ^C on the orchestrator's terminal
    # does not take workers down before the pool can drain them
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _preload()
    serve(job_stream, reply_stream)
    return 0


if __name__ == "__main__":
    sys.exit(main())
