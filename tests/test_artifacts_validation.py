"""Tests for the artifact store, expectation suites, and feature importances."""

import numpy as np
import pytest

from repro.catalog.validation import Expectation, ExpectationSuite
from repro.datasets.corruption import inject_missing_values, inject_outliers
from repro.generation.artifacts import ArtifactStore
from repro.generation.generator import CatDB
from repro.llm.mock import MockLLM
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import train_test_split


class TestArtifactStore:
    @pytest.fixture
    def report(self, small_classification_table, classification_catalog):
        train, test = train_test_split(
            small_classification_table, test_size=0.3, random_state=0
        )
        generator = CatDB(MockLLM("gpt-4o", fault_injection=False))
        return generator.generate(train, test, classification_catalog)

    def test_save_writes_three_files(self, tmp_path, report,
                                     classification_catalog):
        store = ArtifactStore(tmp_path)
        artifact = store.save(report, catalog=classification_catalog)
        assert artifact.pipeline_path.exists()
        assert artifact.report_path.exists()
        assert artifact.catalog_path is not None and artifact.catalog_path.exists()

    def test_saved_pipeline_is_the_code(self, tmp_path, report):
        store = ArtifactStore(tmp_path)
        artifact = store.save(report)
        assert store.load_pipeline(artifact) == report.code

    def test_report_payload_fields(self, tmp_path, report):
        store = ArtifactStore(tmp_path)
        artifact = store.save(report)
        payload = store.load_report(artifact)
        assert payload["success"] is True
        assert payload["tokens"]["total"] == report.total_tokens
        assert payload["interactions"]["gamma"] == report.cost.gamma
        assert "test_auc" in payload["metrics"]

    def test_list_runs(self, tmp_path, report):
        store = ArtifactStore(tmp_path)
        store.save(report)
        store.save(report)
        assert len(store.list_runs()) == 2
        assert len(store.list_runs(dataset=report.dataset)) == 2
        assert store.list_runs(dataset="nonexistent") == []

    def test_custom_run_id_slugged(self, tmp_path, report):
        store = ArtifactStore(tmp_path)
        artifact = store.save(report, run_id="exp/1: baseline!")
        assert "/" not in artifact.directory.name


class TestExpectationSuite:
    @pytest.fixture
    def suite(self, classification_catalog):
        return ExpectationSuite.from_catalog(classification_catalog)

    def test_clean_data_passes(self, suite, small_classification_table):
        report = suite.validate(small_classification_table)
        assert report.ok, report.render()
        assert report.n_checked > 0

    def test_missing_column_fails(self, suite, small_classification_table):
        report = suite.validate(small_classification_table.drop("x2"))
        assert not report.ok
        assert any("absent" in reason for _e, reason in report.failed)

    def test_type_drift_fails(self, suite, small_classification_table):
        drifted = small_classification_table.copy()
        drifted.set_column(drifted["x2"].astype_string())
        report = suite.validate(drifted)
        assert any(e.kind == "type" for e, _r in report.failed)

    def test_out_of_range_outliers_fail(self, suite, small_classification_table):
        corrupted = inject_outliers(
            small_classification_table, "label", 0.10, magnitude=50, seed=0
        )
        report = suite.validate(corrupted)
        assert any(e.kind == "range" for e, _r in report.failed)

    def test_missing_explosion_fails(self, suite, small_classification_table):
        corrupted = inject_missing_values(
            small_classification_table, "label", 0.5, seed=0
        )
        report = suite.validate(corrupted)
        assert any(e.kind == "missing_rate" for e, _r in report.failed)

    def test_novel_categories_fail(self, suite, small_classification_table):
        drifted = small_classification_table.copy()
        values = ["Z" if i % 3 == 0 else v
                  for i, v in enumerate(drifted["cat"])]
        from repro.table.column import Column

        drifted.set_column(Column("cat", values))
        report = suite.validate(drifted)
        assert any(e.kind == "categories" for e, _r in report.failed)

    def test_describe_all_kinds(self, suite):
        descriptions = [e.describe() for e in suite.expectations]
        assert all(isinstance(d, str) and d for d in descriptions)

    def test_render_mentions_failures(self, suite, small_classification_table):
        report = suite.validate(small_classification_table.drop("x1"))
        assert "FAIL" in report.render()

    def test_unknown_kind_rejected(self, small_classification_table):
        suite = ExpectationSuite([Expectation("x1", "entropy")])
        with pytest.raises(ValueError):
            suite.validate(small_classification_table)


class TestFeatureImportances:
    def test_classifier_finds_signal_feature(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 6))
        y = np.where(X[:, 4] > 0, "a", "b")
        forest = RandomForestClassifier(n_estimators=12, max_depth=6).fit(X, y)
        importances = forest.feature_importances_
        assert importances.argmax() == 4
        assert importances.sum() == pytest.approx(1.0)

    def test_regressor_importances(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 4))
        y = 5 * X[:, 1] + 0.1 * rng.normal(size=300)
        forest = RandomForestRegressor(n_estimators=10, max_depth=6).fit(X, y)
        assert forest.feature_importances_.argmax() == 1

    def test_non_negative(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        y = np.where(X[:, 0] > 0, "p", "n")
        forest = RandomForestClassifier(n_estimators=5, max_depth=4).fit(X, y)
        assert (forest.feature_importances_ >= 0).all()
