"""Unit tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.preprocessing import (
    FeatureHasher,
    KHotEncoder,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    QuantileClipper,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
)


class TestSimpleImputer:
    def test_mean(self):
        X = np.array([[1.0], [np.nan], [3.0]])
        out = SimpleImputer("mean").fit_transform(X)
        assert out[1, 0] == 2.0

    def test_median(self):
        X = np.array([[1.0], [np.nan], [3.0], [100.0]])
        out = SimpleImputer("median").fit_transform(X)
        assert out[1, 0] == 3.0

    def test_most_frequent(self):
        X = np.array([["a"], [None], ["a"], ["b"]], dtype=object)
        out = SimpleImputer("most_frequent").fit_transform(X)
        assert out[1, 0] == "a"

    def test_constant(self):
        X = np.array([[None]], dtype=object)
        out = SimpleImputer("constant", fill_value="zz").fit_transform(X)
        assert out[0, 0] == "zz"

    def test_all_missing_column_imputes_zero(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer("mean").fit_transform(X)
        assert (out == 0.0).all()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer("magic")

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            SimpleImputer().transform(np.zeros((1, 1)))

    def test_fit_stats_applied_to_new_data(self):
        imp = SimpleImputer("mean").fit(np.array([[0.0], [10.0]]))
        out = imp.transform(np.array([[np.nan]]))
        assert out[0, 0] == 5.0


class TestScalers:
    def test_standard_zero_mean_unit_std(self):
        X = np.array([[1.0], [3.0]])
        out = StandardScaler().fit_transform(X)
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_standard_constant_column_passthrough(self):
        X = np.full((3, 1), 7.0)
        out = StandardScaler().fit_transform(X)
        assert (out == 0.0).all()

    def test_minmax_range(self):
        X = np.array([[0.0], [10.0]])
        out = MinMaxScaler().fit_transform(X)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_minmax_custom_range(self):
        out = MinMaxScaler((-1, 1)).fit_transform(np.array([[0.0], [10.0]]))
        assert out.min() == -1.0 and out.max() == 1.0

    def test_robust_uses_median(self):
        X = np.array([[1.0], [2.0], [3.0], [1000.0]])
        out = RobustScaler().fit_transform(X)
        # the median row maps near zero despite the huge outlier
        assert abs(out[1, 0]) < 1.0

    def test_quantile_clipper_bounds(self):
        X = np.linspace(0, 100, 101).reshape(-1, 1)
        out = QuantileClipper(0.05, 0.95).fit_transform(X)
        assert out.min() >= 4.9 and out.max() <= 95.1

    def test_quantile_clipper_validates(self):
        with pytest.raises(ValueError):
            QuantileClipper(0.9, 0.1)


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["b", "a", "b"])
        codes = enc.transform(["a", "b"])
        assert codes.tolist() == [0, 1]
        assert enc.inverse_transform(codes) == ["a", "b"]

    def test_unseen_label_raises(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(["b"])


class TestOrdinalEncoder:
    def test_codes(self):
        X = np.array([["a"], ["b"], ["a"]], dtype=object)
        out = OrdinalEncoder().fit_transform(X)
        assert out[:, 0].tolist() == [0.0, 1.0, 0.0]

    def test_unknown_is_minus_one(self):
        enc = OrdinalEncoder().fit(np.array([["a"]], dtype=object))
        out = enc.transform(np.array([["zz"]], dtype=object))
        assert out[0, 0] == -1.0

    def test_missing_is_minus_one(self):
        enc = OrdinalEncoder().fit(np.array([["a"]], dtype=object))
        assert enc.transform(np.array([[None]], dtype=object))[0, 0] == -1.0


class TestOneHotEncoder:
    def test_basic_width(self):
        X = np.array([["a"], ["b"], ["a"]], dtype=object)
        out = OneHotEncoder().fit_transform(X)
        assert out.shape == (3, 2)
        assert out.sum(axis=1).tolist() == [1.0, 1.0, 1.0]

    def test_unknown_encodes_all_zero(self):
        enc = OneHotEncoder().fit(np.array([["a"]], dtype=object))
        out = enc.transform(np.array([["zz"]], dtype=object))
        assert out.sum() == 0.0

    def test_missing_encodes_all_zero(self):
        enc = OneHotEncoder().fit(np.array([["a"]], dtype=object))
        assert enc.transform(np.array([[None]], dtype=object)).sum() == 0.0

    def test_max_categories_other_bucket(self):
        X = np.array([[v] for v in ["a"] * 5 + ["b"] * 3 + ["c", "d"]], dtype=object)
        enc = OneHotEncoder(max_categories=2).fit(X)
        assert enc.categories_[0] == ["a", "b", OneHotEncoder.OTHER]
        out = enc.transform(np.array([["c"]], dtype=object))
        assert out[0, 2] == 1.0

    def test_feature_names(self):
        enc = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        assert enc.feature_names(["col"]) == ["col=a", "col=b"]

    def test_multicolumn(self):
        X = np.array([["a", "x"], ["b", "y"]], dtype=object)
        out = OneHotEncoder().fit_transform(X)
        assert out.shape == (2, 4)


class TestKHotEncoder:
    def test_delimited_strings(self):
        col = ["Python, Java", "Java", "C++, Python"]
        enc = KHotEncoder().fit(col)
        out = enc.transform(col)
        assert out.shape == (3, 3)
        assert set(enc.items_) == {"Python", "Java", "C++"}
        # row 0 has Python and Java
        assert out[0].sum() == 2.0

    def test_list_cells(self):
        enc = KHotEncoder().fit([["a", "b"], ["b"]])
        assert set(enc.items_) == {"a", "b"}

    def test_unknown_items_ignored(self):
        enc = KHotEncoder().fit(["a"])
        assert enc.transform(["zz"]).sum() == 0.0

    def test_max_items_caps_vocabulary(self):
        enc = KHotEncoder(max_items=1).fit(["a,b", "a,c", "a"])
        assert enc.items_ == ["a"]

    def test_missing_cell_is_zero_row(self):
        enc = KHotEncoder().fit(["a", None])
        assert enc.transform([None]).sum() == 0.0


class TestFeatureHasher:
    def test_deterministic(self):
        h = FeatureHasher(8).fit([])
        a = h.transform(["hello", "world"])
        b = h.transform(["hello", "world"])
        assert (a == b).all()

    def test_output_width(self):
        h = FeatureHasher(4).fit([])
        assert h.transform(["x"]).shape == (1, 4)

    def test_missing_is_zero(self):
        h = FeatureHasher(4).fit([])
        assert h.transform([None]).sum() == 0.0

    def test_n_features_validated(self):
        with pytest.raises(ValueError):
            FeatureHasher(0)
