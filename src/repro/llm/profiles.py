"""Per-model behaviour profiles for the simulated LLMs.

Calibrated to the paper's observations:

- Table 2 error-trace distributions (Llama: 94.6% runtime errors, 2.9%
  syntax, 2.5% environment; Gemini: 76.7% / 2.1% / 21.2%),
- Table 8 runtimes (GPT-4o slower per request; Llama pipelines that fall
  back to naive grid search),
- Figure 11 quality (all three models competitive with CatDB prompts;
  Llama weaker as an error-fixer, "struggled to maintain the system
  conversation but eventually converged").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LLMProfile", "get_profile", "list_profiles", "register_profile"]


@dataclass(frozen=True)
class LLMProfile:
    """Static description of a simulated model's behaviour.

    Attributes
    ----------
    error_rate:
        Probability that a fresh pipeline generation contains an error.
    error_mix:
        Relative weights of (environment/KB, syntax, runtime) error groups,
        matching the paper's Table 2 distribution for that model.
    repair_skill:
        Probability that one error-correction round fixes the error.
    code_quality:
        In [0, 1]; scales model-choice quality (estimator strength and
        hyper-parameters picked by generated code).
    grid_search_tendency:
        Probability that, absent explicit model-selection rules, the model
        emits a slow exhaustive grid search (the Llama failure mode of
        Table 8).
    context_limit:
        Maximum prompt size in tokens; exceeding it truncates the schema
        the model actually "sees" (Figure 10(c) behaviour).
    seconds_per_1k_tokens:
        Simulated API latency used by runtime accounting.
    """

    name: str
    error_rate: float
    error_mix: tuple[float, float, float]
    repair_skill: float
    code_quality: float
    grid_search_tendency: float
    context_limit: int
    seconds_per_1k_tokens: float
    usd_per_1k_prompt: float = 0.0
    usd_per_1k_completion: float = 0.0
    aliases: tuple[str, ...] = field(default=())


_PROFILES: dict[str, LLMProfile] = {}


def register_profile(profile: LLMProfile) -> None:
    _PROFILES[profile.name] = profile
    for alias in profile.aliases:
        _PROFILES[alias] = profile


register_profile(
    LLMProfile(
        name="gpt-4o",
        error_rate=0.22,
        error_mix=(0.08, 0.04, 0.88),
        repair_skill=0.90,
        code_quality=0.92,
        grid_search_tendency=0.05,
        context_limit=128_000,
        seconds_per_1k_tokens=0.9,
        usd_per_1k_prompt=0.0025,
        usd_per_1k_completion=0.01,
        aliases=("gpt4o", "openai/gpt-4o"),
    )
)

register_profile(
    LLMProfile(
        name="gemini-1.5",
        error_rate=0.26,
        error_mix=(0.212, 0.021, 0.767),  # Table 2 row: Gemini-1.5 pro
        repair_skill=0.85,
        code_quality=0.90,
        grid_search_tendency=0.08,
        context_limit=1_000_000,
        seconds_per_1k_tokens=0.45,
        usd_per_1k_prompt=0.00125,
        usd_per_1k_completion=0.005,
        aliases=("gemini-1.5-pro", "gemini", "google/gemini-1.5-pro"),
    )
)

register_profile(
    LLMProfile(
        name="llama3.1-70b",
        error_rate=0.42,
        error_mix=(0.025, 0.029, 0.946),  # Table 2 row: Llama3.1-70b
        repair_skill=0.62,
        code_quality=0.78,
        grid_search_tendency=0.35,
        context_limit=32_000,
        seconds_per_1k_tokens=0.35,
        usd_per_1k_prompt=0.0006,
        usd_per_1k_completion=0.0008,
        aliases=("llama", "llama3", "llama-3.1-70b", "meta/llama3.1-70b"),
    )
)


def get_profile(name: str) -> LLMProfile:
    """Look up a model profile by name or alias (case-insensitive)."""
    key = name.strip().lower()
    if key not in _PROFILES:
        raise KeyError(
            f"unknown LLM profile {name!r}; available: {list_profiles()}"
        )
    return _PROFILES[key]


def list_profiles() -> list[str]:
    """Canonical (non-alias) profile names."""
    seen = []
    for name, profile in _PROFILES.items():
        if name == profile.name and name not in seen:
            seen.append(name)
    return seen
