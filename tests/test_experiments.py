"""Smoke tests for the experiment drivers (tiny configurations)."""

import pytest

from repro.experiments import (
    fig9_profiling,
    fig10_metadata,
    fig11_iterations,
    fig12_cost_runtime,
    fig13_tokens,
    fig14_robustness,
    table2_errors,
    table4_refinement,
    table5_accuracy,
    table6_runtime,
    table7_single_iteration,
    table8_runtime,
)
from repro.experiments.common import (
    format_table,
    metric_str,
    prepare_dataset,
    run_automl,
    run_catdb,
    run_llm_baseline,
)


class TestCommon:
    def test_prepare_dataset_split_and_catalog(self):
        prepared = prepare_dataset("cmc", quick=True)
        assert prepared.train.n_rows + prepared.test.n_rows == 700
        assert prepared.catalog.info.target == "method"
        assert prepared.meta["paper_cells"] == 1_473 * 10

    def test_run_catdb_on_prepared(self):
        prepared = prepare_dataset("diabetes", quick=True)
        report = run_catdb(prepared, fault_injection=False)
        assert report.success

    def test_run_llm_baseline_validates_name(self):
        prepared = prepare_dataset("wifi", quick=True)
        with pytest.raises(ValueError):
            run_llm_baseline(prepared, "gpt-agent")

    def test_run_automl_validates_name(self):
        prepared = prepare_dataset("wifi", quick=True)
        with pytest.raises(ValueError):
            run_automl(prepared, "tpot")

    def test_metric_str(self):
        assert metric_str(0.912) == "91.2"
        assert metric_str(None) == "N/A"
        assert metric_str(0.5, failure="OOM") == "OOM"

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2], [3, 4]], title="T")
        assert out.startswith("T\n")
        assert "bb" in out


class TestDrivers:
    def test_fig9(self):
        result = fig9_profiling.run(datasets=["wifi", "cmc"])
        assert len(result.rows) == 2
        assert "Figure 9" in result.render()

    def test_fig10(self):
        result = fig10_metadata.run(
            datasets=("wifi",), llms=("gpt-4o",),
            combinations=(1, 11), topk_values=(3,),
        )
        assert len(result.combination_rows) == 2
        assert result.chain_rows
        assert "Figure 10" in result.render()

    def test_table4(self):
        result = table4_refinement.run(datasets=("wifi",))
        assert result.rows
        assert "Table 4" in result.render()

    def test_table5(self):
        result = table5_accuracy.run(
            datasets=("wifi",), automl_tools=("flaml",), automl_budget=3.0,
        )
        systems = {r["system"] for r in result.rows}
        assert "catdb-original" in systems and "catdb-refined" in systems
        assert "clean+flaml" in systems
        assert "Table 5" in result.render()

    def test_table6(self):
        result = table6_runtime.run(datasets=("wifi",))
        systems = {r["system"] for r in result.rows}
        assert "cleaning" in systems and "augmentation" in systems
        assert "Table 6" in result.render()

    def test_fig11_and_fig12(self):
        source = fig11_iterations.run(
            datasets=("diabetes",), llms=("gpt-4o",),
            systems=("catdb", "aide"), iterations=2,
        )
        assert len(source.runs) == 4
        assert "Figure 11" in source.render()
        fig12 = fig12_cost_runtime.run(source=source)
        totals = fig12.totals()
        assert {t["system"] for t in totals} == {"catdb", "aide"}
        assert "Figure 12" in fig12.render()

    def test_table7(self):
        result = table7_single_iteration.run(
            datasets=("cmc",), llms=("gpt-4o",), max_fix_attempts=3,
        )
        assert result.cell("cmc", "gpt-4o", "catdb") is not None
        assert result.cell("cmc", None, "autosklearn") is not None
        assert "Table 7" in result.render()

    def test_fig13(self):
        result = fig13_tokens.run(
            datasets=("wifi",), llms=("gpt-4o",), systems=("catdb",),
        )
        assert result.tokens_for("wifi", "gpt-4o", "catdb") > 0
        assert "Figure 13" in result.render()

    def test_table8(self):
        result = table8_runtime.run(datasets=("wifi",), llms=("gpt-4o",))
        summary = result.summary()
        assert any(s["system"] == "catdb" for s in summary)
        assert "Table 8" in result.render()

    def test_fig14(self):
        result = fig14_robustness.run(
            datasets=("utility",), corruptions=("outliers",),
            ratios=(0.0, 0.05), automl_tools=("flaml",),
            automl_budget=3.0, include_caafe=False,
        )
        series = result.series("utility", "outliers", "catdb")
        assert [r for r, _ in series] == [0.0, 0.05]
        assert "Figure 14" in result.render()

    def test_table2(self):
        result = table2_errors.run(
            datasets=("wifi", "cmc"), llms=("llama3.1-70b",), iterations=3,
        )
        assert result.n_requests["llama3.1-70b"] > 0
        assert "Table 2" in result.render()
        dist = result.group_distribution("llama3.1-70b")
        assert abs(sum(dist.values()) - 100.0) < 0.1 or sum(dist.values()) == 0.0
