"""The :class:`Table` — an ordered collection of equal-length columns."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.table.column import Column, ColumnKind

__all__ = ["Table"]


class Table:
    """A columnar table: ordered, named, equal-length :class:`Column` objects.

    Tables are *immutable by convention*: every operation returns a new
    ``Table`` sharing column storage where safe.  The only mutating method
    is :meth:`add_column` / :meth:`set_column`, used during construction.
    """

    def __init__(self, columns: Iterable[Column] = (), name: str = "table") -> None:
        self.name = name
        self._columns: dict[str, Column] = {}
        for column in columns:
            self.add_column(column)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[Any]], name: str = "table") -> "Table":
        """Build a table from ``{column_name: values}``."""
        return cls((Column(key, values) for key, values in data.items()), name=name)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, Any]] | Sequence[Sequence[Any]],
        columns: Sequence[str] | None = None,
        name: str = "table",
    ) -> "Table":
        """Build a table from row dicts, or row tuples plus ``columns``."""
        if not rows:
            if columns is None:
                return cls(name=name)
            return cls((Column(c, []) for c in columns), name=name)
        first = rows[0]
        if isinstance(first, Mapping):
            keys = list(columns) if columns is not None else list(first)
            data = {key: [row.get(key) for row in rows] for key in keys}
        else:
            if columns is None:
                raise ValueError("columns are required when rows are sequences")
            keys = list(columns)
            data = {key: [row[i] for row in rows] for i, key in enumerate(keys)}
        return cls.from_dict(data, name=name)

    # -- mutation (construction-time only) --------------------------------------

    def add_column(self, column: Column) -> None:
        """Append a column; name must be fresh and length must match."""
        if column.name in self._columns:
            raise ValueError(f"duplicate column {column.name!r}")
        if self._columns and len(column) != self.n_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, table has {self.n_rows}"
            )
        self._columns[column.name] = column

    def set_column(self, column: Column) -> None:
        """Add or replace a column of matching length."""
        if self._columns and len(column) != self.n_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, table has {self.n_rows}"
            )
        self._columns[column.name] = column

    # -- basic protocol -----------------------------------------------------------

    @property
    def n_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def n_cols(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __len__(self) -> int:
        return self.n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def __iter__(self) -> Iterable[Column]:
        return iter(self._columns.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self[c] == other[c] for c in self.column_names)

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, shape={self.shape}, columns={self.column_names})"

    def columns(self) -> list[Column]:
        return list(self._columns.values())

    def row(self, index: int) -> dict[str, Any]:
        return {name: col[index] for name, col in self._columns.items()}

    def to_rows(self) -> list[dict[str, Any]]:
        names = self.column_names
        if not names:
            return []
        lists = [self._columns[name].to_list() for name in names]
        return [dict(zip(names, cells)) for cells in zip(*lists)]

    def to_dict(self) -> dict[str, list[Any]]:
        return {name: col.to_list() for name, col in self._columns.items()}

    # -- projection / selection -----------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto ``names`` (order preserved as given)."""
        return Table((self[name] for name in names), name=self.name)

    def drop(self, names: Sequence[str] | str) -> "Table":
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"cannot drop unknown columns {missing}")
        drop_set = set(names)
        return Table(
            (col for name, col in self._columns.items() if name not in drop_set),
            name=self.name,
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        return Table(
            (
                col.renamed(mapping.get(name, name))
                for name, col in self._columns.items()
            ),
            name=self.name,
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Select rows by integer positions."""
        return Table((col.take(indices) for col in self), name=self.name)

    def filter_mask(self, keep: np.ndarray) -> "Table":
        keep = np.asarray(keep, dtype=bool)
        if keep.shape[0] != self.n_rows:
            raise ValueError("mask length must equal row count")
        return Table((col.mask_rows(keep) for col in self), name=self.name)

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        keep = np.fromiter(
            (bool(predicate(row)) for row in self.to_rows()),
            dtype=bool,
            count=self.n_rows,
        )
        return self.filter_mask(keep)

    def head(self, n: int = 5) -> "Table":
        return self.take(np.arange(min(n, self.n_rows)))

    def sample_rows(self, n: int, seed: int = 0) -> "Table":
        """Uniform random sample without replacement (at most all rows)."""
        rng = np.random.default_rng(seed)
        n = min(n, self.n_rows)
        idx = rng.choice(self.n_rows, size=n, replace=False)
        return self.take(np.sort(idx))

    def copy(self) -> "Table":
        return Table((col.copy() for col in self), name=self.name)

    # -- combination --------------------------------------------------------------

    def concat_rows(self, other: "Table") -> "Table":
        """Stack two tables with identical column names vertically."""
        if self.column_names != other.column_names:
            raise ValueError(
                "row concat requires identical columns: "
                f"{self.column_names} vs {other.column_names}"
            )
        merged = []
        for name in self.column_names:
            merged.append(_vstack_columns(self[name], other[name]))
        return Table(merged, name=self.name)

    def concat_columns(self, other: "Table") -> "Table":
        """Stack two tables of equal length horizontally."""
        if self.n_rows != other.n_rows and self.n_cols and other.n_cols:
            raise ValueError("column concat requires equal row counts")
        result = Table(self.columns(), name=self.name)
        for col in other:
            result.add_column(col)
        return result

    def join(
        self,
        other: "Table",
        on: str | tuple[str, str],
        how: str = "inner",
        suffix: str = "_r",
    ) -> "Table":
        """Hash join on a single key column.

        Parameters
        ----------
        on:
            Key column name, or ``(left_key, right_key)`` pair.
        how:
            ``"inner"`` or ``"left"``.  Left joins emit one row per left row,
            matching the *first* right-side hit (lookup-table semantics, which
            is what the paper's multi-table star/snowflake schemas need).
        suffix:
            Appended to right-side column names that collide.
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        left_key, right_key = (on, on) if isinstance(on, str) else on
        left_rows, right_rows = _join_row_pairs(
            self[left_key], other[right_key], how
        )

        result = self.take(left_rows)
        taken_names = set(result.column_names)
        for name in other.column_names:
            if name == right_key:
                continue
            out_name = name if name not in taken_names else name + suffix
            result.add_column(_gather_with_missing(
                other[name], right_rows, out_name
            ))
            taken_names.add(out_name)
        return result

    # -- numeric views ---------------------------------------------------------------

    def to_numeric_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack numeric columns into an ``(n_rows, k)`` float matrix."""
        if names is None:
            names = [c.name for c in self if c.kind is ColumnKind.NUMERIC]
        arrays = []
        for name in names:
            col = self[name]
            if col.kind is not ColumnKind.NUMERIC:
                raise TypeError(f"column {name!r} is not numeric")
            arrays.append(col.numeric_values())
        if not arrays:
            return np.empty((self.n_rows, 0), dtype=np.float64)
        return np.column_stack(arrays)

    def numeric_column_names(self) -> list[str]:
        return [c.name for c in self if c.kind is ColumnKind.NUMERIC]

    def string_column_names(self) -> list[str]:
        return [c.name for c in self if c.kind is ColumnKind.STRING]

    def missing_cells(self) -> int:
        return int(sum(col.n_missing for col in self))


# -- vectorized kernels ------------------------------------------------------


def _per_row_join(left_col: Column, right_col: Column, how: str):
    """Seed-exact per-row join fallback for pathological key columns
    (hash-colliding or unhashable pools)."""
    right_index: dict[Any, list[int]] = {}
    for j, key in enumerate(right_col):  # repro: allow-per-row
        if key is None:
            continue
        right_index.setdefault(key, []).append(j)
    left_rows: list[int] = []
    right_rows: list[int] = []
    for i, key in enumerate(left_col):  # repro: allow-per-row
        matches = right_index.get(key, []) if key is not None else []
        if matches:
            if how == "left":
                matches = matches[:1]
            for j in matches:
                left_rows.append(i)
                right_rows.append(j)
        elif how == "left":
            left_rows.append(i)
            right_rows.append(-1)
    return (
        np.asarray(left_rows, dtype=np.intp),
        np.asarray(right_rows, dtype=np.int64),
    )


def _right_key_groups(col: Column):
    """Group right-side rows by key value for the factorized hash join.

    Returns ``(key_to_gid, rows_sorted, offsets, sizes)`` where group
    ``g`` owns ``rows_sorted[offsets[g]:offsets[g] + sizes[g]]`` in
    ascending row order, or ``None`` when the pool cannot back a hash
    table faithfully (hash-equal distinct entries).
    """
    if col.kind is ColumnKind.NUMERIC:
        present = np.flatnonzero(~col.missing)
        values = col.numeric_values()[present]
        uniq, inverse = np.unique(values, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        rows_sorted = present[order]
        sizes = np.bincount(inverse, minlength=uniq.shape[0]).astype(np.int64)
        key_to_gid = {value: gid for gid, value in enumerate(uniq.tolist())}
    else:
        codes = col.codes
        present = np.flatnonzero(codes >= 0)
        used, inverse = np.unique(codes[present], return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        rows_sorted = present[order]
        sizes = np.bincount(inverse, minlength=used.shape[0]).astype(np.int64)
        pool = col.pool
        key_to_gid = {pool[code]: gid for gid, code in enumerate(used.tolist())}
        if len(key_to_gid) < used.shape[0]:
            return None  # hash-equal pool entries would split one seed group
    offsets = np.zeros(sizes.shape[0], dtype=np.int64)
    if sizes.shape[0]:
        np.cumsum(sizes[:-1], out=offsets[1:])
    return key_to_gid, rows_sorted, offsets, sizes


def _left_group_ids(col: Column, key_to_gid: dict) -> np.ndarray:
    """Per-left-row group id (-1 = missing key or no match)."""
    n = len(col)
    if col.kind is ColumnKind.NUMERIC:
        present = ~col.missing
        uniq, inverse = np.unique(col.numeric_values()[present], return_inverse=True)
        lut = np.fromiter(
            (key_to_gid.get(value, -1) for value in uniq.tolist()),
            dtype=np.int64,
            count=uniq.shape[0],
        )
        gids = np.full(n, -1, dtype=np.int64)
        if uniq.shape[0]:
            gids[present] = lut[inverse]
        return gids
    pool = col.pool
    lut = np.full(pool.shape[0] + 1, -1, dtype=np.int64)
    for code, value in enumerate(pool.tolist()):
        lut[code] = key_to_gid.get(value, -1)
    return lut[col.codes]  # code -1 wraps to the trailing -1 slot


def _join_row_pairs(left_col: Column, right_col: Column, how: str):
    """Row-index pairs of a factorized hash join (seed output order)."""
    try:
        groups = _right_key_groups(right_col)
        if groups is None:
            return _per_row_join(left_col, right_col, how)
        key_to_gid, rows_sorted, offsets, sizes = groups
        gids = _left_group_ids(left_col, key_to_gid)
    except TypeError:  # unhashable key values: seed dict semantics apply
        return _per_row_join(left_col, right_col, how)
    n = gids.shape[0]
    if how == "left":
        first_ext = np.append(
            rows_sorted[offsets] if sizes.shape[0] else np.empty(0, np.int64),
            np.int64(-1),
        )
        return np.arange(n, dtype=np.intp), first_ext[gids]
    sizes_ext = np.append(sizes, np.int64(0))
    counts = sizes_ext[gids]
    total = int(counts.sum())
    left_rows = np.repeat(np.arange(n, dtype=np.intp), counts)
    offsets_ext = np.append(offsets, np.int64(0))
    starts = np.repeat(offsets_ext[gids], counts)
    exclusive = np.concatenate(([0], np.cumsum(counts)[:-1])) if n else counts
    within = np.arange(total, dtype=np.int64) - np.repeat(exclusive, counts)
    return left_rows, rows_sorted[starts + within]


def _gather_with_missing(source: Column, rows: np.ndarray, name: str) -> Column:
    """Gather ``source[rows]`` with ``-1`` rows becoming missing cells,
    re-coercing per distinct value exactly like the seed's
    ``Column(values, kind=source.kind)`` rebuild."""
    if source.kind is ColumnKind.NUMERIC:
        data_ext = np.append(source.numeric_values(), np.nan)
        miss_ext = np.append(source.missing, True)
        return Column._from_numeric(name, data_ext[rows], miss_ext[rows])
    codes_ext = np.append(source.codes, np.int32(-1))
    return Column._from_raw_pool(
        name, source.kind, source.pool.tolist(), codes_ext[rows]
    )


def _vstack_columns(a: Column, b: Column) -> Column:
    """Vertical concatenation with dictionary merge (seed re-coercion
    semantics preserved via the per-distinct pool coercion)."""
    kind = a.kind
    if kind is not b.kind:
        return Column(a.name, a.to_list() + b.to_list(), kind=None)
    if kind is ColumnKind.NUMERIC:
        return Column._from_numeric(
            a.name,
            np.concatenate([a.numeric_values(), b.numeric_values()]),
            np.concatenate([a.missing, b.missing]),
        )
    pool_a = a.pool.tolist()
    try:
        index = {value: code for code, value in enumerate(pool_a)}
    except TypeError:
        return Column(a.name, a.to_list() + b.to_list(), kind=kind)
    if len(index) < len(pool_a):
        return Column(a.name, a.to_list() + b.to_list(), kind=kind)
    merged_pool = list(pool_a)
    remap = np.empty(b.pool.shape[0] + 1, dtype=np.int64)
    remap[-1] = -1
    for code, value in enumerate(b.pool.tolist()):
        mapped = index.get(value)
        if mapped is None:
            mapped = len(merged_pool)
            index[value] = mapped
            merged_pool.append(value)
        remap[code] = mapped
    codes = np.concatenate([a.codes.astype(np.int64), remap[b.codes]])
    return Column._from_raw_pool(a.name, kind, merged_pool, codes)
