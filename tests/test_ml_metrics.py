"""Unit tests for repro.ml.metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_score,
    r2_score,
    recall_score,
    roc_auc_score,
    root_mean_squared_error,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0

    def test_half(self):
        assert accuracy_score([1, 1], [1, 0]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])


class TestConfusionAndF1:
    def test_confusion_matrix_counts(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert labels == ["a", "b"]
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_precision_recall_perfect(self):
        assert precision_score(["a", "b"], ["a", "b"]) == 1.0
        assert recall_score(["a", "b"], ["a", "b"]) == 1.0

    def test_f1_zero_when_all_wrong(self):
        assert f1_score(["a", "a"], ["b", "b"]) == 0.0

    def test_f1_macro_averages_classes(self):
        # one class perfectly predicted, one never predicted
        score = f1_score(["a", "a", "b"], ["a", "a", "a"])
        assert 0.0 < score < 1.0


class TestAuc:
    def test_perfect_separation(self):
        auc = roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert auc == 1.0

    def test_inverted_scores(self):
        auc = roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1])
        assert auc == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert abs(roc_auc_score(y, scores) - 0.5) < 0.05

    def test_ties_give_half_credit(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_returns_half(self):
        assert roc_auc_score([1, 1], [0.2, 0.9]) == 0.5

    def test_binary_matrix_input(self):
        proba = np.array([[0.9, 0.1], [0.1, 0.9]])
        assert roc_auc_score([0, 1], proba, labels=[0, 1]) == 1.0

    def test_multiclass_ovr(self):
        y = ["a", "b", "c"]
        proba = np.eye(3)
        assert roc_auc_score(y, proba, labels=["a", "b", "c"]) == 1.0

    def test_multiclass_wrong_width_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(["a", "b", "c"], np.eye(2)[[0, 1, 0]], labels=["a", "b", "c"])

    def test_1d_scores_multiclass_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(["a", "b", "c"], [0.1, 0.2, 0.3])


class TestLogLoss:
    def test_confident_correct_is_small(self):
        assert log_loss([1, 0], [0.99, 0.01]) < 0.05

    def test_confident_wrong_is_large(self):
        assert log_loss([1, 0], [0.01, 0.99]) > 2.0

    def test_matrix_input(self):
        proba = np.array([[0.8, 0.2], [0.3, 0.7]])
        value = log_loss(["a", "b"], proba, labels=["a", "b"])
        expected = -(np.log(0.8) + np.log(0.7)) / 2
        assert value == pytest.approx(expected, rel=1e-6)


class TestRegressionMetrics:
    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        assert r2_score([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([5, 5], [5, 5]) == 1.0
        assert r2_score([5, 5], [4, 6]) == 0.0

    def test_mse_rmse_mae(self):
        y, p = [0, 0], [3, -3]
        assert mean_squared_error(y, p) == 9.0
        assert root_mean_squared_error(y, p) == 3.0
        assert mean_absolute_error(y, p) == 3.0
