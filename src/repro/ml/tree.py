"""CART decision trees (classification via Gini, regression via variance).

Split search is vectorized: per feature, candidate thresholds are evaluated
with prefix sums over the sorted rows, giving O(n log n) per feature per
node.  Trees support feature subsampling so the forest module can reuse
them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_X,
    check_X_y,
)

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class _Node:
    """A tree node; leaves carry a prediction payload, splits carry children."""

    prediction: np.ndarray | float | None = None
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    gain: float = 0.0  # impurity decrease achieved by this split
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_classification(
    X: np.ndarray,
    codes: np.ndarray,
    n_classes: int,
    features: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Return (feature, threshold, gini_gain); feature == -1 when no split."""
    n = codes.shape[0]
    counts_total = np.bincount(codes, minlength=n_classes).astype(np.float64)
    gini_parent = 1.0 - np.sum((counts_total / n) ** 2)
    best = (-1, 0.0, 0.0)
    onehot = np.zeros((n, n_classes), dtype=np.float64)
    onehot[np.arange(n), codes] = 1.0
    for j in features:
        order = np.argsort(X[:, j], kind="mergesort")
        values = X[order, j]
        if values[0] == values[-1]:
            continue
        prefix = np.cumsum(onehot[order], axis=0)
        left_n = np.arange(1, n, dtype=np.float64)
        boundaries = values[:-1] < values[1:]
        left_counts = prefix[:-1]
        right_counts = counts_total - left_counts
        right_n = n - left_n
        with np.errstate(divide="ignore", invalid="ignore"):
            gini_left = 1.0 - np.sum((left_counts / left_n[:, None]) ** 2, axis=1)
            gini_right = 1.0 - np.sum((right_counts / right_n[:, None]) ** 2, axis=1)
        weighted = (left_n * gini_left + right_n * gini_right) / n
        gains = gini_parent - weighted
        valid = (
            boundaries
            & (left_n >= min_samples_leaf)
            & (right_n >= min_samples_leaf)
        )
        if not valid.any():
            continue
        gains = np.where(valid, gains, -np.inf)
        k = int(np.argmax(gains))
        if gains[k] > best[2]:
            threshold = 0.5 * (values[k] + values[k + 1])
            best = (int(j), float(threshold), float(gains[k]))
    return best


def _best_split_regression(
    X: np.ndarray,
    y: np.ndarray,
    features: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    n = y.shape[0]
    total_sum = float(y.sum())
    total_sq = float((y**2).sum())
    var_parent = total_sq / n - (total_sum / n) ** 2
    best = (-1, 0.0, 0.0)
    for j in features:
        order = np.argsort(X[:, j], kind="mergesort")
        values = X[order, j]
        if values[0] == values[-1]:
            continue
        y_sorted = y[order]
        prefix_sum = np.cumsum(y_sorted)[:-1]
        prefix_sq = np.cumsum(y_sorted**2)[:-1]
        left_n = np.arange(1, n, dtype=np.float64)
        right_n = n - left_n
        boundaries = values[:-1] < values[1:]
        var_left = prefix_sq / left_n - (prefix_sum / left_n) ** 2
        right_sum = total_sum - prefix_sum
        right_sq = total_sq - prefix_sq
        var_right = right_sq / right_n - (right_sum / right_n) ** 2
        weighted = (left_n * var_left + right_n * var_right) / n
        gains = var_parent - weighted
        valid = (
            boundaries
            & (left_n >= min_samples_leaf)
            & (right_n >= min_samples_leaf)
        )
        if not valid.any():
            continue
        gains = np.where(valid, gains, -np.inf)
        k = int(np.argmax(gains))
        if gains[k] > best[2]:
            threshold = 0.5 * (values[k] + values[k + 1])
            best = (int(j), float(threshold), float(gains[k]))
    return best


class _BaseTree(BaseEstimator):
    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def _feature_pool(self, n_features: int, rng: np.random.Generator) -> np.ndarray:
        if self.max_features is None:
            return np.arange(n_features)
        if self.max_features == "sqrt":
            k = max(1, int(np.sqrt(n_features)))
        elif self.max_features == "log2":
            k = max(1, int(np.log2(n_features)))
        elif isinstance(self.max_features, float):
            k = max(1, int(self.max_features * n_features))
        else:
            k = max(1, min(int(self.max_features), n_features))
        return rng.choice(n_features, size=k, replace=False)

    def _predict_row(self, node: _Node, row: np.ndarray) -> Any:
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    @property
    def depth_(self) -> int:
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    @property
    def n_leaves_(self) -> int:
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importances, normalized to sum to 1."""
        self._check_fitted("root_")
        self._check_fitted("n_features_")
        importances = np.zeros(self.n_features_, dtype=np.float64)
        total = max(1, self.root_.n_samples)

        def walk(node: _Node) -> None:
            if node.is_leaf:
                return
            importances[node.feature] += node.gain * node.n_samples / total
            walk(node.left)
            walk(node.right)

        walk(self.root_)
        norm = importances.sum()
        return importances / norm if norm > 0 else importances


class DecisionTreeClassifier(_BaseTree, ClassifierMixin):
    """Gini-based CART classifier; leaves store class-probability vectors."""

    def fit(self, X: Any, y: Any, sample_indices: np.ndarray | None = None) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = sorted(set(y.tolist()), key=str)
        index = {label: i for i, label in enumerate(self.classes_)}
        codes = np.asarray([index[v] for v in y], dtype=np.int64)
        if sample_indices is not None:
            X, codes = X[sample_indices], codes[sample_indices]
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self.root_ = self._build(X, codes, depth=0, rng=rng)
        return self

    def _build(self, X: np.ndarray, codes: np.ndarray, depth: int, rng: np.random.Generator) -> _Node:
        n_classes = len(self.classes_)
        counts = np.bincount(codes, minlength=n_classes).astype(np.float64)
        proba = counts / counts.sum()
        node = _Node(prediction=proba, n_samples=codes.shape[0])
        if (
            codes.shape[0] < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        features = self._feature_pool(X.shape[1], rng)
        feature, threshold, gain = _best_split_classification(
            X, codes, n_classes, features, self.min_samples_leaf
        )
        if feature < 0 or gain <= 0.0:
            return node
        mask = X[:, feature] <= threshold
        node.feature, node.threshold, node.gain = feature, threshold, gain
        node.left = self._build(X[mask], codes[mask], depth + 1, rng)
        node.right = self._build(X[~mask], codes[~mask], depth + 1, rng)
        return node

    def predict_proba(self, X: Any) -> np.ndarray:
        self._check_fitted("root_")
        X = check_X(X)
        return np.vstack([self._predict_row(self.root_, row) for row in X])

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        picks = np.argmax(proba, axis=1)
        return np.asarray([self.classes_[p] for p in picks], dtype=object)


class DecisionTreeRegressor(_BaseTree, RegressorMixin):
    """Variance-reduction CART regressor; leaves store means."""

    def fit(self, X: Any, y: Any, sample_indices: np.ndarray | None = None) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        if sample_indices is not None:
            X, y = X[sample_indices], y[sample_indices]
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self.root_ = self._build(X, y, depth=0, rng=rng)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> _Node:
        node = _Node(prediction=float(y.mean()), n_samples=y.shape[0])
        if (
            y.shape[0] < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(y == y[0])
        ):
            return node
        features = self._feature_pool(X.shape[1], rng)
        feature, threshold, gain = _best_split_regression(
            X, y, features, self.min_samples_leaf
        )
        if feature < 0 or gain <= 0.0:
            return node
        mask = X[:, feature] <= threshold
        node.feature, node.threshold, node.gain = feature, threshold, gain
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted("root_")
        X = check_X(X)
        return np.asarray(
            [self._predict_row(self.root_, row) for row in X], dtype=np.float64
        )
