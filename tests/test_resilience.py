"""Tests for the resilience layer: retry policy, deadlines, wall-clock
budgets, circuit breaker, transient-fault injection, the ResilientLLM
transport stack, executor timeouts, and graceful generator degradation."""

import time

import numpy as np
import pytest

from repro.catalog.profiler import profile_table
from repro.generation.executor import execute_pipeline_code
from repro.generation.generator import CatDB, CatDBChain
from repro.llm import build_client
from repro.llm.base import ResilientLLM
from repro.llm.faults import (
    TRANSIENT_FAULT_TYPES,
    ConnectionDropped,
    FlakyLLM,
    TruncatedCompletion,
)
from repro.llm.mock import MockLLM
from repro.ml.model_selection import train_test_split
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.resilience import (
    BreakerOpen,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    ExecutionTimeout,
    ResilienceGiveUp,
    RetryExhausted,
    RetryPolicy,
    TransientError,
    retry_call,
    run_with_timeout,
    signal_timeout_available,
    stable_jitter_point,
)
from repro.resilience.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from repro.table.table import Table


@pytest.fixture()
def metrics():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# RetryPolicy + retry_call
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_jitter_point_is_stable_and_bounded(self):
        a = stable_jitter_point("x", 1, 2)
        assert a == stable_jitter_point("x", 1, 2)
        assert 0.0 <= a < 1.0
        assert a != stable_jitter_point("x", 1, 3)

    def test_delay_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0,
                             jitter=0.5, seed=7)
        for attempt in range(6):
            raw = min(1.0, 0.1 * 2.0 ** attempt)
            d = policy.delay(attempt, "salt")
            assert d == policy.delay(attempt, "salt")
            assert raw * 0.5 <= d <= raw

    def test_zero_jitter_gives_exact_exponential(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                             jitter=0.0)
        assert [policy.delay(k) for k in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_seed_changes_schedule(self):
        a = RetryPolicy(seed=0).delay(1, "s")
        b = RetryPolicy(seed=1).delay(1, "s")
        assert a != b

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(ConnectionDropped("x"))
        assert policy.is_retryable(TimeoutError("x"))
        assert policy.is_retryable(ConnectionError("x"))
        assert not policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(KeyError("x"))


class TestRetryCall:
    def test_first_try_success_sleeps_never(self):
        sleeps = []
        result = retry_call(lambda: 42, RetryPolicy(), sleep=sleeps.append)
        assert result == 42
        assert sleeps == []

    def test_recovers_after_transient(self, metrics):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise TransientError("blip")
            return "ok"

        sleeps = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5)
        assert retry_call(flaky, policy, sleep=sleeps.append) == "ok"
        assert attempts["n"] == 3
        assert sleeps == [policy.delay(0), policy.delay(1)]
        assert metrics.counter_value("retry.attempts") == 2
        assert metrics.counter_value("retry.recoveries") == 1
        assert metrics.counter_value("retry.giveups") == 0

    def test_sleep_schedule_is_deterministic(self):
        def run():
            sleeps = []
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 4:
                    raise TransientError("blip")
                return True

            retry_call(flaky, RetryPolicy(seed=3), sleep=sleeps.append,
                       salt=("model", 9))
            return sleeps

        assert run() == run()

    def test_non_retryable_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(broken, RetryPolicy(max_attempts=5))
        assert calls["n"] == 1

    def test_exhaustion_raises_retry_exhausted(self, metrics):
        def dead():
            raise ConnectionDropped("reset")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetryExhausted) as info:
            retry_call(dead, policy, sleep=lambda _s: None)
        exc = info.value
        assert exc.attempts == 3
        assert isinstance(exc.last_error, ConnectionDropped)
        assert isinstance(exc.__cause__, ConnectionDropped)
        assert isinstance(exc, ResilienceGiveUp)
        assert metrics.counter_value("retry.giveups") == 1
        assert metrics.counter_value("retry.attempts") == 3

    def test_on_transient_observes_each_failure(self):
        seen = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("blip")
            return True

        retry_call(flaky, RetryPolicy(), sleep=lambda _s: None,
                   on_transient=seen.append)
        assert len(seen) == 2

    def test_open_breaker_rejects_without_calling_fn(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=4, min_calls=2, cooldown_seconds=10,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_OPEN
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            return 1

        with pytest.raises(BreakerOpen):
            retry_call(fn, RetryPolicy(), breaker=breaker,
                       sleep=lambda _s: None)
        assert calls["n"] == 0

    def test_breaker_records_outcomes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=10, min_calls=5, clock=clock)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientError("blip")
            return True

        retry_call(flaky, RetryPolicy(), breaker=breaker,
                   sleep=lambda _s: None)
        assert breaker.failure_rate() == 0.5  # one failure, one success


# ---------------------------------------------------------------------------
# Deadline + run_with_timeout
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0)

    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert deadline.remaining() == 5.0
        assert not deadline.expired
        deadline.check()
        clock.advance(5.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("LLM call")

    def test_deadline_exceeded_is_transient(self):
        # late responses are retryable: the next attempt may be fast
        assert issubclass(DeadlineExceeded, TransientError)


class TestRunWithTimeout:
    def test_no_budget_runs_directly(self):
        assert run_with_timeout(lambda: "x", None) == "x"
        assert run_with_timeout(lambda: "x", 0) == "x"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_with_timeout(lambda: 1, 1.0, mode="fork")

    def test_within_budget_returns_result(self):
        assert run_with_timeout(lambda: 7, 5.0, mode="thread") == 7

    def test_fn_exception_propagates(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            run_with_timeout(boom, 5.0, mode="thread")

    def test_thread_mode_kills_busy_loop_within_grace(self):
        def spin():
            while True:
                pass

        start = time.monotonic()
        with pytest.raises(ExecutionTimeout):
            run_with_timeout(spin, 0.3, mode="thread", grace_seconds=1.0)
        # the acceptance bound: budget + 1s grace (+ scheduling slack)
        assert time.monotonic() - start < 0.3 + 1.0 + 0.5

    def test_thread_mode_abandons_c_blocked_worker(self):
        start = time.monotonic()
        with pytest.raises(ExecutionTimeout) as info:
            run_with_timeout(lambda: time.sleep(30), 0.2, mode="thread",
                             grace_seconds=0.3)
        assert time.monotonic() - start < 0.2 + 0.3 + 0.5
        assert "abandoned" in str(info.value)

    @pytest.mark.skipif(not signal_timeout_available(),
                        reason="needs SIGALRM on the main thread")
    def test_signal_mode_interrupts_sleep(self):
        start = time.monotonic()
        with pytest.raises(ExecutionTimeout):
            run_with_timeout(lambda: time.sleep(30), 0.2, mode="signal")
        assert time.monotonic() - start < 1.0

    def test_timeout_is_runtime_error(self):
        # the taxonomy must classify budget exhaustion as an RE-group error
        assert issubclass(ExecutionTimeout, RuntimeError)

    def test_thread_mode_worker_emits_into_caller_session(self):
        # emission parity with signal mode: the worker thread inherits the
        # caller's metrics registry and tracer through the ObsFence
        from repro.obs.trace import Tracer, set_tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        prev_metrics = set_metrics(registry)
        prev_tracer = set_tracer(tracer)
        try:
            def work():
                from repro.obs.metrics import get_metrics
                from repro.obs.trace import get_tracer

                with get_tracer().span("worker.step"):
                    get_metrics().inc("worker.live")
                return "done"

            assert run_with_timeout(work, 5.0, mode="thread") == "done"
        finally:
            set_metrics(prev_metrics)
            set_tracer(prev_tracer)
        assert registry.counter_value("worker.live") == 1
        assert [s.name for s in tracer.spans] == ["worker.step"]

    def test_abandoned_worker_obs_emissions_are_fenced(self):
        # regression: a worker that survives async-exception injection
        # (stuck in a C call, swallowing BaseException) is abandoned after
        # grace -- anything the zombie emits afterwards must NOT land in
        # the session of whatever run is active by then
        import threading

        from repro.obs.trace import Tracer, set_tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        release = threading.Event()
        emitted = threading.Event()

        def zombie():
            from repro.obs.metrics import get_metrics
            from repro.obs.trace import get_tracer

            # simulate "stuck in C": swallow every injected timeout
            while not release.is_set():
                try:
                    time.sleep(0.01)
                except ExecutionTimeout:
                    pass
            # the late emission, after the caller gave up on us
            get_metrics().inc("zombie.late")
            with get_tracer().span("zombie.late"):
                pass
            emitted.set()

        prev_metrics = set_metrics(registry)
        prev_tracer = set_tracer(tracer)
        try:
            with pytest.raises(ExecutionTimeout) as info:
                run_with_timeout(zombie, 0.2, mode="thread",
                                 grace_seconds=0.2)
        finally:
            set_metrics(prev_metrics)
            set_tracer(prev_tracer)
        assert "abandoned" in str(info.value)
        release.set()
        assert emitted.wait(5.0), "zombie never reached its late emission"
        assert registry.counter_value("zombie.late") == 0
        assert all(s.name != "zombie.late" for s in tracer.spans)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        defaults = dict(failure_threshold=0.5, window=4, min_calls=4,
                        cooldown_seconds=10.0, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)

    def test_stays_closed_below_min_calls(self):
        breaker = self._breaker(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.before_call()  # admits

    def test_opens_at_failure_threshold(self):
        breaker = self._breaker(FakeClock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()  # 2/4 = threshold
        assert breaker.state == STATE_OPEN

    def test_open_rejects_with_retry_after(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(BreakerOpen) as info:
            breaker.before_call()
        assert info.value.retry_after_seconds == pytest.approx(6.0)

    def test_half_open_probe_quota(self):
        clock = FakeClock()
        breaker = self._breaker(clock, half_open_max_calls=1)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()  # first probe admitted
        assert breaker.state == STATE_HALF_OPEN
        with pytest.raises(BreakerOpen):
            breaker.before_call()  # probe quota exhausted

    def test_probe_success_closes_and_clears_window(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.failure_rate() == 0.0

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        with pytest.raises(BreakerOpen):
            breaker.before_call()  # new cooldown started

    def test_reset(self):
        breaker = self._breaker(FakeClock())
        for _ in range(4):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == STATE_CLOSED
        assert breaker.failure_rate() == 0.0

    def test_transitions_emit_metrics(self, metrics):
        clock = FakeClock()
        breaker = self._breaker(clock, name="t")
        for _ in range(4):
            breaker.record_failure()
        with pytest.raises(BreakerOpen):
            breaker.before_call()
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_success()
        assert metrics.counter_value(
            "breaker.transitions",
            **{"from": "closed", "to": "open", "breaker": "t"}) == 1
        assert metrics.counter_value(
            "breaker.transitions",
            **{"from": "open", "to": "half_open", "breaker": "t"}) == 1
        assert metrics.counter_value(
            "breaker.transitions",
            **{"from": "half_open", "to": "closed", "breaker": "t"}) == 1
        assert metrics.counter_value("breaker.rejections", breaker="t") == 1


# ---------------------------------------------------------------------------
# FlakyLLM
# ---------------------------------------------------------------------------


def _complete_or_fault(client, prompt):
    try:
        return client.complete(prompt).content
    except TransientError as exc:
        return type(exc).__name__


class TestFlakyLLM:
    def test_validation(self):
        inner = MockLLM("gpt-4o", fault_injection=False)
        with pytest.raises(ValueError):
            FlakyLLM(inner, fault_rate=1.5)
        with pytest.raises(ValueError):
            FlakyLLM(inner, fault_types=("dns_hijack",))

    def test_zero_rate_is_passthrough(self):
        bare = MockLLM("gpt-4o", seed=0, fault_injection=False)
        flaky = FlakyLLM(MockLLM("gpt-4o", seed=0, fault_injection=False),
                         fault_rate=0.0)
        prompt = "hello"
        assert flaky.complete(prompt).content == bare.complete(prompt).content
        assert flaky.faults_injected == 0

    def test_schedule_is_deterministic(self):
        def run():
            client = FlakyLLM(MockLLM("gpt-4o", fault_injection=False),
                              fault_rate=0.5, seed=11,
                              sleep=lambda _s: None)
            return [_complete_or_fault(client, f"p{i}") for i in range(30)]

        assert run() == run()

    def test_seed_changes_schedule(self):
        def run(seed):
            client = FlakyLLM(MockLLM("gpt-4o", fault_injection=False),
                              fault_rate=0.5, seed=seed,
                              sleep=lambda _s: None)
            return [_complete_or_fault(client, f"p{i}") for i in range(30)]

        assert run(0) != run(1)

    def test_fault_rate_observed(self):
        client = FlakyLLM(MockLLM("gpt-4o", fault_injection=False),
                          fault_rate=0.3, seed=0, sleep=lambda _s: None)
        for i in range(300):
            _complete_or_fault(client, f"p{i}")
        assert 0.2 < client.faults_injected / client.calls < 0.4

    def test_all_fault_types_reachable(self):
        client = FlakyLLM(MockLLM("gpt-4o", fault_injection=False),
                          fault_rate=1.0, seed=0, sleep=lambda _s: None)
        seen = set()
        for i in range(60):
            with pytest.raises(TransientError) as info:
                client.complete(f"p{i}")
            seen.add(type(info.value).__name__)
        assert seen == {"RateLimited", "ConnectionDropped",
                        "TruncatedCompletion", "SlowResponse"}
        assert len(TRANSIENT_FAULT_TYPES) == 4

    def test_truncated_spends_inner_tokens_and_carries_partial(self):
        inner = MockLLM("gpt-4o", fault_injection=False)
        client = FlakyLLM(inner, fault_rate=1.0, seed=0,
                          fault_types=("truncated_completion",),
                          sleep=lambda _s: None)
        before = inner.usage.n_requests
        with pytest.raises(TruncatedCompletion) as info:
            client.complete("generate a pipeline")
        assert inner.usage.n_requests == before + 1
        assert info.value.partial  # half the real completion

    def test_usage_delegates_to_inner(self):
        inner = MockLLM("gpt-4o", fault_injection=False)
        client = FlakyLLM(inner, fault_rate=0.0)
        client.complete("x")
        assert client.usage is inner.usage
        assert client.usage.n_requests == 1


# ---------------------------------------------------------------------------
# ResilientLLM
# ---------------------------------------------------------------------------


class _DeadClient:
    """Transport that always raises; counts attempts."""

    model = "dead"

    def __init__(self, exc_factory=lambda: ConnectionDropped("reset")):
        from repro.llm.base import LLMUsage

        self.usage = LLMUsage()
        self.attempts = 0
        self._exc_factory = exc_factory

    def complete(self, messages):
        self.attempts += 1
        raise self._exc_factory()


class TestResilientLLM:
    def _policy(self, **kwargs):
        defaults = dict(max_attempts=4, base_delay=0.0, jitter=0.0)
        defaults.update(kwargs)
        return RetryPolicy(**defaults)

    def test_recovery_matches_bare_client(self):
        prompt = "describe the schema"
        bare = MockLLM("gpt-4o", seed=0, fault_injection=False).complete(prompt)
        flaky = FlakyLLM(MockLLM("gpt-4o", seed=0, fault_injection=False),
                         fault_rate=0.5, seed=5, sleep=lambda _s: None)
        resilient = ResilientLLM(flaky, policy=self._policy(max_attempts=8),
                                 sleep=lambda _s: None)
        for _ in range(10):
            assert resilient.complete(prompt).content == bare.content
        assert flaky.faults_injected > 0  # retries actually happened

    def test_exhaustion_raises_retry_exhausted(self, metrics):
        dead = _DeadClient()
        resilient = ResilientLLM(dead, policy=self._policy(max_attempts=3),
                                 sleep=lambda _s: None)
        with pytest.raises(RetryExhausted):
            resilient.complete("x")
        assert dead.attempts == 3
        assert metrics.counter_value(
            "llm.transient_errors", type="ConnectionDropped") == 3

    def test_usage_delegates_to_inner(self):
        inner = MockLLM("gpt-4o", fault_injection=False)
        resilient = ResilientLLM(inner, policy=self._policy())
        resilient.complete("x")
        assert resilient.usage is inner.usage
        assert resilient.usage.n_requests == 1

    def test_breaker_opens_after_repeated_giveups(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=0.5, window=4, min_calls=4,
                                 cooldown_seconds=60.0, clock=clock)
        dead = _DeadClient()
        resilient = ResilientLLM(dead, policy=self._policy(max_attempts=4),
                                 breaker=breaker, sleep=lambda _s: None)
        with pytest.raises(RetryExhausted):
            resilient.complete("x")
        assert breaker.state == STATE_OPEN
        before = dead.attempts
        with pytest.raises(BreakerOpen):
            resilient.complete("y")
        assert dead.attempts == before  # rejected before reaching transport

    @pytest.mark.skipif(not signal_timeout_available(),
                        reason="needs SIGALRM on the main thread")
    def test_deadline_interrupts_slow_call(self):
        class Slow:
            model = "slow"

            def __init__(self):
                from repro.llm.base import LLMUsage

                self.usage = LLMUsage()

            def complete(self, messages):
                time.sleep(30)

        resilient = ResilientLLM(Slow(), policy=self._policy(max_attempts=1),
                                 timeout_seconds=0.2, sleep=lambda _s: None)
        start = time.monotonic()
        with pytest.raises(RetryExhausted) as info:
            resilient.complete("x")
        assert time.monotonic() - start < 2.0
        assert isinstance(info.value.last_error, DeadlineExceeded)


class TestBuildClient:
    def test_defaults_return_bare_mock(self):
        client = build_client("gpt-4o", seed=3)
        assert type(client) is MockLLM

    def test_fault_rate_assembles_full_stack(self):
        client = build_client("gpt-4o", fault_rate=0.3)
        assert isinstance(client, ResilientLLM)
        assert isinstance(client.inner, FlakyLLM)
        assert isinstance(client.inner.inner, MockLLM)

    def test_max_retries_wraps_without_faults(self):
        client = build_client("gpt-4o", max_retries=5)
        assert isinstance(client, ResilientLLM)
        assert isinstance(client.inner, MockLLM)
        assert client.policy.max_attempts == 6


# ---------------------------------------------------------------------------
# executor wall-clock budget (satellite: infinite pipeline must not hang)
# ---------------------------------------------------------------------------


def _toy_tables():
    rng = np.random.default_rng(0)
    t = Table.from_dict({"a": rng.normal(size=30).tolist(),
                         "y": (["u", "v"] * 15)}, name="toy")
    return t, t


class TestExecutorTimeout:
    def test_infinite_loop_is_killed_and_classified(self):
        code = ("def run_pipeline(train, test):\n"
                "    while True:\n"
                "        pass\n")
        train, test = _toy_tables()
        start = time.monotonic()
        result = execute_pipeline_code(code, train, test, timeout_seconds=0.5)
        elapsed = time.monotonic() - start
        assert elapsed < 0.5 + 1.0  # acceptance bound: budget + 1s
        assert not result.success
        assert result.error is not None
        assert result.error.error_type.name == "no_convergence"
        assert result.error.group.value == "RE"
        assert result.error.details.get("timed_out") is True
        assert result.error.details.get("timeout_seconds") == 0.5

    def test_thread_mode_also_terminates(self):
        code = ("def run_pipeline(train, test):\n"
                "    n = 0\n"
                "    while True:\n"
                "        n += 1\n")
        train, test = _toy_tables()
        start = time.monotonic()
        result = execute_pipeline_code(code, train, test, timeout_seconds=0.4,
                                       timeout_mode="thread")
        assert time.monotonic() - start < 0.4 + 1.0 + 0.5
        assert not result.success
        assert result.error.details.get("timed_out") is True

    def test_fast_pipeline_unaffected_by_budget(self):
        code = ("def run_pipeline(train, test):\n"
                "    return {'train_accuracy': 1.0, 'test_accuracy': 1.0}\n")
        train, test = _toy_tables()
        result = execute_pipeline_code(code, train, test, timeout_seconds=5.0)
        assert result.success

    def test_timeout_counter_emitted(self, metrics):
        code = ("def run_pipeline(train, test):\n"
                "    while True:\n"
                "        pass\n")
        train, test = _toy_tables()
        execute_pipeline_code(code, train, test, timeout_seconds=0.3)
        assert metrics.counter_value("execute.timeouts") == 1


# ---------------------------------------------------------------------------
# generator degradation + repair budget audit
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(2)
    n = 240
    data = {f"v{i}": rng.normal(size=n) for i in range(6)}
    data["y"] = np.where(data["v0"] + data["v1"] > 0, "a", "b").tolist()
    t = Table.from_dict(data, name="resil")
    labels = [str(v) for v in t["y"]]
    train, test = train_test_split(t, test_size=0.3, random_state=0,
                                   stratify=labels)
    return train, test, profile_table(t, target="y", task_type="binary")


def _dead_transport():
    """A transport that fails every attempt and exhausts quickly."""
    flaky = FlakyLLM(MockLLM("gpt-4o", seed=0, fault_injection=False),
                     fault_rate=1.0, seed=0, sleep=lambda _s: None)
    policy = RetryPolicy(max_attempts=2, base_delay=0.0)
    return ResilientLLM(flaky, policy=policy, sleep=lambda _s: None)


class TestGeneratorDegradation:
    def test_catdb_degrades_gracefully(self, dataset):
        train, test, catalog = dataset
        report = CatDB(_dead_transport()).generate(train, test, catalog)
        assert report.degraded
        assert "RetryExhausted" in report.degraded_reason
        assert report.success  # handcraft fallback still executes
        assert report.fallback_used

    def test_chain_degrades_gracefully(self, dataset):
        train, test, catalog = dataset
        report = CatDBChain(_dead_transport(), beta=2).generate(
            train, test, catalog
        )
        assert report.degraded
        assert report.success
        assert report.fallback_used

    def test_degradation_emits_metric(self, metrics, dataset):
        train, test, catalog = dataset
        CatDB(_dead_transport()).generate(train, test, catalog)
        assert metrics.counter_value(
            "generate.degraded", reason="RetryExhausted") == 1

    def test_breaker_giveup_also_degrades(self, dataset):
        train, test, catalog = dataset
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=0.5, window=2, min_calls=2,
                                 cooldown_seconds=3600.0, clock=clock)
        flaky = FlakyLLM(MockLLM("gpt-4o", seed=0, fault_injection=False),
                         fault_rate=1.0, seed=0, sleep=lambda _s: None)
        llm = ResilientLLM(flaky, policy=RetryPolicy(max_attempts=3,
                                                     base_delay=0.0),
                           breaker=breaker, sleep=lambda _s: None)
        report = CatDB(llm).generate(train, test, catalog)
        assert report.degraded
        assert report.success


class TestRepairBudgetAudit:
    """A repair budget of beta must never buy more than beta repair calls,
    transport retries excluded."""

    @pytest.mark.parametrize("beta", [0, 1, 3])
    def test_error_prompts_bounded_by_budget(self, dataset, beta):
        train, test, catalog = dataset
        for seed in range(6):
            llm = MockLLM("llama3.1-70b", seed=seed,
                          error_rate_multiplier=10.0)
            report = CatDB(llm, max_fix_attempts=beta).generate(
                train, test, catalog, iteration=seed
            )
            assert report.cost.n_error_prompts <= beta
            assert report.cost.gamma <= 1 + beta
            assert report.fix_attempts <= beta

    def test_transport_retries_do_not_consume_budget(self, dataset):
        train, test, catalog = dataset
        beta = 2
        for seed in range(8):
            inner = MockLLM("llama3.1-70b", seed=seed,
                            error_rate_multiplier=10.0)
            flaky = FlakyLLM(inner, fault_rate=0.4, seed=seed,
                             sleep=lambda _s: None)
            llm = ResilientLLM(
                flaky, policy=RetryPolicy(max_attempts=6, base_delay=0.0),
                sleep=lambda _s: None,
            )
            report = CatDB(llm, max_fix_attempts=beta).generate(
                train, test, catalog, iteration=seed
            )
            assert report.cost.gamma <= 1 + beta
            if flaky.faults_injected:
                # the transport saw more attempts than the budget admits
                assert inner.usage.n_requests >= report.cost.gamma
            if not report.degraded:
                assert report.success


# ---------------------------------------------------------------------------
# mini soak: the CI job's contract in miniature
# ---------------------------------------------------------------------------


class TestMiniSoak:
    def test_faulted_runs_complete_and_match_baseline(self, dataset):
        train, test, catalog = dataset
        for seed in range(8):
            baseline = CatDB(build_client("gpt-4o", seed=seed)).generate(
                train, test, catalog, iteration=seed
            )
            llm = build_client("gpt-4o", seed=seed, fault_rate=0.3,
                               retry_base_delay=0.0, slow_seconds=0.0)
            report = CatDB(llm).generate(train, test, catalog, iteration=seed)
            assert report.success or report.degraded
            if not report.degraded:
                assert report.code == baseline.code
                assert report.metrics == baseline.metrics
