"""Tests for the process-isolated pipeline execution pool.

Covers the three contracts ``docs/execution_pool.md`` documents:

- **parity** — a clean pipeline returns bit-identical results in
  ``inproc`` and ``pool`` modes;
- **containment** — every adversarial pipeline (hang, 2 GB allocation,
  ``sys.exit``/``os._exit``, ctypes segfault, stdout flood) is reaped
  and classified onto the existing RE taxonomy, never crashing the
  orchestrator;
- **lifecycle** — workers are reused across jobs, recycled after
  ``max_jobs_per_worker``, replaced after a kill, and safe to borrow
  from concurrent threads.
"""

from __future__ import annotations

import threading

import pytest

from repro.execpool import PoolConfig, resolve_exec_mode, resolve_memory_mb
from repro.execpool.adversarial import (
    ADVERSARIAL_PIPELINES,
    CLEAN_PIPELINE,
    adversarial_tables,
    pick_variant,
    run_adversarial_soak,
)
from repro.execpool.config import MEMORY_ENV, MODE_ENV
from repro.execpool.pool import ExecPool, shutdown_pool
from repro.execpool.protocol import classify_worker_death
from repro.generation.errors import ERROR_TYPES
from repro.generation.executor import execute_pipeline_code
from repro.obs.metrics import MetricsRegistry, set_metrics

TIMEOUT = 5.0
MEMORY_MB = 512


@pytest.fixture(scope="module")
def pool():
    p = ExecPool(PoolConfig(size=2, kill_grace_seconds=0.5))
    yield p
    p.shutdown()


@pytest.fixture(scope="module")
def tables():
    return adversarial_tables(seed=0)


@pytest.fixture(autouse=True, scope="module")
def _shared_pool_teardown():
    yield
    shutdown_pool()  # tests that exercise execute_pipeline_code(mode="pool")


# ---------------------------------------------------------------------------
# Mode / config resolution
# ---------------------------------------------------------------------------


class TestModeResolution:
    def test_default_is_inproc(self, monkeypatch):
        monkeypatch.delenv(MODE_ENV, raising=False)
        assert resolve_exec_mode(None) == "inproc"

    def test_env_selects_pool(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "pool")
        assert resolve_exec_mode(None) == "pool"

    def test_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "pool")
        assert resolve_exec_mode("inproc") == "inproc"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_exec_mode("fork")

    def test_unknown_env_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "container")
        with pytest.raises(ValueError):
            resolve_exec_mode(None)

    def test_memory_resolution(self, monkeypatch):
        monkeypatch.delenv(MEMORY_ENV, raising=False)
        assert resolve_memory_mb(None) is None
        assert resolve_memory_mb(256) == 256
        assert resolve_memory_mb(0) is None  # 0 = unlimited
        monkeypatch.setenv(MEMORY_ENV, "512")
        assert resolve_memory_mb(None) == 512
        assert resolve_memory_mb(128) == 128  # arg beats env
        monkeypatch.setenv(MEMORY_ENV, "not-a-number")
        assert resolve_memory_mb(None) is None


# ---------------------------------------------------------------------------
# Death classification (unit-level: no subprocesses involved)
# ---------------------------------------------------------------------------


class TestClassifyWorkerDeath:
    def test_taxonomy_unchanged(self):
        # crash classification reuses existing types; no new ones
        assert len(ERROR_TYPES) == 23

    def test_parent_kill_is_timeout(self):
        error = classify_worker_death(
            None, killed_on_timeout=True, timeout_seconds=2.0
        )
        assert error.error_type.name == "no_convergence"
        assert error.details["timed_out"] is True
        assert error.details["worker_killed"] is True
        assert error.details["timeout_seconds"] == 2.0

    def test_sigkill_suggests_oom(self):
        error = classify_worker_death(-9, killed_on_timeout=False)
        assert error.error_type.name == "resource_limit"
        assert error.details["oom_suspected"] is True
        assert error.details["signal"] == "SIGKILL"

    def test_sigsegv_is_crash(self):
        error = classify_worker_death(-11, killed_on_timeout=False)
        assert error.error_type.name == "no_convergence"
        assert error.details["crashed"] is True
        assert error.details["signal"] == "SIGSEGV"

    def test_plain_exit_is_crash_with_code(self):
        error = classify_worker_death(7, killed_on_timeout=False)
        assert error.error_type.name == "no_convergence"
        assert error.details["crashed"] is True
        assert error.details["worker_exit"] == 7


# ---------------------------------------------------------------------------
# Result parity
# ---------------------------------------------------------------------------


class TestParity:
    def test_clean_pipeline_bit_identical(self, pool, tables):
        train, test = tables
        pooled = pool.execute(
            CLEAN_PIPELINE, train, test, timeout_seconds=TIMEOUT
        )
        inproc = execute_pipeline_code(
            CLEAN_PIPELINE, train, test,
            timeout_seconds=TIMEOUT, mode="inproc",
        )
        assert pooled.success and inproc.success
        assert pooled.metrics == inproc.metrics  # exact, not approximate
        assert pooled.primary_metric == inproc.primary_metric

    def test_error_classification_parity(self, pool, tables):
        # a plain in-pipeline exception classifies identically via the pool
        train, test = tables
        code = "def run_pipeline(train, test):\n    return {}[0]\n"
        pooled = pool.execute(code, train, test, timeout_seconds=TIMEOUT)
        inproc = execute_pipeline_code(
            code, train, test, timeout_seconds=TIMEOUT, mode="inproc"
        )
        assert not pooled.success and not inproc.success
        assert pooled.error.error_type.name == inproc.error.error_type.name
        assert pooled.error.line == inproc.error.line


# ---------------------------------------------------------------------------
# Adversarial containment
# ---------------------------------------------------------------------------


class TestContainment:
    @pytest.mark.parametrize("variant", sorted(ADVERSARIAL_PIPELINES))
    def test_hostile_pipeline_contained(self, pool, tables, variant):
        train, test = tables
        code, expected_types = ADVERSARIAL_PIPELINES[variant]
        timeout = 2.0 if "hang" in variant else TIMEOUT
        result = pool.execute(
            code, train, test, timeout_seconds=timeout, memory_mb=MEMORY_MB
        )
        assert not result.success
        assert result.error is not None
        assert result.error.error_type.name in expected_types
        # the pool must stay serviceable right after any containment
        follow_up = pool.execute(
            CLEAN_PIPELINE, train, test, timeout_seconds=TIMEOUT
        )
        assert follow_up.success

    def test_hang_reports_timeout_details(self, pool, tables):
        train, test = tables
        code, _ = ADVERSARIAL_PIPELINES["hang"]
        result = pool.execute(code, train, test, timeout_seconds=1.0)
        assert result.error.details.get("timed_out") is True

    def test_os_exit_code_recovered(self, pool, tables):
        train, test = tables
        code, _ = ADVERSARIAL_PIPELINES["os_exit"]
        result = pool.execute(code, train, test, timeout_seconds=TIMEOUT)
        assert result.error.details.get("worker_exit") == 7

    def test_segfault_signal_recovered(self, pool, tables):
        train, test = tables
        code, _ = ADVERSARIAL_PIPELINES["segfault"]
        result = pool.execute(code, train, test, timeout_seconds=TIMEOUT)
        details = result.error.details
        assert details.get("signal") == "SIGSEGV" or details.get("crashed")


# ---------------------------------------------------------------------------
# Worker lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_worker_reused_across_jobs(self, tables):
        train, test = tables
        with ExecPool(PoolConfig(size=1)) as pool:
            for _ in range(3):
                assert pool.execute(
                    CLEAN_PIPELINE, train, test, timeout_seconds=TIMEOUT
                ).success
            assert pool.stats["spawns"] == 1
            assert pool.stats["jobs"] == 3

    def test_worker_recycled_after_max_jobs(self, tables):
        train, test = tables
        with ExecPool(PoolConfig(size=1, max_jobs_per_worker=2)) as pool:
            for _ in range(3):
                assert pool.execute(
                    CLEAN_PIPELINE, train, test, timeout_seconds=TIMEOUT
                ).success
            assert pool.stats["recycles"] == 1
            assert pool.stats["spawns"] == 2

    def test_killed_worker_replaced(self, tables):
        train, test = tables
        code, _ = ADVERSARIAL_PIPELINES["os_exit"]
        with ExecPool(PoolConfig(size=1)) as pool:
            assert not pool.execute(
                code, train, test, timeout_seconds=TIMEOUT
            ).success
            assert pool.execute(
                CLEAN_PIPELINE, train, test, timeout_seconds=TIMEOUT
            ).success
            assert pool.stats["kills"] == 1
            assert pool.stats["spawns"] == 2

    def test_concurrent_borrowers(self, pool, tables):
        train, test = tables
        results: list = [None] * 4

        def work(i: int) -> None:
            results[i] = pool.execute(
                CLEAN_PIPELINE, train, test, timeout_seconds=TIMEOUT
            )

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert all(r is not None and r.success for r in results)
        assert len({tuple(sorted(r.metrics.items())) for r in results}) == 1


# ---------------------------------------------------------------------------
# Executor wiring + observability
# ---------------------------------------------------------------------------


class TestWiring:
    def test_execute_pipeline_code_pool_mode(self, tables):
        train, test = tables
        result = execute_pipeline_code(
            CLEAN_PIPELINE, train, test,
            timeout_seconds=TIMEOUT, mode="pool",
        )
        inproc = execute_pipeline_code(
            CLEAN_PIPELINE, train, test,
            timeout_seconds=TIMEOUT, mode="inproc",
        )
        assert result.success
        assert result.metrics == inproc.metrics

    def test_env_mode_routes_to_pool(self, monkeypatch, tables):
        train, test = tables
        monkeypatch.setenv(MODE_ENV, "pool")
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            result = execute_pipeline_code(
                CLEAN_PIPELINE, train, test, timeout_seconds=TIMEOUT
            )
        finally:
            set_metrics(previous)
        assert result.success
        # the execpool metric proves the pool backend actually ran
        assert registry.counter_value("execpool.jobs", status="ok") == 1

    def test_pool_metrics_on_kill(self, tables):
        train, test = tables
        code, _ = ADVERSARIAL_PIPELINES["os_exit"]
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            with ExecPool(PoolConfig(size=1)) as pool:
                pool.execute(code, train, test, timeout_seconds=TIMEOUT)
        finally:
            set_metrics(previous)
        assert registry.counter_value("execpool.spawns") == 1
        assert registry.counter_value("execpool.kills", reason="crashed") == 1
        assert registry.counter_value("execpool.jobs", status="crashed") == 1

    def test_generator_accepts_exec_mode(self):
        from repro.generation.generator import CatDB
        from repro.llm.mock import MockLLM

        generator = CatDB(MockLLM(), exec_mode="pool", exec_memory_mb=256)
        assert generator.exec_mode == "pool"
        assert generator.exec_memory_mb == 256


# ---------------------------------------------------------------------------
# Adversarial soak (the CI gate, shrunk)
# ---------------------------------------------------------------------------


class TestAdversarialSoak:
    def test_variant_schedule_deterministic(self):
        first = [pick_variant(seed) for seed in range(50)]
        again = [pick_variant(seed) for seed in range(50)]
        assert first == again
        # the 50-seed schedule exercises every variant plus clean runs
        assert set(first) == set(ADVERSARIAL_PIPELINES) | {"clean"}

    def test_small_soak_passes(self, capsys):
        status = run_adversarial_soak(
            seeds=6, timeout_seconds=2.0, memory_mb=MEMORY_MB,
            exec_mode="pool", verbose=False,
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "0 failures" in out
