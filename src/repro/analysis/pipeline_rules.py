"""ML-pipeline rules: what generated code must not do.

These rules run over every candidate pipeline before execution
(profile ``"pipeline"``).  Error-severity findings carry a taxonomy
``error_type`` so the repair loop treats them exactly like an observed
failure — crucially *without* paying ``execute_pipeline_code``:

- ``entry-point``      — the ``run_pipeline(train, test)`` contract
- ``missing-import``   — known library symbols used but never bound
  (resolved through the scope chain, not a flat name walk)
- ``banned-api``       — ``eval``/``exec``, filesystem, environment,
  process, and network access in generated code
- ``data-leakage``     — transformers/estimators fitted on test data or
  on train+test mixtures; the target column listed as a feature
- ``nondeterminism``   — unseeded global RNGs, ``random_state=None``
- ``signature``        — calls into the known ``repro.ml`` surface that
  cannot bind (wrong keyword, impossible arity, missing method)
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.dataflow import Taint, is_testish, is_trainish
from repro.analysis.rules import AnalysisContext, Finding, Severity
from repro.analysis.signatures import (
    check_call,
    check_method_call,
    signature_table,
)

__all__ = [
    "KNOWN_LIBRARY_SYMBOLS",
    "EntryPointRule",
    "MissingImportRule",
    "BannedApiRule",
    "DataLeakageRule",
    "UseBeforeDefRule",
    "BranchUseBeforeDefRule",
    "NondeterminismRule",
    "SignatureRule",
    "PIPELINE_RULES",
    "VALIDATE_RULES",
]

#: symbols whose undefined use is statically attributable to a lost import
#: (an arbitrary undefined identifier stays a runtime NameError — the
#: paper's SE-vs-RE split)
KNOWN_LIBRARY_SYMBOLS = frozenset({
    "np", "numpy", "scipy", "networkx",
    "TableVectorizer", "ColumnSelector", "Pipeline",
    "RandomForestClassifier", "RandomForestRegressor",
    "GradientBoostingClassifier", "GradientBoostingRegressor",
    "DecisionTreeClassifier", "DecisionTreeRegressor",
    "LogisticRegression", "LinearRegression", "Ridge",
    "GaussianNB", "KNeighborsClassifier", "KNeighborsRegressor", "TabPFNProxy",
    "LinearSVC", "KMeans",
    "GridSearchCV", "RandomizedSearchCV", "train_test_split", "cross_val_score",
    "accuracy_score", "roc_auc_score", "r2_score", "f1_score", "log_loss",
    "SimpleImputer", "StandardScaler", "MinMaxScaler", "RobustScaler",
    "OneHotEncoder", "OrdinalEncoder", "LabelEncoder", "KHotEncoder",
    "FeatureHasher", "QuantileClipper",
    "oversample_minority", "gaussian_augment", "drop_missing_rows",
    "Table", "Column", "read_csv", "write_csv",
})


class EntryPointRule:
    """The script must define ``run_pipeline(train, test)`` at top level."""

    id = "entry-point"
    description = "script must define run_pipeline(train, test)"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        entry = next(
            (
                node for node in ctx.tree.body
                if isinstance(node, ast.FunctionDef) and node.name == "run_pipeline"
            ),
            None,
        )
        if entry is None:
            yield Finding(
                rule_id=self.id,
                severity=self.default_severity,
                message="script does not define run_pipeline(train, test)",
                error_type="truncated_code",
            )
            return
        n_positional = len(entry.args.posonlyargs) + len(entry.args.args)
        accepts_two = n_positional >= 2 or entry.args.vararg is not None
        if not accepts_two:
            yield Finding(
                rule_id=self.id,
                severity=self.default_severity,
                message="run_pipeline must accept (train, test) "
                        f"but takes {n_positional} argument(s)",
                line=entry.lineno,
                error_type="truncated_code",
            )


class MissingImportRule:
    """Known library symbols used but resolvable to no binding."""

    id = "missing-import"
    description = "a used library symbol is never imported or defined"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        seen: set[str] = set()
        for name, lineno in ctx.scopes.undefined_uses():
            if name not in KNOWN_LIBRARY_SYMBOLS or name in seen:
                continue
            seen.add(name)
            yield Finding(
                rule_id=self.id,
                severity=self.default_severity,
                message=f"name {name!r} is used but never imported or defined",
                line=lineno,
                error_type="missing_import",
            )


#: builtins a generated pipeline has no business calling
_BANNED_BUILTINS = {
    "eval", "exec", "compile", "__import__", "input", "breakpoint",
    "exit", "quit",
}

#: module roots whose import alone is banned in generated code
_BANNED_IMPORTS = {
    "subprocess", "socket", "urllib", "requests", "http", "ftplib",
    "telnetlib", "ctypes",
}

#: dotted call prefixes that spawn processes / touch the filesystem
_BANNED_CALL_PREFIXES = (
    "os.system", "os.popen", "os.spawn", "os.exec", "os.remove",
    "os.unlink", "os.rmdir", "shutil.rmtree", "subprocess.",
    "socket.", "urllib.", "requests.", "http.",
)


class BannedApiRule:
    """Dynamic execution, filesystem, environment, process, network access.

    ``open`` and ``os.environ`` map onto their KB-patchable taxonomy
    types (``missing_data_file`` / ``env_variable``) so the knowledge
    base still patches them locally; everything else surfaces as
    ``wrong_api``.
    """

    id = "banned-api"
    description = "generated code calls an API banned in the sandbox"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Subscript):
                dotted = ctx.dotted_name(node.value)
                if dotted == "os.environ":
                    yield self._finding(
                        "environment access 'os.environ[...]' in generated code",
                        node.lineno, "env_variable",
                    )

    def _check_import(
        self, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            roots = [alias.name.split(".")[0] for alias in node.names]
        else:
            roots = [(node.module or "").split(".")[0]]
        for root in roots:
            if root in _BANNED_IMPORTS:
                yield self._finding(
                    f"import of banned module {root!r} in generated code",
                    node.lineno, "wrong_api",
                )

    def _check_call(self, ctx: AnalysisContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                yield self._finding(
                    "file access 'open(...)' in generated code "
                    "(pipelines receive their data as arguments)",
                    node.lineno, "missing_data_file",
                )
            elif func.id in _BANNED_BUILTINS:
                yield self._finding(
                    f"call to banned builtin {func.id!r} in generated code",
                    node.lineno, "wrong_api",
                )
            return
        dotted = ctx.dotted_name(func)
        if dotted is None:
            return
        if dotted in ("os.getenv", "os.environ.get"):
            yield self._finding(
                f"environment access {dotted!r} in generated code",
                node.lineno, "env_variable",
            )
            return
        for prefix in _BANNED_CALL_PREFIXES:
            if dotted == prefix.rstrip(".") or dotted.startswith(prefix):
                yield self._finding(
                    f"call to banned API {dotted!r} in generated code",
                    node.lineno, "wrong_api",
                )
                return

    def _finding(self, message: str, line: int, error_type: str) -> Finding:
        return Finding(
            rule_id=self.id,
            severity=self.default_severity,
            message=message,
            line=line,
            error_type=error_type,
        )


def _is_testish(name: str) -> bool:
    return is_testish(name)


def _is_trainish(name: str) -> bool:
    return is_trainish(name)


def _expr_label(expr: ast.AST) -> str:
    if isinstance(expr, ast.Name):
        return repr(expr.id)
    try:
        rendered = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on real ASTs
        return "the argument"
    if len(rendered) > 40:
        rendered = rendered[:37] + "..."
    return repr(rendered)


class DataLeakageRule:
    """Test data must never reach a ``fit``; the target is not a feature.

    Backed by the flow-sensitive provenance taint in
    :mod:`repro.analysis.dataflow`: an argument whose abstract value is
    TEST-tainted (directly, through an alias chain, or only on some
    branch) or WHOLE-tainted (a train+test mixture, e.g. concatenated
    before the split) is flagged — name spelling no longer matters.
    """

    id = "data-leakage"
    description = "estimator/transformer fitted on test or pre-split data"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for fit in ctx.dataflow.fit_calls:
            for arg, taint in fit.args:
                if taint is Taint.TEST:
                    yield Finding(
                        rule_id=self.id,
                        severity=self.default_severity,
                        message=f".{fit.method}() called on test data "
                                f"{_expr_label(arg)} "
                                "(fit on train only, then transform test)",
                        line=fit.lineno,
                        error_type="task_mismatch",
                    )
                    break
                if taint is Taint.WHOLE:
                    yield Finding(
                        rule_id=self.id,
                        severity=self.default_severity,
                        message=f".{fit.method}() called on {_expr_label(arg)}, "
                                "which mixes train and test data "
                                "(fit before the split leaks)",
                        line=fit.lineno,
                        error_type="task_mismatch",
                    )
                    break
        yield from self._target_in_features(ctx)

    def _target_in_features(self, ctx: AnalysisContext) -> Iterator[Finding]:
        target_value: str | None = None
        features: tuple[list[str], int] | None = None
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            name_node = node.targets[0]
            if not isinstance(name_node, ast.Name):
                continue
            if name_node.id == "TARGET" and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, str):
                    target_value = node.value.value
            elif name_node.id == "FEATURES" and isinstance(node.value, ast.List):
                values = [
                    e.value for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
                features = (values, node.lineno)
        if target_value is not None and features is not None:
            values, lineno = features
            if target_value in values:
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message=f"target column {target_value!r} is listed in FEATURES "
                            "(the label leaks into the design matrix)",
                    line=lineno,
                    error_type="task_mismatch",
                )


class UseBeforeDefRule:
    """A scope-local name read before *any* binding can reach it.

    Only names that are bound somewhere in the same scope qualify — a
    name never bound anywhere stays a runtime ``NameError`` (the SE/RE
    split: an unknown identifier is not statically attributable, a
    mis-ordered local is).  Reaching definitions over the CFG make this
    path-sensitive: a definition inside a loop body reaches later uses
    via the back edge, one inside a dead branch does not.
    """

    id = "use-before-def"
    description = "local name used before any assignment on every path"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for use in ctx.dataflow.use_before_def:
            if not use.definite:
                continue
            where = (
                "at module level" if use.scope == "<module>"
                else f"in {use.scope}()"
            )
            yield Finding(
                rule_id=self.id,
                severity=self.default_severity,
                message=f"name {use.name!r} is used before assignment {where} "
                        "(no definition reaches this use on any path)",
                line=use.lineno,
                col=use.col,
                error_type="undefined_variable",
            )


class BranchUseBeforeDefRule:
    """A name bound on some paths but read where a path skips the binding.

    Advisory: the unbound path may be impossible at runtime (e.g. a loop
    guaranteed to run), so this stays a warning rather than gating.
    """

    id = "branch-use-before-def"
    description = "local name may be unbound on some execution path"
    default_severity = Severity.WARNING

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for use in ctx.dataflow.use_before_def:
            if use.definite:
                continue
            where = (
                "at module level" if use.scope == "<module>"
                else f"in {use.scope}()"
            )
            yield Finding(
                rule_id=self.id,
                severity=self.default_severity,
                message=f"name {use.name!r} may be unbound {where} "
                        "(a branch, loop or except path skips its assignment)",
                line=use.lineno,
                col=use.col,
                error_type="undefined_variable",
            )


#: global-RNG functions on the stdlib ``random`` module
_RANDOM_MODULE_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate", "seed",
}

#: numpy.random attributes that are seeded constructors, not global draws
_NP_RANDOM_SEEDED = {"default_rng", "SeedSequence", "Generator", "BitGenerator"}


class NondeterminismRule:
    """Unseeded randomness makes repair loops and soaks unreproducible."""

    id = "nondeterminism"
    description = "unseeded RNG use in generated code"
    default_severity = Severity.WARNING

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is not None:
                finding = self._check_dotted(dotted, node)
                if finding is not None:
                    yield finding
            yield from self._check_random_state_none(ctx, node)

    def _check_dotted(self, dotted: str, node: ast.Call) -> Finding | None:
        if dotted.startswith("numpy.random."):
            attr = dotted.split(".", 2)[2]
            if attr == "default_rng" and not node.args and not node.keywords:
                return self._finding(
                    "numpy.random.default_rng() without a seed is "
                    "nondeterministic", node.lineno,
                )
            if "." not in attr and attr not in _NP_RANDOM_SEEDED:
                return self._finding(
                    f"call to numpy global RNG 'np.random.{attr}' "
                    "(use a seeded default_rng(seed) instead)", node.lineno,
                )
        elif dotted.startswith("random."):
            attr = dotted.split(".", 1)[1]
            if attr in _RANDOM_MODULE_FNS:
                return self._finding(
                    f"call to stdlib global RNG 'random.{attr}' "
                    "(unseeded; results will not reproduce)", node.lineno,
                )
        return None

    def _check_random_state_none(
        self, ctx: AnalysisContext, node: ast.Call
    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Name):
            return
        origin = ctx.import_aliases.get(node.func.id, "")
        if not origin.startswith("repro.ml"):
            return
        name = origin.rsplit(".", 1)[-1]
        if name not in signature_table():
            return
        for kw in node.keywords:
            if (
                kw.arg == "random_state"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is None
            ):
                yield self._finding(
                    f"{name}(random_state=None) draws fresh entropy per run",
                    node.lineno,
                )

    def _finding(self, message: str, line: int) -> Finding:
        return Finding(
            rule_id=self.id,
            severity=self.default_severity,
            message=message,
            line=line,
            error_type="no_convergence",
        )


#: exception names whose handlers make a call site runtime-guarded —
#: a statically-dubious call inside such a try block is intentional
_GUARD_EXCEPTIONS = {
    "AttributeError", "TypeError", "ValueError", "Exception", "BaseException",
}


class SignatureRule:
    """Calls into the known ``repro.ml`` surface must bind statically."""

    id = "signature"
    description = "call cannot bind against the known repro.ml signature"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        guarded = self._guarded_nodes(ctx)
        inferred = self._inferred_types(ctx)
        for node in ctx.walk():
            if not isinstance(node, ast.Call) or id(node) in guarded:
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = self._ml_name(ctx, func.id)
                if name is None:
                    continue
                message = check_call(name, node)
                if message is not None:
                    yield self._finding(f"{name}(...): {message}", node.lineno)
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                class_name = inferred.get(func.value.id)
                if class_name is None:
                    continue
                message = check_method_call(class_name, func.attr, node)
                if message is not None:
                    yield self._finding(
                        f"{func.value.id}.{func.attr}(...): {message}", node.lineno
                    )

    @staticmethod
    def _ml_name(ctx: AnalysisContext, local_name: str) -> str | None:
        origin = ctx.import_aliases.get(local_name)
        if origin is None or not origin.startswith("repro."):
            return None
        name = origin.rsplit(".", 1)[-1]
        return name if name in signature_table() else None

    def _inferred_types(self, ctx: AnalysisContext) -> dict[str, str]:
        """Map local var -> repro.ml class for ``var = ClassName(...)``.

        A name assigned twice with conflicting inferences (or to anything
        that is not a known-constructor call) becomes unknown — the check
        must never fire on a variable it cannot pin down.
        """
        inferred: dict[str, str | None] = {}
        for node in ctx.walk():
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            class_name: str | None = None
            if isinstance(node.value, ast.Call) and isinstance(
                node.value.func, ast.Name
            ):
                candidate = self._ml_name(ctx, node.value.func.id)
                import inspect as _inspect
                import repro.ml as _ml

                if candidate is not None and _inspect.isclass(
                    getattr(_ml, candidate, None)
                ):
                    class_name = candidate
            if target.id in inferred and inferred[target.id] != class_name:
                inferred[target.id] = None
            else:
                inferred[target.id] = class_name
        return {k: v for k, v in inferred.items() if v is not None}

    @staticmethod
    def _guarded_nodes(ctx: AnalysisContext) -> set[int]:
        """ids of Call nodes inside runtime-guarded blocks.

        Two guard shapes count: ``try`` bodies whose handlers catch a
        broad exception, and ``with contextlib.suppress(...)`` bodies
        suppressing one (``suppress`` resolved through import aliases).
        """
        guarded: set[int] = set()

        def guard_body(body: list[ast.stmt]) -> None:
            for stmt in body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        guarded.add(id(sub))

        for node in ctx.walk():
            if isinstance(node, ast.Try):
                names: set[str] = set()
                bare = False
                for handler in node.handlers:
                    if handler.type is None:
                        bare = True
                    else:
                        for sub in ast.walk(handler.type):
                            if isinstance(sub, ast.Name):
                                names.add(sub.id)
                if bare or names & _GUARD_EXCEPTIONS:
                    guard_body(node.body)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if not isinstance(expr, ast.Call):
                        continue
                    dotted = ctx.dotted_name(expr.func)
                    if dotted != "contextlib.suppress":
                        continue
                    suppressed = {
                        sub.id
                        for arg in expr.args
                        for sub in ast.walk(arg)
                        if isinstance(sub, ast.Name)
                    }
                    if suppressed & _GUARD_EXCEPTIONS:
                        guard_body(node.body)
                        break
        return guarded

    def _finding(self, message: str, line: int) -> Finding:
        return Finding(
            rule_id=self.id,
            severity=self.default_severity,
            message=message,
            line=line,
            error_type="wrong_api",
        )


#: the full pre-execution gate for generated pipelines
PIPELINE_RULES = (
    EntryPointRule(),
    MissingImportRule(),
    BannedApiRule(),
    DataLeakageRule(),
    UseBeforeDefRule(),
    BranchUseBeforeDefRule(),
    NondeterminismRule(),
    SignatureRule(),
)

#: the legacy ``validate_source`` surface: structure + imports only
VALIDATE_RULES = (
    EntryPointRule(),
    MissingImportRule(),
)
