"""Tests for Algorithm 1 profiling and the DataCatalog store."""

import json

import numpy as np
import pytest

from repro.catalog.catalog import ColumnProfile, DataCatalog, DatasetInfo
from repro.catalog.feature_types import FeatureType
from repro.catalog.profiler import numeric_statistics, profile_dataset, profile_table
from repro.table.column import Column
from repro.table.table import Table


class TestNumericStatistics:
    def test_basic_stats(self):
        col = Column("a", [1.0, 2.0, 3.0, None])
        stats = numeric_statistics(col)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["median"] == 2.0

    def test_empty_column(self):
        assert numeric_statistics(Column("a", [None], kind="numeric")) == {}


class TestProfileTable:
    def test_target_required(self, small_classification_table):
        with pytest.raises(KeyError):
            profile_table(small_classification_table, target="zz", task_type="binary")

    def test_column_coverage(self, classification_catalog):
        assert set(classification_catalog.column_names) == {"x1", "x2", "cat", "label"}

    def test_numeric_feature_typed(self, classification_catalog):
        assert classification_catalog["x2"].feature_type is FeatureType.NUMERICAL

    def test_categorical_feature_typed(self, classification_catalog):
        profile = classification_catalog["cat"]
        assert profile.feature_type is FeatureType.CATEGORICAL
        assert set(profile.categorical_values) == {"A", "B"}

    def test_missing_percentage(self, classification_catalog):
        assert classification_catalog["x1"].missing_percentage == pytest.approx(
            100 * 20 / 300, abs=0.01
        )

    def test_target_correlation_orders_features(self, classification_catalog):
        # x1 drives the label more than the noise-only cat column
        assert (
            classification_catalog["x1"].target_correlation
            > classification_catalog["cat"].target_correlation - 0.3
        )

    def test_class_counts_recorded_for_categorical_target(self, classification_catalog):
        target = classification_catalog.target_profile
        counts = target.statistics.get("class_counts")
        assert counts is not None and sum(counts) == 300

    def test_categorical_samples_are_all_uniques(self, classification_catalog):
        profile = classification_catalog["cat"]
        assert sorted(profile.samples) == sorted(profile.categorical_values)

    def test_numeric_samples_bounded_by_tau(self, small_classification_table):
        catalog = profile_table(
            small_classification_table, target="label", task_type="binary", tau_1=5
        )
        assert len(catalog["x2"].samples) == 5

    def test_constant_column_detected(self):
        t = Table.from_dict({"k": ["c"] * 30, "x": range(30), "y": [0, 1] * 15})
        catalog = profile_table(t, target="y", task_type="binary")
        assert catalog["k"].feature_type is FeatureType.CONSTANT

    def test_id_column_detected(self):
        t = Table.from_dict({
            "id": list(range(100)),
            "x": np.random.default_rng(0).normal(size=100),
            "y": [0, 1] * 50,
        })
        catalog = profile_table(t, target="y", task_type="binary")
        assert catalog["id"].feature_type is FeatureType.ID

    def test_without_dependencies_is_faster_path(self, small_classification_table):
        catalog = profile_table(
            small_classification_table, target="label", task_type="binary",
            with_dependencies=False,
        )
        assert catalog["x1"].target_correlation == 0.0


class TestProfileDataset:
    def test_multi_table_joined_before_profiling(self):
        fact = Table.from_dict({"k": [1, 2, 1], "y": ["a", "b", "a"]}, name="fact")
        dim = Table.from_dict({"k": [1, 2], "v": [10.0, 20.0]}, name="dim")
        catalog = profile_dataset(
            [fact, dim], target="y", task_type="binary",
            join_plan=[("fact", "dim", "k")],
        )
        assert "v" in catalog
        assert catalog.info.n_tables == 2

    def test_single_table(self, small_classification_table):
        catalog = profile_dataset(
            [small_classification_table], target="label", task_type="binary"
        )
        assert catalog.info.n_tables == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_dataset([], target="y", task_type="binary")


class TestDataCatalogStore:
    def test_subset_keeps_target(self, classification_catalog):
        sub = classification_catalog.subset(["x1"])
        assert set(sub.column_names) == {"x1", "label"}

    def test_replace_profile(self, classification_catalog):
        replacement = ColumnProfile(
            name="cat2", data_type="string",
            feature_type=FeatureType.CATEGORICAL, is_categorical=True,
            distinct_count=1, distinct_percentage=1.0,
            missing_count=0, missing_percentage=0.0,
        )
        classification_catalog.replace("cat", [replacement])
        assert "cat2" in classification_catalog
        assert "cat" not in classification_catalog

    def test_replace_unknown_raises(self, classification_catalog):
        with pytest.raises(KeyError):
            classification_catalog.replace("zz", [])

    def test_drop(self, classification_catalog):
        classification_catalog.drop(["x1"])
        assert "x1" not in classification_catalog

    def test_duplicate_profile_rejected(self):
        info = DatasetInfo("d", "binary", "y", 1, 1)
        profile = ColumnProfile(
            name="y", data_type="string", feature_type=FeatureType.CATEGORICAL,
            is_categorical=True, distinct_count=2, distinct_percentage=100,
            missing_count=0, missing_percentage=0,
        )
        with pytest.raises(ValueError):
            DataCatalog(info, [profile, profile])

    def test_json_roundtrip(self, classification_catalog, tmp_path):
        path = tmp_path / "catalog.json"
        classification_catalog.save(path)
        loaded = DataCatalog.load(path)
        assert loaded.column_names == classification_catalog.column_names
        assert loaded.info.target == "label"
        assert loaded["cat"].feature_type is FeatureType.CATEGORICAL

    def test_to_json_valid(self, classification_catalog):
        parsed = json.loads(classification_catalog.to_json())
        assert parsed["info"]["name"] == "clf"

    def test_getitem_unknown(self, classification_catalog):
        with pytest.raises(KeyError):
            classification_catalog["zz"]

    def test_feature_profiles_exclude_target(self, classification_catalog):
        names = [p.name for p in classification_catalog.feature_profiles()]
        assert "label" not in names
