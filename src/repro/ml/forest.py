"""Random forests: bootstrap-aggregated CART trees with feature subsampling."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_X, check_X_y
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest(BaseEstimator):
    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def _tree_params(self, seed: int) -> dict[str, Any]:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "random_state": seed,
        }

    def _sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.bootstrap:
            return rng.integers(0, n, size=n)
        return np.arange(n)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-decrease importances over the ensemble."""
        self._check_fitted("estimators_")
        stacked = np.vstack([t.feature_importances_ for t in self.estimators_])
        importances = stacked.mean(axis=0)
        norm = importances.sum()
        return importances / norm if norm > 0 else importances


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Majority-probability voting over bootstrapped Gini trees."""

    def fit(self, X: Any, y: Any) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = sorted(set(y.tolist()), key=str)
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        for t in range(self.n_estimators):
            tree = DecisionTreeClassifier(**self._tree_params(self.random_state + t))
            tree.classes_ = self.classes_  # fixed label order across trees
            index = {label: i for i, label in enumerate(self.classes_)}
            codes = np.asarray([index[v] for v in y], dtype=np.int64)
            idx = self._sample(X.shape[0], rng)
            tree.n_features_ = X.shape[1]
            tree.root_ = tree._build(
                X[idx], codes[idx], depth=0, rng=np.random.default_rng(self.random_state + t)
            )
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_X(X)
        total = np.zeros((X.shape[0], len(self.classes_)), dtype=np.float64)
        for tree in self.estimators_:
            total += tree.predict_proba(X)
        return total / len(self.estimators_)

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        picks = np.argmax(proba, axis=1)
        return np.asarray([self.classes_[p] for p in picks], dtype=object)


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Mean aggregation over bootstrapped variance-reduction trees."""

    def fit(self, X: Any, y: Any) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        y = y.astype(np.float64)
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        for t in range(self.n_estimators):
            tree = DecisionTreeRegressor(**self._tree_params(self.random_state + t))
            idx = self._sample(X.shape[0], rng)
            tree.n_features_ = X.shape[1]
            tree.root_ = tree._build(
                X[idx], y[idx], depth=0, rng=np.random.default_rng(self.random_state + t)
            )
            self.estimators_.append(tree)
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_X(X)
        total = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.estimators_:
            total += tree.predict(X)
        return total / len(self.estimators_)
