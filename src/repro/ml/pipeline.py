"""Composition: sklearn-style ``Pipeline`` and a Table-to-matrix vectorizer.

``TableVectorizer`` is the bridge between the relational world
(:class:`repro.table.Table`) and the numeric estimators: it imputes,
scales, one-hot/k-hot/hash-encodes columns according to a per-column plan,
which is exactly the kind of plan CatDB's generated code expresses.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.ml.preprocessing import (
    FeatureHasher,
    KHotEncoder,
    OneHotEncoder,
    OrdinalEncoder,
    QuantileClipper,
    SimpleImputer,
    StandardScaler,
)
from repro.table.column import ColumnKind
from repro.table.table import Table

__all__ = ["Pipeline", "ColumnSelector", "TableVectorizer"]


class Pipeline(BaseEstimator):
    """Chain of ``(name, transformer)`` steps ending in an estimator."""

    def __init__(self, steps: Sequence[tuple[str, Any]]) -> None:
        if not steps:
            raise ValueError("a pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate step names in {names}")
        self.steps = list(steps)

    @property
    def named_steps(self) -> dict[str, Any]:
        return dict(self.steps)

    def _final(self) -> Any:
        return self.steps[-1][1]

    def fit(self, X: Any, y: Any = None) -> "Pipeline":
        data = X
        for _name, step in self.steps[:-1]:
            data = step.fit_transform(data, y)
        final = self._final()
        if hasattr(final, "fit"):
            final.fit(data, y)
        return self

    def _transform_through(self, X: Any) -> Any:
        data = X
        for _name, step in self.steps[:-1]:
            data = step.transform(data)
        return data

    def predict(self, X: Any) -> np.ndarray:
        return self._final().predict(self._transform_through(X))

    def predict_proba(self, X: Any) -> np.ndarray:
        return self._final().predict_proba(self._transform_through(X))

    def transform(self, X: Any) -> Any:
        data = self._transform_through(X)
        final = self._final()
        if hasattr(final, "transform"):
            data = final.transform(data)
        return data

    def fit_transform(self, X: Any, y: Any = None) -> Any:
        self.fit(X, y)
        return self.transform(X)

    def score(self, X: Any, y: Any) -> float:
        return self._final().score(self._transform_through(X), y)

    @property
    def classes_(self):
        return self._final().classes_


class ColumnSelector(BaseEstimator, TransformerMixin):
    """Project a :class:`Table` onto (or drop) a set of columns."""

    def __init__(self, keep: Sequence[str] | None = None, drop: Sequence[str] | None = None) -> None:
        if (keep is None) == (drop is None):
            raise ValueError("pass exactly one of keep= or drop=")
        self.keep = list(keep) if keep is not None else None
        self.drop = list(drop) if drop is not None else None

    def fit(self, table: Table, y: Any = None) -> "ColumnSelector":
        self.fitted_ = True
        return self

    def transform(self, table: Table) -> Table:
        if self.keep is not None:
            return table.select([c for c in self.keep if c in table])
        return table.drop([c for c in self.drop if c in table])


_NUMERIC_DEFAULT = {"impute": "median", "scale": True, "clip_outliers": False}


class TableVectorizer(BaseEstimator, TransformerMixin):
    """Turn a :class:`Table` into a dense float matrix via a per-column plan.

    Parameters
    ----------
    plan:
        Mapping of column name to an encoding spec dict:

        - ``{"encode": "numeric", "impute": "mean"|"median", "scale": bool,
          "clip_outliers": bool}``
        - ``{"encode": "onehot", "max_categories": int | None}``
        - ``{"encode": "ordinal"}``
        - ``{"encode": "khot", "delimiter": ",", "max_items": int | None}``
        - ``{"encode": "hash", "n_features": int}``
        - ``{"encode": "drop"}``

        Columns not named in the plan are encoded by default rules: numeric
        columns as numeric, string columns as one-hot capped at 50
        categories, boolean columns as 0/1.
    target:
        Optional target column name; always excluded from the features.
    """

    def __init__(
        self,
        plan: Mapping[str, Mapping[str, Any]] | None = None,
        target: str | None = None,
    ) -> None:
        self.plan = dict(plan) if plan else {}
        self.target = target

    def _spec_for(self, table: Table, name: str) -> dict[str, Any]:
        if name in self.plan:
            spec = dict(self.plan[name])
            spec.setdefault("encode", "numeric")
            return spec
        column = table[name]
        if column.kind is ColumnKind.NUMERIC:
            return {"encode": "numeric", **_NUMERIC_DEFAULT}
        if column.kind is ColumnKind.BOOLEAN:
            return {"encode": "ordinal"}
        return {"encode": "onehot", "max_categories": 50}

    def fit(self, table: Table, y: Any = None) -> "TableVectorizer":
        self._encoders: list[tuple[str, str, list[Any]]] = []
        self.feature_names_: list[str] = []
        for name in table.column_names:
            if name == self.target:
                continue
            spec = self._spec_for(table, name)
            encode = spec["encode"]
            if encode == "drop":
                continue
            column = table[name]
            if encode == "numeric":
                values = column.astype_numeric().numeric_values().reshape(-1, 1)
                stages: list[Any] = []
                impute = spec.get("impute", "median")
                if impute is not None:
                    stages.append(SimpleImputer(strategy=impute))
                if spec.get("clip_outliers"):
                    stages.append(
                        QuantileClipper(
                            lower=spec.get("clip_lower", 0.01),
                            upper=spec.get("clip_upper", 0.99),
                        )
                    )
                if spec.get("scale", True):
                    stages.append(StandardScaler())
                data: Any = values
                for stage in stages:
                    data = stage.fit_transform(data)
                self._encoders.append((name, encode, stages))
                self.feature_names_.append(name)
            elif encode == "onehot":
                encoder = OneHotEncoder(max_categories=spec.get("max_categories"))
                encoder.fit(np.asarray(column.to_list(), dtype=object))
                self._encoders.append((name, encode, [encoder]))
                self.feature_names_.extend(encoder.feature_names([name]))
            elif encode == "ordinal":
                encoder = OrdinalEncoder()
                encoder.fit(np.asarray(
                    [None if v is None else str(v) for v in column], dtype=object
                ))
                self._encoders.append((name, encode, [encoder]))
                self.feature_names_.append(name)
            elif encode == "khot":
                encoder = KHotEncoder(
                    delimiter=spec.get("delimiter", ","),
                    max_items=spec.get("max_items"),
                )
                encoder.fit(np.asarray(column.to_list(), dtype=object))
                self._encoders.append((name, encode, [encoder]))
                self.feature_names_.extend(f"{name}[{item}]" for item in encoder.items_)
            elif encode == "hash":
                encoder = FeatureHasher(n_features=spec.get("n_features", 16))
                encoder.fit(column.to_list())
                self._encoders.append((name, encode, [encoder]))
                self.feature_names_.extend(
                    f"{name}#h{i}" for i in range(encoder.n_features)
                )
            else:
                raise ValueError(f"unknown encoding {encode!r} for column {name!r}")
        return self

    def transform(self, table: Table) -> np.ndarray:
        self._check_fitted("_encoders")
        blocks: list[np.ndarray] = []
        for name, encode, stages in self._encoders:
            column = table[name]
            if encode == "numeric":
                data: Any = column.astype_numeric().numeric_values().reshape(-1, 1)
                for stage in stages:
                    data = stage.transform(data)
                blocks.append(np.asarray(data, dtype=np.float64))
            elif encode == "ordinal":
                data = stages[0].transform(np.asarray(
                    [None if v is None else str(v) for v in column], dtype=object
                ))
                blocks.append(np.asarray(data, dtype=np.float64))
            else:
                blocks.append(
                    stages[0].transform(np.asarray(column.to_list(), dtype=object))
                )
        if not blocks:
            return np.empty((table.n_rows, 0), dtype=np.float64)
        return np.column_stack(blocks)

    @property
    def n_output_features_(self) -> int:
        self._check_fitted("_encoders")
        return len(self.feature_names_)
