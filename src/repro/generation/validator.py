"""Static pipeline validation via ``ast`` (paper Section 4.2, SE handling).

Catches syntax/parse problems before any execution: markdown fences,
stray prose, indentation damage, unbalanced brackets, truncated code, and
statically-detectable missing imports (used names never bound).  Also
verifies the structural contract: the script must define
``run_pipeline(train, test)``.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass

from repro.generation.errors import ERROR_TYPES, PipelineError

__all__ = ["ValidationIssue", "validate_source", "extract_code_block"]

# symbols whose undefined use is statically attributable to a lost import
_KNOWN_LIBRARY_SYMBOLS = frozenset({
    "np", "numpy", "scipy", "networkx",
    "TableVectorizer", "ColumnSelector", "Pipeline",
    "RandomForestClassifier", "RandomForestRegressor",
    "GradientBoostingClassifier", "GradientBoostingRegressor",
    "DecisionTreeClassifier", "DecisionTreeRegressor",
    "LogisticRegression", "LinearRegression", "Ridge",
    "GaussianNB", "KNeighborsClassifier", "KNeighborsRegressor", "TabPFNProxy",
    "LinearSVC", "KMeans",
    "GridSearchCV", "RandomizedSearchCV", "train_test_split", "cross_val_score",
    "accuracy_score", "roc_auc_score", "r2_score", "f1_score", "log_loss",
    "SimpleImputer", "StandardScaler", "MinMaxScaler", "RobustScaler",
    "OneHotEncoder", "OrdinalEncoder", "LabelEncoder", "KHotEncoder",
    "FeatureHasher", "QuantileClipper",
    "oversample_minority", "gaussian_augment", "drop_missing_rows",
    "Table", "Column", "read_csv", "write_csv",
})


@dataclass
class ValidationIssue:
    """One static finding, mapped onto the error taxonomy."""

    error: PipelineError

    @property
    def type_name(self) -> str:
        return self.error.error_type.name


def extract_code_block(response_text: str) -> str:
    """Pull the code out of a model response.

    Prefers ``<CODE>...</CODE>`` tags; falls back to the raw text.  Leftover
    markdown fences are intentionally NOT stripped here — detecting them is
    the validator's job (they are one of the 23 error types).
    """
    text = response_text
    if "<CODE>" in text and "</CODE>" in text:
        text = text.split("<CODE>", 1)[1].split("</CODE>", 1)[0]
    return text.strip("\n")


def _syntax_error_type(code: str, exc: SyntaxError) -> str:
    lines = code.split("\n")
    line_no = (exc.lineno or 1) - 1
    line = lines[line_no] if 0 <= line_no < len(lines) else ""
    if line.strip().startswith("```") or "```" in code[:16]:
        return "markdown_fence"
    if isinstance(exc, IndentationError) or "indent" in (exc.msg or "").lower():
        return "broken_indentation"
    if "was never closed" in (exc.msg or "") or "unexpected EOF" in (exc.msg or ""):
        # distinguish mid-statement truncation from a single unclosed bracket
        if line_no >= len(lines) - 2 and not code.rstrip().endswith(")"):
            return "truncated_code"
        return "unclosed_bracket"
    words = line.replace(":", "").split()
    if len(words) >= 4 and all(w.isalpha() for w in words[:4]):
        return "stray_prose"
    return "stray_prose"


def _collect_defined_names(tree: ast.Module) -> set[str]:
    defined: set[str] = set(dir(builtins))
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                defined.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    args.args + args.posonlyargs + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                ):
                    defined.add(arg.arg)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            defined.add(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target if isinstance(node, ast.For) else node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    defined.add(sub.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            defined.add(node.name)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    defined.add(sub.id)
    return defined


def _used_names(tree: ast.Module) -> list[tuple[str, int]]:
    used = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.append((node.id, node.lineno))
    return used


def validate_source(code: str) -> list[ValidationIssue]:
    """Run all static checks; empty list means statically clean."""
    issues: list[ValidationIssue] = []
    try:
        tree = ast.parse(code)
    except SyntaxError as exc:
        type_name = _syntax_error_type(code, exc)
        issues.append(ValidationIssue(PipelineError(
            ERROR_TYPES[type_name], exc.msg or "invalid syntax", line=exc.lineno
        )))
        return issues

    defined = _collect_defined_names(tree)
    seen: set[str] = set()
    for name, lineno in _used_names(tree):
        if name in defined or name in seen:
            continue
        # Only names that are clearly *library symbols* count as a static
        # missing-import (SE).  An arbitrary undefined identifier (e.g. a
        # typo like `vectoriser`) is a runtime NameError the execution
        # check classifies — keeping the paper's SE-vs-RE split intact.
        if name not in _KNOWN_LIBRARY_SYMBOLS:
            continue
        seen.add(name)
        issues.append(ValidationIssue(PipelineError(
            ERROR_TYPES["missing_import"],
            f"name {name!r} is used but never imported or defined",
            line=lineno,
        )))

    has_entry = any(
        isinstance(node, ast.FunctionDef) and node.name == "run_pipeline"
        for node in tree.body
    )
    if not has_entry:
        issues.append(ValidationIssue(PipelineError(
            ERROR_TYPES["truncated_code"],
            "script does not define run_pipeline(train, test)",
        )))
    return issues
