"""Comparator systems (paper Section 5.1, "Baseline Comparisons").

- LLM-based: CAAFE (feature engineering + fixed model), AIDE (iterative
  agent), AutoGen (multi-agent conversation), each driven by the same
  simulated LLM profiles as CatDB.
- AutoML: four mini-AutoML tools with distinct search strategies and the
  paper's empirical failure modes (H2O, FLAML, AutoGluon, Auto-Sklearn).
- AutoML workflows: data cleaning (SAGA-like, Learn2Clean-like) and
  augmentation (ADASYN-like, imbalanced regression) composed in front of
  the AutoML tools.
"""

from repro.baselines.aide import AIDEBaseline
from repro.baselines.autogen import AutoGenBaseline
from repro.baselines.automl import (
    AutoGluonLike,
    AutoSklearnLike,
    FlamlLike,
    H2OLike,
    MiniAutoML,
)
from repro.baselines.base import BaselineReport
from repro.baselines.caafe import CAAFEBaseline
from repro.baselines.cleaning import Learn2CleanLike, SagaLike
from repro.baselines.augmentation import adasyn_like, imbalanced_regression_resample

__all__ = [
    "AIDEBaseline",
    "AutoGenBaseline",
    "AutoGluonLike",
    "AutoSklearnLike",
    "FlamlLike",
    "H2OLike",
    "MiniAutoML",
    "BaselineReport",
    "CAAFEBaseline",
    "Learn2CleanLike",
    "SagaLike",
    "adasyn_like",
    "imbalanced_regression_resample",
]
