"""Tests for the few-shot example bank and its prompt integration."""

from repro.llm.tokenizer import count_tokens
from repro.prompt.builder import build_prompt_plan
from repro.prompt.fewshot import FEW_SHOT_EXAMPLES, render_few_shot_block


class TestFewShotBlock:
    def test_zero_is_empty(self):
        assert render_few_shot_block(0) == ""

    def test_negative_is_empty(self):
        assert render_few_shot_block(-2) == ""

    def test_k_examples_rendered(self):
        block = render_few_shot_block(2)
        assert block.count("### Example") == 2

    def test_capped_at_bank_size(self):
        block = render_few_shot_block(99)
        assert block.count("### Example") == len(FEW_SHOT_EXAMPLES)

    def test_examples_have_both_parts(self):
        for example in FEW_SHOT_EXAMPLES:
            assert example["prompt_sketch"]
            assert example["pipeline_sketch"]


class TestFewShotPrompting:
    def test_prompt_grows_with_examples(self, classification_catalog):
        zero = build_prompt_plan(classification_catalog, few_shot=0).single.text
        few = build_prompt_plan(classification_catalog, few_shot=3).single.text
        assert count_tokens(few) > count_tokens(zero)
        assert "Worked examples" in few
        assert "Worked examples" not in zero

    def test_payload_unchanged_by_examples(self, classification_catalog):
        from repro.llm.mock import extract_payload

        zero = build_prompt_plan(classification_catalog, few_shot=0).single.text
        few = build_prompt_plan(classification_catalog, few_shot=3).single.text
        assert extract_payload(zero) == extract_payload(few)
