"""Observability subsystem: tracing spans, metrics, and a run ledger.

Three parts (see ``docs/observability.md``):

- :mod:`repro.obs.trace` — nestable, thread-aware ``span()`` trees;
- :mod:`repro.obs.metrics` — process-local counters / gauges / histograms;
- :mod:`repro.obs.ledger` — JSONL-persisted per-run records with
  listing, loading, and per-phase diffing;

plus :mod:`repro.obs.session`, which scopes one tracer + registry to a
run and appends the ledger record on exit.  Everything defaults to
no-ops (``NULL_TRACER`` / ``NULL_METRICS``) so the instrumented
profile → prompt → generate → repair → execute path is effectively free
unless ``--trace`` / ``REPRO_TRACE=1`` / :func:`enable_tracing` is used.
"""

from repro.obs.fence import FencedMetrics, FencedTracer, ObsFence
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    default_ledger_path,
    render_diff,
    render_record,
    render_records_table,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.session import (
    RunSession,
    active_session,
    configured_ledger_path,
    disable_tracing,
    enable_tracing,
    run_session,
    tracing_enabled,
)
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    aggregate_spans,
    current_span,
    get_tracer,
    render_span_tree,
    set_tracer,
    span,
    traced,
)

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "span",
    "current_span",
    "traced",
    "aggregate_spans",
    "render_span_tree",
    "MetricsRegistry",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "RunLedger",
    "RunRecord",
    "default_ledger_path",
    "render_record",
    "render_records_table",
    "render_diff",
    "RunSession",
    "run_session",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "active_session",
    "configured_ledger_path",
    "ObsFence",
    "FencedTracer",
    "FencedMetrics",
]
