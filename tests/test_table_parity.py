"""Parity contract of the dictionary-encoded data plane.

The columnar rebuild of ``repro.table`` must be observationally
identical to the per-row seed semantics: same inferred kinds, same
coerced cells, same first-seen ``unique()`` order, same
``value_counts()`` tie-breaks, same content fingerprints — for any
chunking of the input and any profiler worker count.  These tests pin
that contract against an embedded per-row reference implementation
built from the same coercion primitives (``_infer_kind`` /
``_format_value`` / ``_to_bool``) the batch path keeps.
"""

import random

import numpy as np
import pytest

from repro.catalog.cache import ProfileCache, column_fingerprint
from repro.catalog.profiler import profile_table
from repro.table.column import (
    Column,
    ColumnKind,
    _format_value,
    _infer_kind,
    _is_missing_scalar,
    _to_bool,
)
from repro.table.ops import drop_duplicate_rows, sort_by, stack_tables
from repro.table.table import Table

# -- per-row reference implementation (seed semantics) --------------------------


def ref_coerce(values, kind=None):
    """Seed per-cell coercion: inferred kind + coerced cell list."""
    kind = ColumnKind(kind) if kind is not None else _infer_kind(values)
    cells = []
    for value in values:
        if _is_missing_scalar(value):
            cells.append(None)
        elif kind is ColumnKind.NUMERIC:
            try:
                cells.append(float(value))
            except (TypeError, ValueError):
                cells.append(None)
        elif kind is ColumnKind.BOOLEAN:
            cells.append(_to_bool(value))
        else:
            cells.append(_format_value(value))
    return kind, cells


def ref_unique(cells):
    return list(dict.fromkeys(v for v in cells if v is not None))


def ref_value_counts(cells):
    counts = {}
    for value in cells:
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))


# -- dirty value generator ------------------------------------------------------

_DIRTY_POOL = [
    None, "", "  ", "NA", "null", "NaN",
    "yes", "no", "TRUE", "False", True, False,
    0, 1, -1, 7, 1.5, -0.25, 2.0, 1e6, 0.0, -0.0,
    "0", "1", "3.5", " 42 ", "1e3",
    "alpha", "Beta", "beta ", "x,y", "ümlaut", "长", "a" * 30,
    np.int64(5), np.float64(2.5), np.bool_(True),
]


def dirty_values(rng, n):
    return [rng.choice(_DIRTY_POOL) for _ in range(n)]


def dirty_table(rng, n_rows, n_cols=4):
    cols = [
        Column(f"c{j}", dirty_values(rng, n_rows)) for j in range(n_cols)
    ]
    return Table(cols, name="dirty")


def chunk_sizes(n, pieces):
    """Split n rows into `pieces` contiguous spans (some possibly empty)."""
    cuts = sorted(random.Random(pieces * 1000 + n).randrange(n + 1)
                  for _ in range(pieces - 1))
    bounds = [0] + cuts + [n]
    return [(bounds[i], bounds[i + 1]) for i in range(pieces)]


# -- column-level parity --------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_column_matches_reference(seed):
    rng = random.Random(seed)
    values = dirty_values(rng, rng.randrange(0, 120))
    col = Column("c", values)
    kind, cells = ref_coerce(values)
    assert col.kind is kind
    assert col.to_list() == cells
    assert col.unique() == ref_unique(cells)
    assert col.value_counts() == ref_value_counts(cells)
    assert col.n_distinct == len(ref_unique(cells))
    assert col.n_missing == sum(1 for v in cells if v is None)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("kind", ["numeric", "string", "boolean"])
def test_forced_kind_matches_reference(seed, kind):
    rng = random.Random(seed)
    values = dirty_values(rng, 80)
    if kind == "boolean":
        values = [rng.choice([True, False, "yes", "NO", None, ""])
                  for _ in range(80)]
    col = Column("c", values, kind=kind)
    _, cells = ref_coerce(values, kind=kind)
    assert col.to_list() == cells
    assert col.unique() == ref_unique(cells)
    assert col.value_counts() == ref_value_counts(cells)


@pytest.mark.parametrize("pieces", [1, 2, 3, 7])
def test_chunked_ingest_is_bit_identical(pieces):
    """Building a column from any chunking of its rows changes nothing:
    lists, uniques, counts, and the content fingerprint all match."""
    rng = random.Random(pieces)
    values = dirty_values(rng, 90)
    whole = Column("c", values)
    spans = chunk_sizes(len(values), pieces)
    parts = [
        Table([Column("c", values[lo:hi], kind=whole.kind)])
        for lo, hi in spans
    ]
    stacked = stack_tables(parts)["c"]
    assert stacked.kind is whole.kind
    assert stacked.to_list() == whole.to_list()
    assert stacked.unique() == whole.unique()
    assert stacked.value_counts() == whole.value_counts()
    assert column_fingerprint(stacked) == column_fingerprint(whole)


def test_fingerprint_is_content_only():
    rng = random.Random(5)
    values = dirty_values(rng, 60)
    a = Column("left", values)
    # a column that reaches the same cells through a permuted pool
    perm = list(range(60))
    random.Random(6).shuffle(perm)
    inverse = np.argsort(np.asarray(perm))
    b = Column("right", [values[i] for i in perm]).take(inverse)
    assert a.to_list() == b.to_list()
    assert column_fingerprint(a) == column_fingerprint(b)


# -- table-level parity ---------------------------------------------------------


def _ref_join(left_rows, right_rows, left_key, right_key, how):
    pairs = []
    for i, lrow in enumerate(left_rows):
        matches = [
            j for j, rrow in enumerate(right_rows)
            if lrow[left_key] is not None and lrow[left_key] == rrow[right_key]
        ]
        if matches:
            if how == "left":
                pairs.append((i, matches[0]))
            else:
                pairs.extend((i, j) for j in matches)
        elif how == "left":
            pairs.append((i, None))
    return pairs


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("how", ["inner", "left"])
def test_join_matches_reference(seed, how):
    rng = random.Random(seed)
    keys = [None, "a", "b", "c", 1, 2, True, "1", 1.0]
    left = Table([
        Column("k", [rng.choice(keys) for _ in range(25)]),
        Column("v", dirty_values(rng, 25)),
    ])
    right = Table([
        Column("k", [rng.choice(keys) for _ in range(18)]),
        Column("w", dirty_values(rng, 18)),
    ])
    joined = left.join(right, on="k", how=how)
    lrows = left.to_rows()
    rrows = right.to_rows()
    pairs = _ref_join(lrows, rrows, "k", "k", how)
    assert joined.n_rows == len(pairs)
    for row, (i, j) in zip(joined.to_rows(), pairs):
        expect_w = None if j is None else rrows[j]["w"]
        assert row["k"] == lrows[i]["k"]
        assert row["v"] == lrows[i]["v"]
        assert row["w"] == expect_w


@pytest.mark.parametrize("seed", range(6))
def test_sort_and_dedup_match_reference(seed):
    rng = random.Random(seed)
    table = dirty_table(rng, 50, n_cols=3)
    # sort: stable, missing last, seed tie-breaks
    for descending in (False, True):
        got = sort_by(table, "c0", descending=descending)["c0"].to_list()
        cells = table["c0"].to_list()
        present = [v for v in cells if v is not None]
        expect = sorted(present, key=_sort_key(table["c0"].kind),
                        reverse=descending)
        assert [v for v in got if v is not None] == expect
        assert got[len(present):] == [None] * (len(cells) - len(present))
    # dedup: first occurrence of each distinct row tuple survives
    deduped = drop_duplicate_rows(table)
    rows = list(zip(*(table[n].to_list() for n in table.column_names)))
    seen, expect_rows = set(), []
    for row in rows:
        if row not in seen:
            seen.add(row)
            expect_rows.append(row)
    got_rows = list(zip(*(deduped[n].to_list() for n in deduped.column_names)))
    assert got_rows == expect_rows


def _sort_key(kind):
    if kind is ColumnKind.NUMERIC:
        return float
    return lambda v: v


# -- profiling parity across worker counts --------------------------------------


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_profile_parity_across_workers(workers):
    rng = random.Random(11)
    table = dirty_table(rng, 60, n_cols=4)
    table.name = "parity"
    base = profile_table(
        table, target="c0", task_type="binary", seed=3,
        workers=1, cache=ProfileCache(),
    )
    got = profile_table(
        table, target="c0", task_type="binary", seed=3,
        workers=workers, cache=ProfileCache(),
    )
    assert got.to_dict() == base.to_dict()
