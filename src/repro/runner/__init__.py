"""Parallel experiment scheduler (see ``docs/architecture.md``).

The paper's Section-5 evaluation is a dataset x system x LLM-profile
grid; this package turns each grid into a :class:`~repro.runner.job.\
JobGraph` — ``prepare_dataset`` as a shared upstream node, every
``run_catdb`` / ``run_llm_baseline`` / ``run_automl`` cell as a fan-out
node — and executes it on a worker pool
(:class:`~repro.runner.scheduler.Scheduler`) with per-job seeded RNG,
per-cell failure isolation, ledger-backed resume, and live progress.
``workers=1`` replays the legacy sequential drivers bit-identically.
"""

from repro.runner.job import (
    Job,
    JobGraph,
    JobResult,
    config_fingerprint,
    job_rng,
)
from repro.runner.scheduler import (
    GridProgress,
    Scheduler,
    resolve_experiment_workers,
)

__all__ = [
    "Job",
    "JobGraph",
    "JobResult",
    "config_fingerprint",
    "job_rng",
    "GridProgress",
    "Scheduler",
    "resolve_experiment_workers",
]
