"""Univariate feature scoring and selection.

Backs the paper's feature-filter / feature-dependency rules: columns are
ranked by association with the target (ANOVA F-score for classification,
absolute Pearson correlation for regression) and the top-k kept.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin, check_X_y

__all__ = ["f_classif", "correlation_scores", "SelectKBest"]


def f_classif(X: np.ndarray, y: Any) -> np.ndarray:
    """One-way ANOVA F-statistic of each feature against the class labels."""
    X, y = check_X_y(X, y)
    labels = sorted(set(y.tolist()), key=str)
    if len(labels) < 2:
        raise ValueError("need at least two classes")
    n, d = X.shape
    grand_mean = X.mean(axis=0)
    ss_between = np.zeros(d)
    ss_within = np.zeros(d)
    for label in labels:
        members = X[y == label]
        if members.shape[0] == 0:
            continue
        mean = members.mean(axis=0)
        ss_between += members.shape[0] * (mean - grand_mean) ** 2
        ss_within += ((members - mean) ** 2).sum(axis=0)
    df_between = len(labels) - 1
    df_within = max(1, n - len(labels))
    ms_between = ss_between / df_between
    ms_within = ss_within / df_within
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(ms_within > 0, ms_between / ms_within, 0.0)
    return scores


def correlation_scores(X: np.ndarray, y: Any) -> np.ndarray:
    """|Pearson r| of each feature against a numeric target."""
    X, y = check_X_y(X, y)
    y = y.astype(np.float64)
    y_centered = y - y.mean()
    y_norm = float(np.sqrt((y_centered**2).sum()))
    X_centered = X - X.mean(axis=0)
    x_norms = np.sqrt((X_centered**2).sum(axis=0))
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(
            (x_norms > 0) & (y_norm > 0),
            (X_centered * y_centered[:, None]).sum(axis=0) / (x_norms * y_norm),
            0.0,
        )
    return np.abs(r)


class SelectKBest(BaseEstimator, TransformerMixin):
    """Keep the k features with the highest univariate score."""

    def __init__(self, k: int = 10, task_type: str = "classification") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if task_type not in ("classification", "regression"):
            raise ValueError(f"unknown task_type {task_type!r}")
        self.k = k
        self.task_type = task_type

    def fit(self, X: Any, y: Any) -> "SelectKBest":
        if self.task_type == "classification":
            self.scores_ = f_classif(np.asarray(X, dtype=np.float64), y)
        else:
            self.scores_ = correlation_scores(np.asarray(X, dtype=np.float64), y)
        k = min(self.k, self.scores_.shape[0])
        # stable selection: ties broken by original column order
        order = np.argsort(-self.scores_, kind="mergesort")
        self.selected_ = np.sort(order[:k])
        return self

    def transform(self, X: Any) -> np.ndarray:
        self._check_fitted("selected_")
        X = np.asarray(X, dtype=np.float64)
        return X[:, self.selected_]

    def get_support(self) -> np.ndarray:
        """Boolean mask over input features."""
        self._check_fitted("selected_")
        mask = np.zeros(self.scores_.shape[0], dtype=bool)
        mask[self.selected_] = True
        return mask
