"""Flow-sensitive dataflow over the statement CFG.

Three classic analyses run per scope (module body and each function
body), all as worklist fixpoints over :mod:`repro.analysis.cfg` graphs:

- **Reaching definitions** (may, forward): which assignments of a name
  can reach each program point.  Def-use chains fall out directly.
- **Definite assignment** (must, forward): which names are bound on
  *every* path into a program point.  A use with no reaching definition
  is a *definite* use-before-def; a use that is reached by some
  definition but is not definitely assigned is a *branch-dependent*
  (maybe) use-before-def.
- **Provenance taint**: an abstract interpretation over the lattice

  ::

      UNKNOWN (⊥)  <  TRAIN, TEST  <  WHOLE (⊤ = TRAIN|TEST)

  seeded from ``run_pipeline``'s positional parameters (first = train
  split, second = test split) and from train/test-ish parameter names,
  then propagated through assignments (including tuple unpacking and
  ``train_test_split``-style splitters), column subscripts, augmented
  assignment, ``for``/``with`` bindings, and method calls (a call result
  joins its receiver's and arguments' taints).  Unlike the old
  name-substring heuristic, aliases (``full = concat(train, test)``,
  ``X = test``) carry their provenance wherever they flow.

Every ``.fit`` / ``.fit_transform`` / ``.partial_fit`` call site is
recorded with the taint of each argument so the leakage rule can flag
estimators fitted on test-tainted or whole-dataset-tainted data, and the
taint of every constant-key column subscript's base is recorded for the
catalog-grounded schema rules.

Name-based fallback: a name with no tracked binding still gets TRAIN /
TEST taint from the ``train``/``test`` naming convention, so everything
the old heuristic caught is still caught.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, CFGNode, build_cfg

__all__ = [
    "Taint",
    "FitCall",
    "UseBeforeDef",
    "ScopeFlow",
    "ModuleDataflow",
    "analyze_dataflow",
    "is_trainish",
    "is_testish",
]


class Taint(enum.IntFlag):
    """Dataset-provenance lattice; join is bitwise OR."""

    UNKNOWN = 0
    TRAIN = 1
    TEST = 2
    WHOLE = 3  # TRAIN | TEST

    def describe(self) -> str:
        return {0: "unknown", 1: "train", 2: "test", 3: "train+test"}[int(self)]


_FIT_METHODS = frozenset({"fit", "fit_transform", "partial_fit"})

_MODULE_DUNDERS = frozenset(
    {"__name__", "__file__", "__doc__", "__spec__", "__loader__", "__package__"}
)


def is_testish(name: str) -> bool:
    low = name.lower()
    return low == "test" or low.startswith("test_") or low.endswith("_test")


def is_trainish(name: str) -> bool:
    low = name.lower()
    return low == "train" or low.startswith("train_") or low.endswith("_train")


def _heuristic_taint(name: str) -> Taint:
    if is_trainish(name):
        return Taint.TRAIN
    if is_testish(name):
        return Taint.TEST
    return Taint.UNKNOWN


@dataclass(frozen=True)
class UseBeforeDef:
    """A load of a scope-local name before any (or every) binding."""

    name: str
    lineno: int
    col: int
    definite: bool  # True: unbound on every path; False: on some path
    scope: str


@dataclass(frozen=True)
class FitCall:
    """A ``.fit``-family call with the provenance of each argument."""

    method: str
    lineno: int
    col: int
    call: ast.Call = field(repr=False)
    receiver: Taint = Taint.UNKNOWN
    args: tuple[tuple[ast.expr, Taint], ...] = ()

    def worst(self) -> Taint:
        out = Taint.UNKNOWN
        for _, taint in self.args:
            out |= taint
        return out


@dataclass
class ScopeFlow:
    """Per-scope analysis results (module body or one function body)."""

    name: str
    cfg: CFG
    params: tuple[str, ...]
    bindings: frozenset[str]
    # node index -> set of (name, defining node index); entry-index pairs
    # stand for parameter bindings
    reach_in: dict[int, set[tuple[str, int]]] = field(default_factory=dict)
    # (name, use node index) -> defining node indices that reach the use
    def_use: dict[tuple[str, int], frozenset[int]] = field(default_factory=dict)
    taint_in: dict[int, dict[str, Taint]] = field(default_factory=dict)


@dataclass
class ModuleDataflow:
    """Whole-module results, aggregated across scopes."""

    scopes: list[ScopeFlow] = field(default_factory=list)
    fit_calls: list[FitCall] = field(default_factory=list)
    use_before_def: list[UseBeforeDef] = field(default_factory=list)
    # id(ast.Subscript) -> taint of the subscripted base expression
    subscript_taints: dict[int, Taint] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# per-node facts: bound names, deleted names, uses
# ---------------------------------------------------------------------------


def _target_names(target: ast.AST | None) -> list[str]:
    if target is None:
        return []
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []  # Subscript / Attribute stores bind nothing new


def _pattern_names(pattern: ast.pattern) -> list[str]:
    out: list[str] = []
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            out.append(node.name)
        elif isinstance(node, ast.MatchStar) and node.name:
            out.append(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest:
            out.append(node.rest)
    return out


class _NameUses(ast.NodeVisitor):
    """Collect Name loads belonging to the *current* scope.

    Nested function/class/lambda bodies are separate scopes and skipped;
    their decorators, defaults and annotations still evaluate here.
    Comprehensions evaluate their first iterable in the current scope —
    the rest runs in the comprehension scope and is skipped.  Walrus
    targets bind in the current scope and are reported separately.
    """

    def __init__(self) -> None:
        self.uses: list[ast.Name] = []
        self.walrus: list[str] = []

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.uses.append(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self.walrus.append(node.target.id)
        self.visit(node.value)

    def _visit_arg_exprs(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            self.visit(default)
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if arg.annotation is not None:
                self.visit(arg.annotation)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for dec in node.decorator_list:
            self.visit(dec)
        self._visit_arg_exprs(node.args)
        if node.returns is not None:
            self.visit(node.returns)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_arg_exprs(node.args)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for dec in node.decorator_list:
            self.visit(dec)
        for base in node.bases:
            self.visit(base)
        for kw in node.keywords:
            self.visit(kw.value)

    def _visit_comp(self, node: ast.AST) -> None:
        generators = getattr(node, "generators", [])
        if generators:
            self.visit(generators[0].iter)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def _collect_uses(node: CFGNode) -> tuple[list[ast.Name], list[str]]:
    visitor = _NameUses()
    payloads: list[ast.AST] = []
    if node.kind == "stmt" and node.stmt is not None:
        if isinstance(node.stmt, ast.Assign):
            visitor.visit(node.stmt.value)
            for target in node.stmt.targets:
                # subscript/attribute stores evaluate their base
                if not isinstance(target, (ast.Name, ast.Tuple, ast.List)):
                    visitor.visit(target)
        elif isinstance(node.stmt, ast.AugAssign):
            visitor.visit(node.stmt.value)
            if isinstance(node.stmt.target, ast.Name):
                visitor.uses.append(
                    ast.copy_location(
                        ast.Name(id=node.stmt.target.id, ctx=ast.Load()),
                        node.stmt.target,
                    )
                )
            else:
                visitor.visit(node.stmt.target)
        elif isinstance(node.stmt, ast.AnnAssign):
            if node.stmt.value is not None:
                visitor.visit(node.stmt.value)
            visitor.visit(node.stmt.annotation)
        else:
            visitor.visit(node.stmt)
        payloads = []
    else:
        if node.expr is not None:
            payloads.append(node.expr)
    for payload in payloads:
        visitor.visit(payload)
    return visitor.uses, visitor.walrus


def _node_binds(
    node: CFGNode, walrus: list[str] | None = None
) -> tuple[list[str], list[str]]:
    """(bound names, deleted names) for one CFG node.

    ``walrus`` takes the already-collected ``:=`` bindings when the
    caller ran :func:`_collect_uses` itself (so the facts pass visits
    each node's expressions once, not twice).
    """
    gens: list[str] = []
    dels: list[str] = []
    if node.kind == "stmt" and node.stmt is not None:
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                gens.extend(_target_names(target))
        elif isinstance(stmt, ast.AugAssign):
            gens.extend(_target_names(stmt.target))
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                gens.extend(_target_names(stmt.target))
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.asname:
                    gens.append(alias.asname)
                elif alias.name != "*":
                    gens.append(alias.name.split(".")[0])
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            gens.append(stmt.name)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                dels.extend(_target_names(target))
    elif node.kind in ("test", "withitem") and node.binds is not None:
        gens.extend(_target_names(node.binds))
    elif node.kind == "except" and node.handler is not None:
        if node.handler.name:
            gens.append(node.handler.name)
    elif node.kind == "case" and node.binds is not None:
        gens.extend(_pattern_names(node.binds))  # type: ignore[arg-type]
    if walrus is None:
        _, walrus = _collect_uses(node)
    gens.extend(walrus)
    return gens, dels


@dataclass(frozen=True)
class _NodeFacts:
    gens: tuple[str, ...]
    dels: tuple[str, ...]
    uses: tuple[ast.Name, ...]
    walrus: frozenset[str]


def _compute_facts(cfg: CFG) -> dict[int, _NodeFacts]:
    facts: dict[int, _NodeFacts] = {}
    for node in cfg:
        uses, walrus = _collect_uses(node)
        gens, dels = _node_binds(node, walrus=walrus)
        facts[node.index] = _NodeFacts(
            gens=tuple(gens),
            dels=tuple(dels),
            uses=tuple(uses),
            walrus=frozenset(walrus),
        )
    return facts


def _declared_nonlocal(body_cfg: CFG) -> set[str]:
    out: set[str] = set()
    for node in body_cfg:
        if node.kind == "stmt" and isinstance(
            node.stmt, (ast.Global, ast.Nonlocal)
        ):
            out.update(node.stmt.names)
    return out


# ---------------------------------------------------------------------------
# reaching definitions + definite assignment
# ---------------------------------------------------------------------------


def _reaching_definitions(
    cfg: CFG, params: tuple[str, ...], facts: dict[int, _NodeFacts]
) -> dict[int, set[tuple[str, int]]]:
    entry = cfg.entry.index
    out_sets: dict[int, set[tuple[str, int]]] = {
        n.index: set() for n in cfg
    }
    out_sets[entry] = {(p, entry) for p in params}
    in_sets: dict[int, set[tuple[str, int]]] = {n.index: set() for n in cfg}
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for idx in order:
            if idx == entry:
                continue
            node = cfg.nodes[idx]
            new_in: set[tuple[str, int]] = set()
            for p in node.preds:
                new_in |= out_sets[p]
            gens, dels = facts[idx].gens, facts[idx].dels
            killed = set(gens) | set(dels)
            new_out = {d for d in new_in if d[0] not in killed}
            new_out |= {(name, idx) for name in gens}
            if new_in != in_sets[idx] or new_out != out_sets[idx]:
                in_sets[idx] = new_in
                out_sets[idx] = new_out
                changed = True
    return in_sets


def _definite_assignment(
    cfg: CFG, params: tuple[str, ...], facts: dict[int, _NodeFacts]
) -> dict[int, set[str] | None]:
    """Must-analysis: names bound on every path into each node.

    ``None`` stands for TOP ("all names") on not-yet-visited nodes.
    """
    entry = cfg.entry.index
    bound_out: dict[int, set[str] | None] = {n.index: None for n in cfg}
    bound_in: dict[int, set[str] | None] = {n.index: None for n in cfg}
    bound_out[entry] = set(params)
    order = cfg.rpo()
    changed = True
    while changed:
        changed = False
        for idx in order:
            if idx == entry:
                continue
            node = cfg.nodes[idx]
            new_in: set[str] | None = None
            for p in node.preds:
                prev = bound_out[p]
                if prev is None:
                    continue
                new_in = set(prev) if new_in is None else (new_in & prev)
            if new_in is None:
                continue  # no processed predecessor yet
            gens, dels = facts[idx].gens, facts[idx].dels
            new_out = (new_in - set(dels)) | set(gens)
            if new_in != bound_in[idx] or new_out != bound_out[idx]:
                bound_in[idx] = new_in
                bound_out[idx] = new_out
                changed = True
    return bound_in


# ---------------------------------------------------------------------------
# taint abstract interpretation
# ---------------------------------------------------------------------------


def _splitter_name(func: ast.expr, import_aliases: dict[str, str]) -> bool:
    """Does this call target look like a train/test splitter?"""
    if isinstance(func, ast.Name):
        dotted = import_aliases.get(func.id, func.id)
        return dotted.split(".")[-1] == "train_test_split"
    if isinstance(func, ast.Attribute):
        return func.attr == "train_test_split"
    return False


class _TaintInterp:
    """One transfer-function evaluator; optionally records results."""

    def __init__(
        self,
        import_aliases: dict[str, str],
        record: ModuleDataflow | None = None,
    ) -> None:
        self.import_aliases = import_aliases
        self.record = record

    # -- expressions ----------------------------------------------------
    def eval(self, expr: ast.expr | None, env: dict[str, Taint]) -> Taint:
        if expr is None:
            return Taint.UNKNOWN
        if isinstance(expr, ast.Name):
            taint = env.get(expr.id, Taint.UNKNOWN)
            if taint is Taint.UNKNOWN:
                taint = _heuristic_taint(expr.id)
            return taint
        if isinstance(expr, ast.Constant):
            return Taint.UNKNOWN
        if isinstance(expr, ast.Subscript):
            base = self.eval(expr.value, env)
            self.eval(expr.slice, env)
            if self.record is not None:
                self.record.subscript_taints[id(expr)] = base
            return base
        if isinstance(expr, ast.Attribute):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Lambda):
            return Taint.UNKNOWN
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            taint = Taint.UNKNOWN
            for gen in expr.generators:
                taint |= self.eval(gen.iter, env)
            return taint
        # generic: join over child expressions
        taint = Taint.UNKNOWN
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taint |= self.eval(child, env)
            elif isinstance(child, ast.keyword):
                taint |= self.eval(child.value, env)
        return taint

    def _eval_call(self, call: ast.Call, env: dict[str, Taint]) -> Taint:
        receiver = Taint.UNKNOWN
        if isinstance(call.func, ast.Attribute):
            receiver = self.eval(call.func.value, env)
        arg_taints: list[tuple[ast.expr, Taint]] = []
        for arg in call.args:
            target = arg.value if isinstance(arg, ast.Starred) else arg
            arg_taints.append((target, self.eval(target, env)))
        for kw in call.keywords:
            arg_taints.append((kw.value, self.eval(kw.value, env)))
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FIT_METHODS
            and self.record is not None
        ):
            self.record.fit_calls.append(
                FitCall(
                    method=call.func.attr,
                    lineno=call.lineno,
                    col=call.col_offset,
                    call=call,
                    receiver=receiver,
                    args=tuple(arg_taints),
                )
            )
        result = receiver
        for _, taint in arg_taints:
            result |= taint
        return result

    # -- assignment helpers ---------------------------------------------
    def _bind_target(
        self, target: ast.expr, taint: Taint, env: dict[str, Taint]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taint, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint, env)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # weak update: train["col"] = f(test) makes train suspect
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                prior = env.get(base.id, _heuristic_taint(base.id))
                env[base.id] = prior | taint

    def _assign(
        self,
        targets: list[ast.expr],
        value: ast.expr,
        env: dict[str, Taint],
    ) -> None:
        value_taint = self.eval(value, env)
        for target in targets:
            if (
                isinstance(target, (ast.Tuple, ast.List))
                and isinstance(value, ast.Call)
                and _splitter_name(value.func, self.import_aliases)
            ):
                self._bind_split(target, value_taint, env)
            elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                value, (ast.Tuple, ast.List)
            ) and len(target.elts) == len(value.elts):
                for t_elt, v_elt in zip(target.elts, value.elts):
                    self._bind_target(t_elt, self.eval(v_elt, env), env)
            else:
                self._bind_target(target, value_taint, env)

    def _bind_split(
        self,
        target: ast.Tuple | ast.List,
        input_taint: Taint,
        env: dict[str, Taint],
    ) -> None:
        """``a, b[, c, d] = train_test_split(X[, y])`` provenance."""
        n = len(target.elts)
        if input_taint in (Taint.UNKNOWN, Taint.WHOLE) and n in (2, 4):
            pattern = [Taint.TRAIN, Taint.TEST] * (n // 2)
            if n == 4:
                pattern = [Taint.TRAIN, Taint.TEST, Taint.TRAIN, Taint.TEST]
            for elt, taint in zip(target.elts, pattern):
                self._bind_target(elt, taint, env)
        else:
            for elt in target.elts:
                self._bind_target(elt, input_taint, env)

    # -- node transfer --------------------------------------------------
    def transfer(self, node: CFGNode, env: dict[str, Taint]) -> dict[str, Taint]:
        env = dict(env)
        if node.kind == "stmt" and node.stmt is not None:
            stmt = node.stmt
            if isinstance(stmt, ast.Assign):
                self._assign(stmt.targets, stmt.value, env)
            elif isinstance(stmt, ast.AugAssign):
                taint = self.eval(stmt.value, env)
                if isinstance(stmt.target, ast.Name):
                    prior = env.get(
                        stmt.target.id, _heuristic_taint(stmt.target.id)
                    )
                    env[stmt.target.id] = prior | taint
                else:
                    self._bind_target(stmt.target, taint, env)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign([stmt.target], stmt.value, env)
            elif isinstance(stmt, ast.Delete):
                for name in _target_names_many(stmt.targets):
                    env.pop(name, None)
            elif isinstance(
                stmt,
                (
                    ast.Import,
                    ast.ImportFrom,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                gens, _ = _node_binds(node)
                for name in gens:
                    env[name] = Taint.UNKNOWN
            elif isinstance(stmt, ast.Expr):
                self.eval(stmt.value, env)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self.eval(stmt.value, env)
            elif isinstance(stmt, ast.Assert):
                self.eval(stmt.test, env)
            elif isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    self.eval(stmt.exc, env)
        elif node.kind == "test":
            taint = self.eval(node.expr, env)
            if node.binds is not None:  # for-loop head: target <- iter
                self._bind_target(node.binds, taint, env)  # type: ignore[arg-type]
        elif node.kind == "withitem":
            taint = self.eval(node.expr, env)
            if node.binds is not None:
                self._bind_target(node.binds, taint, env)  # type: ignore[arg-type]
        elif node.kind == "except":
            self.eval(node.expr, env)
            if node.handler is not None and node.handler.name:
                env[node.handler.name] = Taint.UNKNOWN
        elif node.kind == "case":
            self.eval(node.expr, env)
            if node.binds is not None:
                for name in _pattern_names(node.binds):  # type: ignore[arg-type]
                    env[name] = Taint.UNKNOWN
        return env


def _target_names_many(targets: list[ast.expr]) -> list[str]:
    out: list[str] = []
    for target in targets:
        out.extend(_target_names(target))
    return out


def _join_envs(envs: list[dict[str, Taint]]) -> dict[str, Taint]:
    out: dict[str, Taint] = {}
    for env in envs:
        for name, taint in env.items():
            out[name] = out.get(name, Taint.UNKNOWN) | taint
    return out


def _taint_fixpoint(
    cfg: CFG,
    seed: dict[str, Taint],
    import_aliases: dict[str, str],
) -> dict[int, dict[str, Taint]]:
    interp = _TaintInterp(import_aliases, record=None)
    entry = cfg.entry.index
    out_envs: dict[int, dict[str, Taint]] = {n.index: {} for n in cfg}
    in_envs: dict[int, dict[str, Taint]] = {n.index: {} for n in cfg}
    out_envs[entry] = dict(seed)
    order = cfg.rpo()
    changed = True
    iterations = 0
    max_iterations = max(8, 2 * len(cfg))
    while changed and iterations < max_iterations:
        changed = False
        iterations += 1
        for idx in order:
            if idx == entry:
                continue
            node = cfg.nodes[idx]
            new_in = _join_envs([out_envs[p] for p in node.preds])
            new_out = interp.transfer(node, new_in)
            if new_in != in_envs[idx] or new_out != out_envs[idx]:
                in_envs[idx] = new_in
                out_envs[idx] = new_out
                changed = True
    return in_envs


# ---------------------------------------------------------------------------
# scope orchestration
# ---------------------------------------------------------------------------


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _seed_taints(
    scope_node: ast.AST | None,
) -> dict[str, Taint]:
    """Entry taint environment for one scope."""
    if scope_node is None:
        return {}
    assert isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef))
    seed: dict[str, Taint] = {}
    positional = [
        a.arg for a in scope_node.args.posonlyargs + scope_node.args.args
    ]
    if scope_node.name == "run_pipeline" and len(positional) >= 2:
        # the pipeline contract: run_pipeline(train, test) — positional
        # order defines provenance even when the params are renamed
        seed[positional[0]] = Taint.TRAIN
        seed[positional[1]] = Taint.TEST
    for name in _param_names(scope_node):
        if name not in seed:
            taint = _heuristic_taint(name)
            if taint is not Taint.UNKNOWN:
                seed[name] = taint
    return seed


def _scope_use_before_def(
    flow: ScopeFlow,
    cfg: CFG,
    reach_in: dict[int, set[tuple[str, int]]],
    bound_in: dict[int, set[str] | None],
    candidates: frozenset[str],
    facts: dict[int, _NodeFacts],
    result: ModuleDataflow,
) -> None:
    reachable = cfg.reachable()
    for node in cfg:
        if node.index not in reachable:
            continue
        uses = facts[node.index].uses
        walrus_set = facts[node.index].walrus
        seen_here: set[str] = set()
        for use in uses:
            name = use.id
            if name not in candidates or name in walrus_set:
                continue
            if name in seen_here:
                continue
            reaching = {
                d for (n, d) in reach_in.get(node.index, set()) if n == name
            }
            flow.def_use[(name, node.index)] = frozenset(reaching)
            if not reaching:
                seen_here.add(name)
                result.use_before_def.append(
                    UseBeforeDef(
                        name=name,
                        lineno=use.lineno,
                        col=use.col_offset,
                        definite=True,
                        scope=flow.name,
                    )
                )
                continue
            bound = bound_in.get(node.index)
            if bound is not None and name not in bound:
                seen_here.add(name)
                result.use_before_def.append(
                    UseBeforeDef(
                        name=name,
                        lineno=use.lineno,
                        col=use.col_offset,
                        definite=False,
                        scope=flow.name,
                    )
                )


def analyze_dataflow(
    tree: ast.Module,
    import_aliases: dict[str, str] | None = None,
) -> ModuleDataflow:
    """Run all per-scope analyses over a parsed module."""
    aliases = import_aliases or {}
    result = ModuleDataflow()
    scopes: list[tuple[ast.AST | None, CFG]] = [
        (None, build_cfg(tree.body, "<module>"))
    ]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node, build_cfg(node.body, node.name)))

    for scope_node, cfg in scopes:
        if scope_node is None:
            params: tuple[str, ...] = ()
        else:
            params = _param_names(scope_node)  # type: ignore[arg-type]

        facts = _compute_facts(cfg)

        # names bound anywhere in this scope = use-before-def candidates
        all_gens: set[str] = set()
        nonlocals = _declared_nonlocal(cfg)
        for fact in facts.values():
            all_gens.update(fact.gens)
        candidates = frozenset(
            (all_gens | set(params)) - nonlocals - _MODULE_DUNDERS
        )

        reach_in = _reaching_definitions(cfg, params, facts)
        bound_in = _definite_assignment(cfg, params, facts)
        seed = _seed_taints(scope_node)
        taint_in = _taint_fixpoint(cfg, seed, aliases)

        flow = ScopeFlow(
            name=cfg.name,
            cfg=cfg,
            params=params,
            bindings=candidates,
            reach_in=reach_in,
            taint_in=taint_in,
        )
        _scope_use_before_def(
            flow, cfg, reach_in, bound_in, candidates, facts, result
        )

        # final recording pass with the fixpoint IN environments
        recorder = _TaintInterp(aliases, record=result)
        reachable = cfg.reachable()
        for node in cfg:
            if node.index in reachable and node.kind not in ("entry", "exit"):
                recorder.transfer(node, taint_in.get(node.index, {}))

        result.scopes.append(flow)
    return result
