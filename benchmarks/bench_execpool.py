"""Benchmarks for the process-isolated execution pool.

The headline number is warm pool-mode overhead versus in-process
execution of the *same* generated pipeline: one pickle round-trip of the
job tables over a pipe plus frame bookkeeping.  CI's bench job gates on
the ratio (``benchmarks/make_bench_report.py`` fails the build when a
warm pool execution costs more than 2x inproc on the clean pipeline).

Also measured, informationally: the cold-spawn cost of a worker (paid
once per ``max_jobs_per_worker`` jobs) and the price of containing a
worker-killing pipeline (kill + classify + respawn on the next job).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_result
from repro.catalog.profiler import profile_table
from repro.execpool import PoolConfig
from repro.execpool.adversarial import ADVERSARIAL_PIPELINES, adversarial_tables
from repro.execpool.pool import ExecPool
from repro.generation.executor import execute_pipeline_code
from repro.llm.codegen import generate_pipeline_code
from repro.llm.profiles import get_profile
from repro.prompt.builder import build_prompt_plan
from repro.table.table import Table


@pytest.fixture(scope="module")
def workload():
    """A realistic generated pipeline + its train/test split."""
    import numpy as np

    rng = np.random.default_rng(7)
    data = {f"v{i}": rng.normal(size=800) for i in range(12)}
    data["cat"] = rng.choice(["a", "b", "c", "d"], size=800).tolist()
    data["y"] = np.where(rng.normal(size=800) > 0, "p", "n").tolist()
    table = Table.from_dict(data, name="execpool-bench")
    catalog = profile_table(table, target="y", task_type="binary")
    plan = build_prompt_plan(catalog, beta=1)
    payload = {
        "task": "pipeline",
        "dataset": catalog.info.to_dict(),
        "schema": plan._full_schema,
        "rules": [r.to_payload() for r in plan.rules],
    }
    code = generate_pipeline_code(payload, get_profile("gpt-4o"))
    train, test = table.take(range(560)), table.take(range(560, 800))
    return code, train, test


def test_execpool_inproc_clean(benchmark, workload):
    code, train, test = workload
    result = benchmark.pedantic(
        lambda: execute_pipeline_code(
            code, train, test, timeout_seconds=60.0, mode="inproc"
        ),
        rounds=5, iterations=1,
    )
    assert result.success


def test_execpool_pool_clean_warm(benchmark, workload):
    code, train, test = workload
    with ExecPool(PoolConfig(size=1)) as pool:
        # pay the spawn + preload outside the measured region
        assert pool.execute(code, train, test, timeout_seconds=60.0).success
        result = benchmark.pedantic(
            lambda: pool.execute(code, train, test, timeout_seconds=60.0),
            rounds=5, iterations=1,
        )
    assert result.success
    assert pool.stats["spawns"] == 1  # every measured round reused the worker


def test_execpool_cold_spawn(benchmark, workload):
    """Worker spawn + numpy/repro.ml preload; amortized over a worker's life."""
    code, train, test = workload

    def spawn_and_run():
        with ExecPool(PoolConfig(size=1)) as pool:
            return pool.execute(code, train, test, timeout_seconds=60.0)

    result = benchmark.pedantic(spawn_and_run, rounds=3, iterations=1)
    assert result.success


def test_execpool_containment_cost(benchmark):
    """Contain an ``os._exit`` pipeline and restore service: kill +
    classify + respawn-on-next-job, measured end to end."""
    train, test = adversarial_tables(seed=0)
    hostile, _ = ADVERSARIAL_PIPELINES["os_exit"]

    with ExecPool(PoolConfig(size=1)) as pool:

        def contain():
            result = pool.execute(hostile, train, test, timeout_seconds=30.0)
            assert not result.success
            return result

        result = benchmark.pedantic(contain, rounds=3, iterations=1)
    assert result.error is not None
    assert result.error.details.get("worker_exit") == 7


def test_execpool_overhead_summary(workload):
    """Persist a paper-style summary of the measured modes (no gate here;
    the CI gate reads the pytest-benchmark JSON in make_bench_report)."""
    import time

    code, train, test = workload
    t0 = time.perf_counter()
    inproc = execute_pipeline_code(
        code, train, test, timeout_seconds=60.0, mode="inproc"
    )
    inproc_s = time.perf_counter() - t0
    with ExecPool(PoolConfig(size=1)) as pool:
        pool.execute(code, train, test, timeout_seconds=60.0)  # warm
        t0 = time.perf_counter()
        pooled = pool.execute(code, train, test, timeout_seconds=60.0)
        pool_s = time.perf_counter() - t0
    assert inproc.success and pooled.success
    assert pooled.metrics == inproc.metrics
    ratio = pool_s / max(inproc_s, 1e-9)
    save_result(
        "execpool_overhead",
        "Execution pool overhead (clean generated pipeline)\n"
        f"  inproc:     {inproc_s * 1000:8.1f} ms\n"
        f"  pool(warm): {pool_s * 1000:8.1f} ms\n"
        f"  ratio:      {ratio:8.2f}x  (CI gate: <= 2x)",
    )
