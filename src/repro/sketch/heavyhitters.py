"""SpaceSaving-style heavy-hitters sketch: top values and value counts.

Exact mode keeps one counter per distinct value while the stream stays
under ``exact_threshold`` distinct values — the common case for
categorical columns, where the batch profiler stores *all* class counts.
Past the threshold it degrades to a bounded table of ``capacity``
counters with a running ``floor``: the invariant is that any value *not*
in the table has true count at most ``floor``, so an untracked value is
(re-)inserted with the overestimate ``floor + 1`` and error ``floor``.
Pruning is batched (the table grows to ``2 * capacity`` before being cut
back, the amortized-O(1) construction used by production frequent-items
sketches), and every cut raises ``floor`` to the largest dropped count,
preserving the invariant.

Per entry the sketch keeps ``(count, error)`` where ``count`` is an
overestimate of the true frequency and ``count - error`` a guaranteed
lower bound.  Merging sums counts/errors over the union of tables
(crediting each side's ``floor`` for values it does not track — the
mergeable-summaries construction), then prunes.  Any value with true
frequency comfortably above ``n / capacity`` survives every merge
grouping; while no summary in the merge tree ever saturated, all counts
are exact (``error == 0``, ``floor == 0``) and independent of chunk
order.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.sketch.base import SketchConfig, encode_value

__all__ = ["SpaceSavingSketch"]

_FAR_ROW = 1 << 62


class SpaceSavingSketch:
    """Mergeable top-k / value-count summary over one stream of values."""

    __slots__ = ("capacity", "exact_threshold", "n", "floor", "_entries")

    def __init__(self, capacity: int = 256, exact_threshold: int | None = None) -> None:
        if capacity < 1:
            raise ValueError("SpaceSaving needs capacity >= 1")
        self.capacity = capacity
        self.exact_threshold = max(
            exact_threshold if exact_threshold is not None else capacity,
            2 * capacity,
        )
        self.n = 0  # total values folded in
        self.floor = 0  # upper bound on any untracked value's true count
        # encoding -> [count, error, first_row, value]
        self._entries: dict[bytes, list[Any]] = {}

    @classmethod
    def from_config(cls, config: SketchConfig) -> "SpaceSavingSketch":
        return cls(capacity=config.heavy_k, exact_threshold=config.exact_threshold)

    @property
    def is_exact(self) -> bool:
        """True while every tracked count is the exact frequency."""
        return self.floor == 0

    # -- updates ---------------------------------------------------------------

    def update(self, values: Iterable[Any], rows: Iterable[int] | None = None) -> None:
        if rows is None:
            rows = range(_FAR_ROW)
        entries = self._entries
        bound = self.exact_threshold if self.floor == 0 else 2 * self.capacity
        for value, row in zip(values, rows):
            self.n += 1
            encoded = encode_value(value)
            entry = entries.get(encoded)
            if entry is not None:
                entry[0] += 1
                if row < entry[2]:
                    entry[2] = row
            else:
                entries[encoded] = [self.floor + 1, self.floor, row, value]
                if len(entries) > bound:
                    self._prune()
                    bound = 2 * self.capacity  # saturated from here on

    def _prune(self) -> None:
        """Cut back to ``capacity`` counters; the largest dropped count
        becomes the new ``floor`` (any dropped value's true count is at
        most its overestimating counter)."""
        if len(self._entries) <= self.capacity:
            return
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1][0], kv[1][2], kv[0])
        )
        dropped_max = max(entry[0] for _, entry in ranked[self.capacity:])
        self.floor = max(self.floor, dropped_max)
        self._entries = dict(ranked[: self.capacity])

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "SpaceSavingSketch") -> "SpaceSavingSketch":
        if (self.capacity, self.exact_threshold) != (
            other.capacity,
            other.exact_threshold,
        ):
            raise ValueError("cannot merge SpaceSaving sketches with different configs")
        self_floor = self.floor
        other_floor = other.floor
        merged: dict[bytes, list[Any]] = {}
        for encoded in self._entries.keys() | other._entries.keys():
            a = self._entries.get(encoded)
            b = other._entries.get(encoded)
            count = (a[0] if a else self_floor) + (b[0] if b else other_floor)
            error = (a[1] if a else self_floor) + (b[1] if b else other_floor)
            first_row = min(a[2] if a else _FAR_ROW, b[2] if b else _FAR_ROW)
            value = a[3] if a else b[3]  # type: ignore[index]
            merged[encoded] = [count, error, first_row, value]
        self._entries = merged
        self.n += other.n
        self.floor = self_floor + other_floor
        bound = self.exact_threshold if self.floor == 0 else 2 * self.capacity
        if len(self._entries) > bound:
            self._prune()
        return self

    def copy(self) -> "SpaceSavingSketch":
        clone = SpaceSavingSketch(self.capacity, self.exact_threshold)
        clone.n = self.n
        clone.floor = self.floor
        clone._entries = {k: list(v) for k, v in self._entries.items()}
        return clone

    # -- queries ---------------------------------------------------------------

    def counts(self) -> list[tuple[Any, int, int]]:
        """``(value, count, error)`` sorted by count desc (ties: first seen)."""
        return [
            (entry[3], entry[0], entry[1])
            for _, entry in sorted(
                self._entries.items(), key=lambda kv: (-kv[1][0], kv[1][2], kv[0])
            )
        ]

    def count_of(self, value: Any) -> tuple[int, int] | None:
        """``(count, error)`` for one value, ``None`` when untracked."""
        entry = self._entries.get(encode_value(value))
        if entry is None:
            return None
        return entry[0], entry[1]

    def canonical_state(self) -> tuple:
        return (
            self.n,
            self.floor,
            tuple(sorted(
                (encoded, entry[0], entry[1], entry[2])
                for encoded, entry in self._entries.items()
            )),
        )

    def __repr__(self) -> str:
        return (
            f"SpaceSavingSketch(n={self.n}, tracked={len(self._entries)}, "
            f"floor={self.floor})"
        )
