"""Tests for univariate feature selection."""

import numpy as np
import pytest

from repro.ml.feature_selection import SelectKBest, correlation_scores, f_classif


@pytest.fixture(scope="module")
def clf_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 5))
    y = np.where(X[:, 2] > 0, "a", "b").astype(object)
    return X, y


@pytest.fixture(scope="module")
def reg_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 4))
    y = 4 * X[:, 1] + 0.2 * rng.normal(size=300)
    return X, y


class TestScores:
    def test_f_classif_finds_informative_feature(self, clf_data):
        X, y = clf_data
        scores = f_classif(X, y)
        assert scores.argmax() == 2
        assert (scores >= 0).all()

    def test_f_classif_single_class_rejected(self):
        with pytest.raises(ValueError):
            f_classif(np.zeros((5, 2)), np.array(["a"] * 5, dtype=object))

    def test_correlation_finds_informative_feature(self, reg_data):
        X, y = reg_data
        scores = correlation_scores(X, y)
        assert scores.argmax() == 1
        assert (scores <= 1.0 + 1e-9).all()

    def test_constant_feature_scores_zero(self):
        X = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        y = np.arange(50, dtype=float)
        scores = correlation_scores(X, y)
        assert scores[0] == 0.0
        assert scores[1] == pytest.approx(1.0)


class TestSelectKBest:
    def test_classification_selection(self, clf_data):
        X, y = clf_data
        selector = SelectKBest(k=1, task_type="classification").fit(X, y)
        assert selector.selected_.tolist() == [2]
        assert selector.transform(X).shape == (300, 1)

    def test_regression_selection(self, reg_data):
        X, y = reg_data
        selector = SelectKBest(k=2, task_type="regression").fit(X, y)
        assert 1 in selector.selected_

    def test_k_capped_at_width(self, clf_data):
        X, y = clf_data
        selector = SelectKBest(k=99, task_type="classification").fit(X, y)
        assert selector.transform(X).shape == X.shape

    def test_support_mask(self, clf_data):
        X, y = clf_data
        selector = SelectKBest(k=2, task_type="classification").fit(X, y)
        mask = selector.get_support()
        assert mask.sum() == 2
        assert mask[2]

    def test_selection_preserves_column_order(self, clf_data):
        X, y = clf_data
        selector = SelectKBest(k=3, task_type="classification").fit(X, y)
        assert selector.selected_.tolist() == sorted(selector.selected_.tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectKBest(k=0)
        with pytest.raises(ValueError):
            SelectKBest(task_type="clustering")
