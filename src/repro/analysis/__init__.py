"""Static analysis for generated pipelines and for the repro codebase itself.

The package implements the pre-execution validation pass of the repair
loop (paper Section 4.2: syntactic errors are cheap to find, runtime
errors are expensive) as a multi-pass AST analyzer:

- :mod:`repro.analysis.scopes` — a proper scope-chain name resolver
  (module/function/class/comprehension/lambda scopes, ``global``/
  ``nonlocal``, walrus, ``AnnAssign``, ``match`` captures) replacing the
  old flat ``ast.walk`` name collection;
- :mod:`repro.analysis.cfg` — statement-level control-flow graphs
  (branches, loops, ``try``/``except``/``finally``, ``with``,
  ``match``, ``break``/``continue``/``return`` edges);
- :mod:`repro.analysis.dataflow` — flow-sensitive analyses over the
  CFG: reaching definitions and def-use chains, definite assignment
  (path-sensitive use-before-def), and the train/test/whole-dataset
  provenance-taint lattice behind the alias-aware leakage rule;
- :mod:`repro.analysis.rules` — the pluggable rule engine
  (:class:`Rule` protocol, :class:`Finding`, per-rule enable/severity
  :class:`RuleConfig`);
- :mod:`repro.analysis.pipeline_rules` — ML-pipeline rules (data
  leakage, use-before-def, banned APIs, nondeterminism, known-signature
  misuse);
- :mod:`repro.analysis.schema_rules` — catalog-grounded checks: when a
  :class:`~repro.catalog.catalog.DataCatalog` is supplied, column
  references, dtypes and the target column are verified against the
  real dataset schema (with did-you-mean suggestions);
- :mod:`repro.analysis.fixes` — the deterministic, LLM-free auto-fix
  tier the repair loop tries before spending a model call (also
  ``repro lint --fix``);
- :mod:`repro.analysis.repo_rules` — the self-lint profile run over
  ``src/repro``, ``tests`` and ``benchmarks`` in CI (unseeded
  randomness, wall-clock reads, lock re-entry, swallowed
  ``BaseException``, unbounded blocking waits);
- :mod:`repro.analysis.engine` — profiles, :func:`analyze_source`,
  and the parallel :func:`lint_paths` driver behind ``repro lint``.

Error-severity findings map onto the 23-type
:class:`~repro.generation.errors.PipelineError` taxonomy so the repair
loop consumes them exactly like execution failures — without paying
``execute_pipeline_code``.
"""

from repro.analysis.cfg import CFG, CFGNode, build_cfg, scope_cfgs
from repro.analysis.dataflow import (
    FitCall,
    ModuleDataflow,
    ScopeFlow,
    Taint,
    UseBeforeDef,
    analyze_dataflow,
)
from repro.analysis.engine import (
    PROFILES,
    AnalysisReport,
    FileReport,
    analyze_file,
    analyze_source,
    lint_paths,
    render_findings,
)
from repro.analysis.fixes import (
    AppliedFix,
    FixResult,
    FixTarget,
    autofix,
    fix_error,
    fix_findings,
)
from repro.analysis.rules import Finding, Rule, RuleConfig, Severity
from repro.analysis.scopes import Scope, ScopeInfo, build_scopes

__all__ = [
    "AnalysisReport",
    "AppliedFix",
    "CFG",
    "CFGNode",
    "FileReport",
    "Finding",
    "FitCall",
    "FixResult",
    "FixTarget",
    "ModuleDataflow",
    "PROFILES",
    "Rule",
    "RuleConfig",
    "Scope",
    "ScopeFlow",
    "ScopeInfo",
    "Severity",
    "Taint",
    "UseBeforeDef",
    "analyze_dataflow",
    "analyze_file",
    "analyze_source",
    "autofix",
    "build_cfg",
    "build_scopes",
    "fix_error",
    "fix_findings",
    "lint_paths",
    "render_findings",
    "scope_cfgs",
]
