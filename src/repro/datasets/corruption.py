"""Data-corruption injection for the robustness experiments (Figure 14).

The paper's end-to-end experiments inject outliers and missing values at
controlled ratios (0-5%) into Utility (regression) and Volkert
(classification) and measure how each system's prediction quality
degrades.  These injectors operate cell-wise on numeric feature columns,
never touching the target.
"""

from __future__ import annotations

import numpy as np

from repro.table.column import Column, ColumnKind
from repro.table.table import Table

__all__ = ["inject_outliers", "inject_missing_values", "inject_mixed_errors"]


def _numeric_feature_columns(table: Table, target: str) -> list[str]:
    return [
        c.name for c in table
        if c.kind is ColumnKind.NUMERIC and c.name != target
    ]


def inject_outliers(
    table: Table,
    target: str,
    ratio: float,
    magnitude: float = 8.0,
    seed: int = 0,
) -> Table:
    """Replace ``ratio`` of numeric cells with extreme values.

    Outliers are placed at ``median ± magnitude * (IQR + 1)`` — far outside
    the inlier range but finite, matching corruption benchmarks.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    if ratio == 0.0:
        return table
    rng = np.random.default_rng(seed)
    out = table.copy()
    for name in _numeric_feature_columns(table, target):
        column = out[name]
        data = column.data.copy()
        present = np.flatnonzero(~column.missing)
        if present.size == 0:
            continue
        n_hits = int(round(ratio * present.size))
        if n_hits == 0:
            continue
        hits = rng.choice(present, size=n_hits, replace=False)
        values = data[~column.missing]
        median = float(np.median(values))
        iqr = float(np.percentile(values, 75) - np.percentile(values, 25))
        span = magnitude * (iqr + 1.0)
        signs = rng.choice([-1.0, 1.0], size=n_hits)
        data[hits] = median + signs * span * rng.uniform(1.0, 2.0, size=n_hits)
        out.set_column(Column.from_numpy(name, data, column.missing.copy(), column.kind))
    return out


def inject_missing_values(
    table: Table,
    target: str,
    ratio: float,
    seed: int = 0,
) -> Table:
    """Blank out ``ratio`` of feature cells (all feature columns)."""
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    if ratio == 0.0:
        return table
    rng = np.random.default_rng(seed)
    out = table.copy()
    for column in table:
        if column.name == target:
            continue
        present = np.flatnonzero(~column.missing)
        n_hits = int(round(ratio * present.size))
        if n_hits == 0:
            continue
        hits = rng.choice(present, size=n_hits, replace=False)
        if column.kind is ColumnKind.NUMERIC:
            data = column.data.copy()
            missing = column.missing.copy()
            missing[hits] = True
            data[hits] = np.nan
            out.set_column(
                Column.from_numpy(column.name, data, missing, column.kind)
            )
        else:
            # dictionary columns: blanking a cell is just code -> -1
            codes = column.codes.copy()
            codes[hits] = -1
            out.set_column(
                Column._from_dict_storage(
                    column.name, column.kind, column.pool, codes
                )
            )
    return out


def inject_mixed_errors(
    table: Table,
    target: str,
    ratio: float,
    seed: int = 0,
) -> Table:
    """Half outliers, half missing values (Figure 14(c)/(f))."""
    half = ratio / 2.0
    out = inject_outliers(table, target, half, seed=seed)
    return inject_missing_values(out, target, half, seed=seed + 1)
