"""Mergeable-summary sketches behind the streaming data catalog.

Every sketch follows one contract: ``update(...)`` folds a batch of
values, ``merge(other)`` combines summaries of disjoint row ranges
(associative, order-invariant up to documented floating-point folds),
and an *exact mode* below a configurable threshold makes small inputs
round-trip without approximation — the streaming profiler uses it to
reproduce the batch catalog bit-for-bit on small tables.
"""

from repro.sketch.accumulators import (
    BOOLEAN_DOMAIN,
    FingerprintAccumulator,
    FirstKEvidence,
    KindFlags,
    TokenStats,
)
from repro.sketch.base import (
    SketchConfig,
    encode_value,
    hash64,
    priority_for_floats,
    priority_for_tokens,
    seed_material,
)
from repro.sketch.column import ColumnSketch, ColumnSketchResult
from repro.sketch.heavyhitters import SpaceSavingSketch
from repro.sketch.kmv import KMVSketch
from repro.sketch.moments import MomentsSketch
from repro.sketch.pairs import PairSketch
from repro.sketch.reservoir import ReservoirSketch

__all__ = [
    "BOOLEAN_DOMAIN",
    "ColumnSketch",
    "ColumnSketchResult",
    "FingerprintAccumulator",
    "FirstKEvidence",
    "KMVSketch",
    "KindFlags",
    "MomentsSketch",
    "PairSketch",
    "ReservoirSketch",
    "SketchConfig",
    "SpaceSavingSketch",
    "TokenStats",
    "encode_value",
    "hash64",
    "priority_for_floats",
    "priority_for_tokens",
    "seed_material",
]
