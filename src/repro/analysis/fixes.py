"""Deterministic, LLM-free fixes for mechanical finding classes.

The repair loop's cheapest tier: when the static analyzer attributes an
error to a *mechanical* cause — a known library symbol whose import was
dropped, a markdown fence around the code, one mis-indented line, a
banned environment read with an obvious constant rewrite — the fix is a
pure function of the source and needs no model call.  The generator
tries this tier before the knowledge base and the LLM; ``repro lint
--fix`` exposes the same rewrites for files on disk.

The contract (pinned by property tests):

- every fix's output **parses** — a fixer whose rewrite does not parse
  is discarded, never returned;
- fixing is **idempotent** — once a finding class is repaired the fixer
  finds nothing left to do, so ``fix(fix(x)) == fix(x)``;
- clean code is **never changed** — fixers only run against reported
  findings/errors, and :func:`autofix` re-analyzes after every rewrite.

Fixers are intentionally line/AST surgery, not general program repair:
anything that needs judgement stays with the LLM tier.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.analysis.rules import Finding, RuleConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.catalog import DataCatalog
    from repro.generation.errors import PipelineError

__all__ = [
    "AppliedFix",
    "FixResult",
    "FixTarget",
    "autofix",
    "fix_error",
    "fix_findings",
]


@dataclass(frozen=True)
class FixTarget:
    """What a fixer is asked to repair (finding- or error-shaped)."""

    error_type: str
    message: str = ""
    line: int | None = None
    rule_id: str | None = None


@dataclass(frozen=True)
class AppliedFix:
    """One rewrite that was applied and survived the parse check."""

    fixer_id: str
    error_type: str
    description: str


@dataclass
class FixResult:
    """Output of one fixing pass."""

    code: str
    applied: tuple[AppliedFix, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def _parses(code: str) -> bool:
    try:
        ast.parse(code)
    except SyntaxError:
        return False
    return True


# ---------------------------------------------------------------------------
# individual fixers: (code, target) -> rewritten code | None
# ---------------------------------------------------------------------------

#: where each known symbol comes from when it lives outside ``repro.ml``
_SPECIAL_IMPORTS = {
    "np": "import numpy as np",
    "numpy": "import numpy",
    "scipy": "import scipy",
    "networkx": "import networkx",
    "Table": "from repro.table.table import Table",
    "Column": "from repro.table.table import Column",
    "read_csv": "from repro.table.io_csv import read_csv",
    "write_csv": "from repro.table.io_csv import write_csv",
    "drop_missing_rows": "from repro.table.ops import drop_missing_rows",
    "gaussian_augment": "from repro.ml.augment import gaussian_augment",
    "oversample_minority": "from repro.ml.augment import oversample_minority",
}


def _import_line_for(symbol: str) -> str | None:
    if symbol in _SPECIAL_IMPORTS:
        return _SPECIAL_IMPORTS[symbol]
    import repro.ml as _ml

    if symbol in getattr(_ml, "__all__", ()) or hasattr(_ml, symbol):
        return f"from repro.ml import {symbol}"
    return None


def _insert_after_imports(code: str, new_lines: list[str]) -> str:
    """Insert lines after the last top-level import (or the docstring)."""
    tree = ast.parse(code)
    insert_at = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            insert_at = (node.end_lineno or node.lineno)
        elif (
            insert_at == 0
            and isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            insert_at = (node.end_lineno or node.lineno)
    lines = code.split("\n")
    return "\n".join(lines[:insert_at] + new_lines + lines[insert_at:])


def _fix_missing_imports(code: str, target: FixTarget) -> str | None:
    """Insert imports for *every* known-but-unbound library symbol."""
    from repro.analysis.pipeline_rules import KNOWN_LIBRARY_SYMBOLS
    from repro.analysis.scopes import build_scopes

    try:
        tree = ast.parse(code)
    except SyntaxError:
        return None
    missing: list[str] = []
    for name, _ in build_scopes(tree).undefined_uses():
        if name in KNOWN_LIBRARY_SYMBOLS and name not in missing:
            missing.append(name)
    new_lines = []
    for name in sorted(missing):
        line = _import_line_for(name)
        if line is not None and line not in new_lines:
            new_lines.append(line)
    if not new_lines:
        return None
    return _insert_after_imports(code, new_lines)


def _fix_markdown_fence(code: str, target: FixTarget) -> str | None:
    lines = code.split("\n")
    kept = [ln for ln in lines if not ln.strip().startswith("```")]
    if len(kept) == len(lines):
        return None
    return "\n".join(kept)


def _looks_like_prose(line: str) -> bool:
    words = line.replace(":", "").split()
    return len(words) >= 4 and all(w.isalpha() for w in words[:4])


def _fix_stray_prose(code: str, target: FixTarget) -> str | None:
    lines = code.split("\n")
    candidates: list[int] = []
    if target.line is not None and 1 <= target.line <= len(lines):
        candidates.append(target.line - 1)
    candidates.extend(range(len(lines)))
    for idx in candidates:
        if _looks_like_prose(lines[idx]) and not lines[idx].startswith(" "):
            dropped = lines[:idx] + lines[idx + 1:]
            return "\n".join(dropped)
    return None


def _fix_indentation(code: str, target: FixTarget) -> str | None:
    if target.line is None:
        return None
    lines = code.split("\n")
    idx = target.line - 1
    if not 0 <= idx < len(lines) or not lines[idx].strip():
        return None
    stripped = lines[idx].lstrip()
    prev_indent = 0
    for back in range(idx - 1, -1, -1):
        if lines[back].strip():
            prev_indent = len(lines[back]) - len(lines[back].lstrip())
            if lines[back].rstrip().endswith(":"):
                prev_indent += 4
            break
    for candidate in (prev_indent, prev_indent + 4, max(0, prev_indent - 4)):
        attempt = list(lines)
        attempt[idx] = " " * candidate + stripped
        fixed = "\n".join(attempt)
        if fixed != code and _parses(fixed):
            return fixed
    return None


_OPENERS = {"(": ")", "[": "]", "{": "}"}


def _unclosed_brackets(code: str) -> list[tuple[str, int]]:
    """(closer, line index) stack of brackets left open, string-aware."""
    stack: list[tuple[str, int]] = []
    in_string: str | None = None
    i = 0
    line_no = 0
    while i < len(code):
        ch = code[i]
        if ch == "\n":
            line_no += 1
        if in_string is not None:
            if code.startswith(in_string, i):
                i += len(in_string)
                in_string = None
                continue
            if ch == "\\":
                i += 2
                continue
            i += 1
            continue
        if code.startswith(('"""', "'''"), i):
            in_string = code[i:i + 3]
            i += 3
            continue
        if ch in "\"'":
            in_string = ch
        elif ch == "#":
            while i < len(code) and code[i] != "\n":
                i += 1
            continue
        elif ch in _OPENERS:
            stack.append((_OPENERS[ch], line_no))
        elif ch in _OPENERS.values():
            if stack and stack[-1][0] == ch:
                stack.pop()
        i += 1
    return stack


def _fix_unclosed_bracket(code: str, target: FixTarget) -> str | None:
    stack = _unclosed_brackets(code)
    if not stack:
        return None
    lines = code.split("\n")
    # close innermost-first at the line the outermost opener started on
    closers = "".join(closer for closer, _ in reversed(stack))
    open_line = stack[0][1]
    if 0 <= open_line < len(lines):
        attempt = list(lines)
        attempt[open_line] = attempt[open_line].rstrip() + closers
        fixed = "\n".join(attempt)
        if _parses(fixed):
            return fixed
    fixed = code.rstrip() + closers + "\n"
    return fixed if _parses(fixed) else None


_ENV_GET_RE = re.compile(
    r"os\.(?:environ\.get|getenv)\(\s*(?P<key>[^,()]+?)"
    r"(?:\s*,\s*(?P<default>[^()]+?))?\s*\)"
)
_ENV_ITEM_RE = re.compile(r"os\.environ\[[^\]]*\]")


def _fix_env_access(code: str, target: FixTarget) -> str | None:
    if target.line is None:
        return None
    lines = code.split("\n")
    idx = target.line - 1
    if not 0 <= idx < len(lines):
        return None
    line = lines[idx]

    def replace_get(match: re.Match[str]) -> str:
        default = match.group("default")
        return default.strip() if default else '""'

    new_line = _ENV_GET_RE.sub(replace_get, line)
    new_line = _ENV_ITEM_RE.sub('""', new_line)
    if new_line == line:
        return None
    attempt = list(lines)
    if new_line.strip() in ('""', ""):
        del attempt[idx]  # a bare expression statement is pointless
    else:
        attempt[idx] = new_line
    fixed = "\n".join(attempt)
    return fixed if _parses(fixed) else None


def _fix_drop_banned_line(code: str, target: FixTarget) -> str | None:
    """Drop a single-line banned statement (``open(...)`` probe, banned
    import); if removal breaks the parse, substitute ``pass``."""
    if target.line is None:
        return None
    lines = code.split("\n")
    idx = target.line - 1
    if not 0 <= idx < len(lines) or not lines[idx].strip():
        return None
    indent = len(lines[idx]) - len(lines[idx].lstrip())
    dropped = lines[:idx] + lines[idx + 1:]
    fixed = "\n".join(dropped)
    if _parses(fixed):
        return fixed
    substituted = list(lines)
    substituted[idx] = " " * indent + "pass"
    fixed = "\n".join(substituted)
    return fixed if _parses(fixed) else None


_RANDOM_STATE_NONE_RE = re.compile(r"random_state\s*=\s*None")
_DEFAULT_RNG_EMPTY_RE = re.compile(r"default_rng\(\s*\)")


def _fix_unseeded(code: str, target: FixTarget) -> str | None:
    fixed = _RANDOM_STATE_NONE_RE.sub("random_state=0", code)
    fixed = _DEFAULT_RNG_EMPTY_RE.sub("default_rng(0)", fixed)
    if fixed == code or not _parses(fixed):
        return None
    return fixed


def _fix_entry_point(code: str, target: FixTarget) -> str | None:
    """Wrap the one plausible (train, test) function as ``run_pipeline``."""
    try:
        tree = ast.parse(code)
    except SyntaxError:
        return None
    defs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if any(d.name == "run_pipeline" for d in defs):
        return None
    twoarg = [
        d for d in defs
        if len(d.args.posonlyargs) + len(d.args.args) >= 2
    ]
    if len(twoarg) != 1:
        return None
    name = twoarg[0].name
    wrapper = (
        f"\n\ndef run_pipeline(train, test):\n"
        f"    return {name}(train, test)\n"
    )
    fixed = code.rstrip("\n") + wrapper
    return fixed if _parses(fixed) else None


# ---------------------------------------------------------------------------
# registry + drivers
# ---------------------------------------------------------------------------

_Fixer = Callable[[str, "FixTarget"], "str | None"]


@dataclass(frozen=True)
class _FixerSpec:
    fixer_id: str
    error_types: frozenset[str]
    apply: _Fixer = field(compare=False)
    description: str = ""

    def matches(self, target: FixTarget) -> bool:
        return target.error_type in self.error_types


_FIXERS: tuple[_FixerSpec, ...] = (
    _FixerSpec(
        "strip-markdown-fence", frozenset({"markdown_fence"}),
        _fix_markdown_fence, "remove ``` fence lines",
    ),
    _FixerSpec(
        "drop-stray-prose", frozenset({"stray_prose"}),
        _fix_stray_prose, "drop a prose line the LLM left in the code",
    ),
    _FixerSpec(
        "reindent-line", frozenset({"broken_indentation"}),
        _fix_indentation, "re-align one mis-indented line",
    ),
    _FixerSpec(
        "close-brackets", frozenset({"unclosed_bracket"}),
        _fix_unclosed_bracket, "append the missing closing bracket(s)",
    ),
    _FixerSpec(
        "insert-imports", frozenset({"missing_import"}),
        _fix_missing_imports, "import every known-but-unbound library symbol",
    ),
    _FixerSpec(
        "rewrite-env-access", frozenset({"env_variable"}),
        _fix_env_access, "replace environment reads with their defaults",
    ),
    _FixerSpec(
        "drop-banned-line", frozenset({"missing_data_file", "wrong_api"}),
        _fix_drop_banned_line, "remove a banned single-line statement",
    ),
    _FixerSpec(
        "pin-seed", frozenset({"no_convergence"}),
        _fix_unseeded, "pin random_state/default_rng seeds",
    ),
    _FixerSpec(
        "wrap-entry-point", frozenset({"truncated_code"}),
        _fix_entry_point, "wrap the sole (train, test) function",
    ),
)


def fix_target(code: str, target: FixTarget) -> FixResult:
    """Try every fixer registered for the target's error class."""
    for spec in _FIXERS:
        if not spec.matches(target):
            continue
        # banned-line dropping is scoped to findings the banned-api rule
        # produced: a generic wrong_api (e.g. a signature mismatch) has
        # no mechanical line-drop fix
        if (
            spec.fixer_id == "drop-banned-line"
            and target.rule_id not in (None, "banned-api")
        ):
            continue
        fixed = spec.apply(code, target)
        if fixed is not None and fixed != code and _parses(fixed):
            return FixResult(
                code=fixed,
                applied=(
                    AppliedFix(spec.fixer_id, target.error_type, spec.description),
                ),
            )
    return FixResult(code=code)


def fix_error(code: str, error: "PipelineError") -> FixResult:
    """Repair-loop entry: one taxonomy error -> one attempted rewrite."""
    details = getattr(error, "details", None) or {}
    target = FixTarget(
        error_type=error.error_type.name,
        message=error.message,
        line=error.line,
        rule_id=details.get("rule_id"),
    )
    return fix_target(code, target)


def fix_findings(code: str, findings: Sequence[Finding]) -> FixResult:
    """One pass over reported findings (used per round by autofix)."""
    applied: list[AppliedFix] = []
    for finding in findings:
        if finding.error_type is None:
            continue
        target = FixTarget(
            error_type=finding.error_type,
            message=finding.message,
            line=finding.line,
            rule_id=finding.rule_id,
        )
        result = fix_target(code, target)
        if result.changed:
            code = result.code
            applied.extend(result.applied)
            break  # line numbers shifted; re-analyze before fixing more
    return FixResult(code=code, applied=tuple(applied))


def autofix(
    code: str,
    profile: str = "pipeline",
    config: RuleConfig | None = None,
    catalog: "DataCatalog | None" = None,
    max_rounds: int = 8,
) -> FixResult:
    """Analyze-and-fix to a fixpoint (the ``repro lint --fix`` driver).

    Each round re-analyzes so every rewrite is validated against the
    rules that produced it: the loop stops when the file is clean, no
    fixer applies, or the round budget runs out.  Clean input comes back
    byte-identical with no fixes applied.
    """
    from repro.analysis.engine import analyze_source

    applied: list[AppliedFix] = []
    for _ in range(max_rounds):
        report = analyze_source(
            code, profile=profile, config=config, catalog=catalog
        )
        if not report.findings:
            break
        result = fix_findings(code, report.findings)
        if not result.changed:
            break
        code = result.code
        applied.extend(result.applied)
    return FixResult(code=code, applied=tuple(applied))
