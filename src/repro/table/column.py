"""Typed columns with explicit missing-value masks.

A :class:`Column` stores numeric values in a ``float64`` array (missing
slots hold ``nan``).  String and boolean columns are **dictionary
encoded**: an ``int32`` code per row (``-1`` marks missing) plus an
object array of distinct values, the *pool*.  Coercion, formatting and
hashing run once per distinct value instead of once per cell, and the
``data`` property materializes the legacy object-array view lazily so
existing callers keep working.

The encoding is an implementation detail: ``unique()`` keeps first-seen
order, ``value_counts()`` keeps the ``(-count, str(value))`` tie-break,
and the missing-token rules are unchanged (see ``docs/data_plane.md``
for the parity contract).
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["Column", "ColumnKind"]


class ColumnKind(str, enum.Enum):
    """Physical storage kind of a column."""

    NUMERIC = "numeric"
    STRING = "string"
    BOOLEAN = "boolean"


_MISSING_TOKENS = {"", "na", "n/a", "nan", "null", "none", "?", "missing"}

_TRUE_TOKENS = {"true", "t", "yes", "y"}
_FALSE_TOKENS = {"false", "f", "no", "n"}


def _is_missing_scalar(value: Any) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value.strip().lower() in _MISSING_TOKENS:
        return True
    return False


# -- dictionary-encoding helpers -----------------------------------------------

# Types whose __eq__/__hash__ never cross type boundaries in a way that
# changes coercion: two pool-equal values of these types always coerce to
# the same cell (bool is the exception, handled separately below).
_POOL_SAFE_TYPES = (
    str,
    bool,
    int,
    float,
    np.bool_,
    np.integer,
    np.floating,
    type(None),
)

_IS_NONE = np.frompyfunc(lambda value: value is None, 1, 1)
_IS_BOOL = np.frompyfunc(lambda value: isinstance(value, bool), 1, 1)


def _object_array(values: Sequence[Any]) -> np.ndarray:
    out = np.empty(len(values), dtype=object)
    try:
        out[:] = values
    except ValueError:  # sequence-valued cells defeat the bulk assign
        for i, value in enumerate(values):
            out[i] = value
    return out


def _all_numeric_types(types: set) -> bool:
    return bool(types) and all(
        t is not bool
        and t is not np.bool_
        and (t in (int, float) or issubclass(t, (np.integer, np.floating)))
        for t in types
    )


def _factorize_raw(values: list, types: set) -> tuple[list, np.ndarray] | None:
    """First-seen distinct pool + per-row pool index, or ``None``.

    Returns ``None`` when the values cannot safely share one hash table:
    unhashable cells, exotic types with cross-type equality, or bools
    mixed with numbers (``hash(True) == hash(1)`` would merge cells whose
    string coercions differ).  Callers fall back to per-cell coercion.
    """
    boolish = 0
    numeric = 0
    for t in types:
        if not issubclass(t, _POOL_SAFE_TYPES):
            return None
        if t is bool or t is np.bool_:
            boolish += 1
        elif not issubclass(t, (str, type(None))):
            numeric += 1
    if boolish and (boolish > 1 or numeric):
        return None
    try:
        pool = list(dict.fromkeys(values))
    except TypeError:
        return None
    index = {value: code for code, value in enumerate(pool)}
    codes = np.fromiter(
        map(index.__getitem__, values), dtype=np.int64, count=len(values)
    )
    return pool, codes


def _coerce_pool(
    pool: list, codes: np.ndarray, kind: ColumnKind
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce once per distinct raw value, then gather per-row storage.

    For NUMERIC returns ``(float64 data, missing mask)``; for STRING and
    BOOLEAN returns ``(object pool, int32 codes)`` where the pool has been
    re-deduplicated after formatting (``1`` and ``"1"`` both format to
    ``"1"``) and ``-1`` codes mark missing cells.
    """
    if kind is ColumnKind.NUMERIC:
        fpool = np.empty(len(pool), dtype=np.float64)
        mpool = np.zeros(len(pool), dtype=bool)
        for i, value in enumerate(pool):
            if _is_missing_scalar(value):
                fpool[i] = np.nan
                mpool[i] = True
                continue
            try:
                fpool[i] = float(value)
            except (TypeError, ValueError):
                fpool[i] = np.nan
                mpool[i] = True
        return fpool[codes], mpool[codes]
    remap = np.empty(len(pool), dtype=np.int32)
    index: dict[Any, int] = {}
    out_pool: list[Any] = []
    for i, value in enumerate(pool):
        if _is_missing_scalar(value):
            remap[i] = -1
            continue
        coerced = (
            _to_bool(value) if kind is ColumnKind.BOOLEAN else _format_value(value)
        )
        code = index.get(coerced)
        if code is None:
            code = len(out_pool)
            index[coerced] = code
            out_pool.append(coerced)
        remap[i] = code
    if len(pool):
        new_codes = remap[codes]
    else:
        new_codes = np.empty(0, dtype=np.int32)
    return _object_array(out_pool), new_codes


def _encode_coerced(
    values: list, missing: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dictionary-encode already-coerced values under a missing mask.

    Used by :meth:`Column.from_numpy`, which (like the seed) stores the
    given values verbatim.  Hash-colliding values of different types
    (``True`` vs ``1``) keep distinct codes so fingerprints still hash
    the original cell values; ``unique()`` re-applies the seed's
    hash-collapse at query time.
    """
    present = [v for v, m in zip(values, missing) if not m]
    types = set(map(type, present))
    safe = all(issubclass(t, _POOL_SAFE_TYPES) for t in types)
    if safe:
        boolish = (bool in types) + (np.bool_ in types)
        numeric = sum(
            1
            for t in types
            if t not in (bool, np.bool_)
            and not issubclass(t, (str, type(None)))
        )
        safe = not (boolish and (boolish > 1 or numeric))
    index: dict[Any, int] = {}
    pool: list[Any] = []
    codes = np.empty(len(values), dtype=np.int32)
    try:
        if safe:
            for i, (value, m) in enumerate(zip(values, missing)):
                if m:
                    codes[i] = -1
                    continue
                code = index.get(value)
                if code is None:
                    code = len(pool)
                    index[value] = code
                    pool.append(value)
                codes[i] = code
        else:
            # key by (type, value) so hash-equal cross-type cells stay apart
            for i, (value, m) in enumerate(zip(values, missing)):
                if m:
                    codes[i] = -1
                    continue
                key = (value.__class__, value)
                code = index.get(key)
                if code is None:
                    code = len(pool)
                    index[key] = code
                    pool.append(value)
                codes[i] = code
    except TypeError:  # unhashable cells: no dedup, one code per cell
        pool = []
        for i, (value, m) in enumerate(zip(values, missing)):
            if m:
                codes[i] = -1
            else:
                codes[i] = len(pool)
                pool.append(value)
    return _object_array(pool), codes


class Column:
    """A named, typed vector of values with a missing mask.

    Parameters
    ----------
    name:
        Column name; must be a non-empty string.
    values:
        Any iterable of scalars.  ``None``, ``nan`` and common textual
        missing tokens (``""``, ``"NA"``, ``"?"`` ...) are treated as
        missing.
    kind:
        Force a :class:`ColumnKind`; inferred from the values when omitted.
    """

    __slots__ = ("name", "kind", "missing", "_data", "_codes", "_pool")

    def __init__(
        self,
        name: str,
        values: Iterable[Any],
        kind: ColumnKind | str | None = None,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError(f"column name must be a non-empty string, got {name!r}")
        self.name = name
        raw = values if isinstance(values, list) else list(values)
        if kind is not None:
            kind = ColumnKind(kind)
        types = set(map(type, raw))
        if (
            kind in (None, ColumnKind.NUMERIC)
            and _all_numeric_types(types)
        ):
            data = np.asarray(raw, dtype=np.float64)
            missing = np.isnan(data)
            if kind is not None or not bool(missing.all()):
                # all-missing numeric input still infers STRING (seed rule)
                self.kind = ColumnKind.NUMERIC
                self._data = data
                self.missing = missing
                self._codes = None
                self._pool = None
                return
        factorized = _factorize_raw(raw, types)
        if factorized is None:
            self.kind = kind if kind is not None else _infer_kind(raw)
            data, missing = _coerce(raw, self.kind)
            if self.kind is ColumnKind.NUMERIC:
                self._data = data
                self.missing = missing
                self._codes = None
                self._pool = None
            else:
                pool, codes = _encode_coerced(data.tolist(), missing)
                self._pool = pool
                self._codes = codes
                self.missing = missing
                self._data = None
            return
        pool, codes = factorized
        self.kind = kind if kind is not None else _infer_kind(pool)
        a, b = _coerce_pool(pool, codes, self.kind)
        if self.kind is ColumnKind.NUMERIC:
            self._data = a
            self.missing = b
            self._codes = None
            self._pool = None
        else:
            self._pool = a
            self._codes = b
            self.missing = b < 0
            self._data = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        name: str,
        data: np.ndarray,
        missing: np.ndarray | None = None,
        kind: ColumnKind | str | None = None,
    ) -> "Column":
        """Wrap pre-coerced numpy storage without re-inferring types."""
        is_float = data.dtype.kind == "f"
        if missing is None:
            if is_float:
                missing = np.isnan(data)
            elif data.dtype == object and data.size:
                missing = _IS_NONE(data).astype(bool)
            else:
                missing = np.zeros(data.shape[0], dtype=bool)
        else:
            missing = np.asarray(missing, dtype=bool)
        if kind is None:
            if is_float:
                kind = ColumnKind.NUMERIC
            elif data.dtype.kind == "b":
                kind = ColumnKind.BOOLEAN
            else:
                present = data[~missing] if missing.any() else data
                if present.size and bool(_IS_BOOL(present).all()):
                    kind = ColumnKind.BOOLEAN
                else:
                    kind = ColumnKind.STRING
        kind = ColumnKind(kind)
        col = cls.__new__(cls)
        col.name = name
        col.kind = kind
        if kind is ColumnKind.NUMERIC:
            if is_float:
                col._data = data
            else:
                col._data = np.array(
                    [
                        np.nan if m else float(v)
                        for v, m in zip(data.tolist(), missing)
                    ],
                    dtype=np.float64,
                )
            col.missing = missing
            col._codes = None
            col._pool = None
            return col
        if data.dtype.kind == "b":
            # bool storage maps straight onto a two-value pool
            col._pool = _object_array([False, True])
            codes = data.astype(np.int32)
            codes[missing] = -1
            col._codes = codes
        else:
            col._pool, col._codes = _encode_coerced(data.tolist(), missing)
        col.missing = missing
        col._data = None
        return col

    @classmethod
    def _from_numeric(
        cls, name: str, data: np.ndarray, missing: np.ndarray
    ) -> "Column":
        col = cls.__new__(cls)
        col.name = name
        col.kind = ColumnKind.NUMERIC
        col._data = data
        col.missing = missing
        col._codes = None
        col._pool = None
        return col

    @classmethod
    def _from_dict_storage(
        cls,
        name: str,
        kind: ColumnKind,
        pool: np.ndarray,
        codes: np.ndarray,
    ) -> "Column":
        col = cls.__new__(cls)
        col.name = name
        col.kind = kind
        col._pool = pool
        col._codes = codes
        col.missing = codes < 0
        col._data = None
        return col

    @classmethod
    def _from_raw_pool(
        cls, name: str, kind: ColumnKind, pool: list, codes: np.ndarray
    ) -> "Column":
        """Run the per-distinct coercion over an arbitrary raw pool.

        ``codes`` may contain ``-1``; a ``None`` sentinel is appended to
        the pool so missing cells flow through the same gather.
        """
        ext_pool = list(pool) + [None]
        ext_codes = np.where(codes < 0, len(ext_pool) - 1, codes).astype(np.int64)
        a, b = _coerce_pool(ext_pool, ext_codes, kind)
        if kind is ColumnKind.NUMERIC:
            return cls._from_numeric(name, a, b)
        return cls._from_dict_storage(name, kind, a, b)

    # -- dictionary view -------------------------------------------------------

    @property
    def codes(self) -> np.ndarray | None:
        """Per-row ``int32`` pool indices (``-1`` = missing); ``None`` for
        numeric columns.  Read-only: treat codes and pool as immutable."""
        return self._codes

    @property
    def pool(self) -> np.ndarray | None:
        """Distinct-value object array backing the codes; ``None`` for
        numeric columns."""
        return self._pool

    @property
    def data(self) -> np.ndarray:
        """Row-major storage view (seed layout), materialized lazily for
        dictionary-encoded columns."""
        if self._data is None:
            ext = np.empty(self._pool.shape[0] + 1, dtype=object)
            ext[:-1] = self._pool
            ext[-1] = None
            self._data = ext[self._codes]
        return self._data

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        if self._codes is not None:
            return int(self._codes.shape[0])
        return int(self._data.shape[0])

    def __iter__(self):
        if self._codes is not None:
            return iter(self.data.tolist())
        return self._iter_numeric()

    def _iter_numeric(self):
        for value, is_missing in zip(self._data, self.missing):
            yield None if is_missing else value

    def __getitem__(self, idx: int) -> Any:
        if self._codes is not None:
            code = self._codes[idx]
            if code < 0:
                return None
            return self._pool[code]
        if self.missing[idx]:
            return None
        return float(self._data[idx])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind is not other.kind:
            return False
        if len(self) != len(other):
            return False
        if self._codes is not None and other._codes is not None:
            try:
                index = {
                    value: code
                    for code, value in enumerate(self._pool.tolist())
                }
            except TypeError:
                return list(self) == list(other)
            if len(index) < self._pool.shape[0]:
                # hash-colliding pool entries: delegate to value compare
                return list(self) == list(other)
            remap = np.fromiter(
                (index.get(value, -2) for value in other._pool.tolist()),
                dtype=np.int64,
                count=other._pool.shape[0],
            )
            ext = np.empty(remap.shape[0] + 1, dtype=np.int64)
            ext[:-1] = remap
            ext[-1] = -1
            return bool(
                np.array_equal(self._codes.astype(np.int64), ext[other._codes])
            )
        if self._codes is None and other._codes is None:
            if not np.array_equal(self.missing, other.missing):
                return False
            keep = ~self.missing
            return bool(np.array_equal(self._data[keep], other._data[keep]))
        return list(self) == list(other)

    def __repr__(self) -> str:
        return (
            f"Column(name={self.name!r}, kind={self.kind.value}, "
            f"n={len(self)}, missing={int(self.missing.sum())})"
        )

    # -- accessors --------------------------------------------------------------

    def to_list(self) -> list[Any]:
        """Values with missing entries as ``None``."""
        out = self.data.tolist()  # C-speed; floats become Python floats
        if self._codes is None and self.missing.any():
            for i in np.nonzero(self.missing)[0].tolist():
                out[i] = None
        return out

    def non_missing(self) -> np.ndarray:
        """All present values, in row order."""
        if self._codes is not None:
            codes = self._codes
            return self._pool[codes[codes >= 0]]
        return self._data[~self.missing]

    @property
    def n_missing(self) -> int:
        return int(self.missing.sum())

    @property
    def missing_fraction(self) -> float:
        return float(self.missing.mean()) if len(self) else 0.0

    def _distinct_info(self) -> tuple[list[Any], list[int]]:
        """Distinct pool values in first-seen row order, with counts."""
        codes = self._codes
        present = codes[codes >= 0]
        if present.size == 0:
            return [], []
        used, first, counts = np.unique(
            present, return_index=True, return_counts=True
        )
        order = np.argsort(first, kind="stable")
        values = self._pool[used[order]].tolist()
        return values, counts[order].tolist()

    def unique(self) -> list[Any]:
        """Distinct non-missing values, in first-seen order."""
        if self._codes is not None:
            values, _ = self._distinct_info()
            # dict.fromkeys re-applies the seed's hash collapse for pools
            # that keep hash-equal values apart (from_numpy storage)
            return list(dict.fromkeys(values))
        return list(dict.fromkeys(self.non_missing().tolist()))

    def value_counts(self) -> dict[Any, int]:
        """Counts of distinct non-missing values, most frequent first."""
        if self._codes is not None:
            values, counts = self._distinct_info()
            merged: dict[Any, int] = {}
            for value, count in zip(values, counts):
                if value in merged:
                    merged[value] += count
                else:
                    merged[value] = count
            return dict(
                sorted(merged.items(), key=lambda kv: (-kv[1], str(kv[0])))
            )
        counts = Counter(self.non_missing().tolist())
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))

    @property
    def n_distinct(self) -> int:
        return len(self.unique())

    # -- transformation ----------------------------------------------------------

    def take(self, indices: Sequence[int] | np.ndarray) -> "Column":
        idx = np.asarray(indices, dtype=np.intp)
        if self._codes is not None:
            return Column._from_dict_storage(
                self.name, self.kind, self._pool, self._codes[idx]
            )
        return Column._from_numeric(
            self.name, self._data[idx], self.missing[idx]
        )

    def mask_rows(self, keep: np.ndarray) -> "Column":
        keep = np.asarray(keep, dtype=bool)
        if self._codes is not None:
            return Column._from_dict_storage(
                self.name, self.kind, self._pool, self._codes[keep]
            )
        return Column._from_numeric(
            self.name, self._data[keep], self.missing[keep]
        )

    def renamed(self, name: str) -> "Column":
        if self._codes is not None:
            return Column._from_dict_storage(
                name, self.kind, self._pool, self._codes
            )
        return Column._from_numeric(name, self._data, self.missing)

    def copy(self) -> "Column":
        if self._codes is not None:
            return Column._from_dict_storage(
                self.name, self.kind, self._pool, self._codes.copy()
            )
        return Column._from_numeric(
            self.name, self._data.copy(), self.missing.copy()
        )

    def astype_numeric(self) -> "Column":
        """Best-effort conversion to a numeric column (unparseable -> missing)."""
        if self.kind is ColumnKind.NUMERIC:
            return self.copy()
        return Column._from_raw_pool(
            self.name, ColumnKind.NUMERIC, self._pool.tolist(), self._codes
        )

    def astype_string(self) -> "Column":
        if self.kind is ColumnKind.STRING:
            return self.copy()
        if self._codes is not None:
            formatted = [_format_value(v) for v in self._pool.tolist()]
            return Column._from_raw_pool(
                self.name, ColumnKind.STRING, formatted, self._codes
            )
        present = ~self.missing
        uniq, inverse = np.unique(self._data[present], return_inverse=True)
        formatted = [_format_value(float(v)) for v in uniq.tolist()]
        codes = np.full(self.missing.shape[0], -1, dtype=np.int64)
        codes[present] = inverse
        return Column._from_raw_pool(
            self.name, ColumnKind.STRING, formatted, codes
        )

    def fill_missing(self, fill_value: Any) -> "Column":
        if self._codes is not None:
            pool = self._pool.tolist() + [fill_value]
            codes = np.where(
                self._codes < 0, len(pool) - 1, self._codes
            ).astype(np.int64)
            return Column._from_raw_pool(self.name, self.kind, pool, codes)
        if not self.missing.any():
            return self.copy()
        if _is_missing_scalar(fill_value):
            return self.copy()
        try:
            fill = float(fill_value)
        except (TypeError, ValueError):
            return self.copy()
        data = np.where(self.missing, fill, self._data)
        return Column._from_numeric(
            self.name, data, np.zeros(data.shape[0], dtype=bool)
        )

    def numeric_values(self) -> np.ndarray:
        """Float array with ``nan`` in missing slots (numeric columns only)."""
        if self.kind is not ColumnKind.NUMERIC:
            raise TypeError(f"column {self.name!r} is {self.kind.value}, not numeric")
        return self._data


def _infer_kind(values: list[Any]) -> ColumnKind:
    saw_bool = saw_number = saw_string = False
    for value in values:
        if _is_missing_scalar(value):
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, (int, float, np.integer, np.floating)):
            saw_number = True
        elif isinstance(value, str):
            token = value.strip().lower()
            if token in _TRUE_TOKENS or token in _FALSE_TOKENS:
                saw_bool = True
            else:
                try:
                    float(value)
                except ValueError:
                    saw_string = True
                else:
                    saw_number = True
        else:
            saw_string = True
    if saw_string:
        return ColumnKind.STRING
    if saw_number:
        return ColumnKind.NUMERIC
    if saw_bool:
        return ColumnKind.BOOLEAN
    return ColumnKind.STRING


def _coerce(values: list[Any], kind: ColumnKind) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell fallback coercion for values the pool factorizer rejects
    (unhashable cells, bools mixed with numbers, exotic scalar types)."""
    n = len(values)
    missing = np.zeros(n, dtype=bool)
    if kind is ColumnKind.NUMERIC:
        data = np.empty(n, dtype=np.float64)
        for i, value in enumerate(values):
            if _is_missing_scalar(value):
                data[i] = np.nan
                missing[i] = True
                continue
            try:
                data[i] = float(value)
            except (TypeError, ValueError):
                data[i] = np.nan
                missing[i] = True
        return data, missing
    data = np.empty(n, dtype=object)
    for i, value in enumerate(values):
        if _is_missing_scalar(value):
            data[i] = None
            missing[i] = True
        elif kind is ColumnKind.BOOLEAN:
            data[i] = _to_bool(value)
        else:
            data[i] = _format_value(value)
    return data, missing


def _to_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return bool(value)
    token = str(value).strip().lower()
    if token in _TRUE_TOKENS:
        return True
    if token in _FALSE_TOKENS:
        return False
    raise ValueError(f"cannot interpret {value!r} as boolean")


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        # checked before int/float: bool subclasses int, so the numeric
        # branches would render True/False as "1"/"0"
        return "true" if value else "false"
    if isinstance(value, (float, np.floating)):
        as_float = float(value)
        if as_float.is_integer():
            return str(int(as_float))
        return repr(as_float)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    return str(value)
