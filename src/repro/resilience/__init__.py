"""Resilience layer: retries, deadlines, and circuit breaking.

Separates orchestration robustness (how calls survive transient failure)
from generation logic (what the calls do) — see ``docs/resilience.md``.
Everything here is deterministic under a seed: backoff jitter comes from
stable hashes, and clocks are injectable for tests and soaks.
"""

from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.resilience.deadline import (
    Deadline,
    ExecutionTimeout,
    run_with_timeout,
    signal_timeout_available,
)
from repro.resilience.errors import (
    BreakerOpen,
    DeadlineExceeded,
    ResilienceError,
    ResilienceGiveUp,
    RetryExhausted,
    TransientError,
)
from repro.resilience.retry import (
    DEFAULT_RETRYABLE,
    RetryPolicy,
    retry_call,
    stable_jitter_point,
)

__all__ = [
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "Deadline",
    "ExecutionTimeout",
    "run_with_timeout",
    "signal_timeout_available",
    "ResilienceError",
    "TransientError",
    "DeadlineExceeded",
    "ResilienceGiveUp",
    "RetryExhausted",
    "BreakerOpen",
    "RetryPolicy",
    "retry_call",
    "stable_jitter_point",
    "DEFAULT_RETRYABLE",
]
