"""Job / JobGraph model for the parallel experiment scheduler.

An experiment grid (dataset x system x LLM profile) becomes a small DAG:
``prepare_dataset`` is one shared *setup* node per dataset, derived
artifacts (refinement, cleaning, corruption) are further setup nodes, and
every ``run_catdb`` / ``run_llm_baseline`` / ``run_automl`` cell is a
fan-out *cell* node depending on them.  The scheduler
(:mod:`repro.runner.scheduler`) executes the DAG on a worker pool.

Determinism is by construction, the same discipline as the profiling
substrate's :class:`~repro.catalog.executor.ProfilerExecutor`: a job's
work may depend only on its declared inputs — its dependency results,
its closed-over config, and its own seeded RNG (:func:`job_rng`, spawned
from a :class:`numpy.random.SeedSequence` keyed by the job's id and
seed, never by scheduling order) — so ``workers=1`` and ``workers=N``
produce bit-identical results.

Cell jobs carry a ``config`` dict; its :func:`config_fingerprint` keys
the run-ledger record the scheduler appends per cell, which is what
``--resume`` matches against to skip already-computed cells.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "Job",
    "JobGraph",
    "JobResult",
    "config_fingerprint",
    "job_rng",
]


def config_fingerprint(config: dict[str, Any]) -> str:
    """Stable md5 over a canonical-JSON encoding of a cell's config.

    Keys are sorted and values rendered with ``default=str``, so the
    fingerprint is identical across processes and ``PYTHONHASHSEED``
    values (the same requirement as the profile cache's
    :func:`~repro.catalog.cache.column_fingerprint`).
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.md5(canonical.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One node of the experiment DAG.

    ``fn`` receives the results of ``deps`` positionally, in declaration
    order.  ``config`` marks a *cell* (fingerprinted, ledger-recorded,
    resumable); setup nodes (prepare/refine/clean) leave it ``None`` and
    always re-execute on resume because their results (tables, catalogs)
    are not JSON-serializable.
    """

    job_id: str
    fn: Callable[..., Any]
    deps: tuple[str, ...] = ()
    config: dict[str, Any] | None = None
    seed: int = 0

    @property
    def is_cell(self) -> bool:
        return self.config is not None

    def fingerprint(self, namespace: str = "") -> str:
        payload = dict(self.config or {})
        if namespace:
            payload["__grid__"] = namespace
        return config_fingerprint(payload)

    def spawn_rng(self) -> np.random.Generator:
        """This job's own deterministic RNG, independent of scheduling.

        Keyed by ``(seed, md5(job_id))`` so two jobs never share a
        stream and the stream never depends on worker interleaving.
        """
        digest = hashlib.md5(self.job_id.encode("utf-8")).digest()
        entropy = [self.seed] + [
            int.from_bytes(digest[i:i + 4], "little") for i in (0, 4, 8, 12)
        ]
        return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass
class JobResult:
    """Outcome of one scheduled job (ok, cached, failed, or skipped)."""

    job_id: str
    status: str  # "ok" | "cached" | "failed" | "skipped"
    value: Any = None
    error_type: str = ""
    error: str = ""
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


class JobGraph:
    """An insertion-ordered DAG of :class:`Job` nodes.

    Insertion order is the determinism anchor: result assembly, resume
    bookkeeping, and rendered-table row order all follow it, never
    completion order.
    """

    def __init__(self) -> None:
        self.jobs: dict[str, Job] = {}

    def __len__(self) -> int:
        return len(self.jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self.jobs

    def add(
        self,
        job_id: str,
        fn: Callable[..., Any],
        deps: tuple[str, ...] | list[str] = (),
        config: dict[str, Any] | None = None,
        seed: int = 0,
    ) -> str:
        """Add one job; returns its id so call sites can chain deps."""
        if job_id in self.jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        for dep in deps:
            if dep not in self.jobs:
                raise ValueError(
                    f"job {job_id!r} depends on unknown job {dep!r} "
                    "(dependencies must be added first)"
                )
        self.jobs[job_id] = Job(
            job_id=job_id, fn=fn, deps=tuple(deps), config=config, seed=seed
        )
        return job_id

    def cells(self) -> list[Job]:
        """Cell jobs in insertion order (the grid's logical rows)."""
        return [job for job in self.jobs.values() if job.is_cell]

    def validate(self) -> None:
        """Raise ``ValueError`` on cycles (unknown deps are caught in add)."""
        state: dict[str, int] = {}  # 0 visiting, 1 done

        def visit(job_id: str, chain: tuple[str, ...]) -> None:
            mark = state.get(job_id)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(chain + (job_id,))
                raise ValueError(f"dependency cycle: {cycle}")
            state[job_id] = 0
            for dep in self.jobs[job_id].deps:
                visit(dep, chain + (job_id,))
            state[job_id] = 1

        for job_id in self.jobs:
            visit(job_id, ())


# Per-job RNG handed to the running job via its execution context (the
# scheduler runs every job in a fresh contextvars.Context, so this var
# can never leak between concurrently running jobs).
_current_job_rng: contextvars.ContextVar[np.random.Generator | None] = (
    contextvars.ContextVar("repro_job_rng", default=None)
)


def job_rng() -> np.random.Generator:
    """The running job's seeded RNG (scheduler-injected).

    Outside a scheduled job this raises, which keeps accidental global
    fallback (and with it scheduling-dependent randomness) impossible.
    """
    rng = _current_job_rng.get()
    if rng is None:
        raise RuntimeError(
            "job_rng() is only available inside a scheduled job"
        )
    return rng
