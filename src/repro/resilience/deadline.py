"""Per-call deadlines and wall-clock budgets for arbitrary Python work.

:class:`Deadline` is a small value object around a monotonic clock; the
transport layer uses it to discard responses that arrive too late.

:func:`run_with_timeout` enforces a hard wall-clock budget on a callable —
the mechanism behind ``--exec-timeout`` for generated-pipeline execution:

- ``"signal"`` mode (POSIX main thread only) arms ``setitimer``; the
  SIGALRM handler raises :class:`ExecutionTimeout` inside the running
  frame, which also interrupts blocking sleeps.
- ``"thread"`` mode runs the callable in a daemon worker and, on expiry,
  injects :class:`ExecutionTimeout` into it via
  ``PyThreadState_SetAsyncExc``.  That kills pure-Python loops (the
  generated pipelines' failure mode) between bytecodes; a worker stuck in
  a C call cannot be interrupted, so after a short grace period the worker
  is abandoned (daemon threads die with the process) and the timeout is
  reported anyway — the caller never hangs.  The worker runs behind an
  :class:`~repro.obs.fence.ObsFence`: it inherits the caller's
  tracer/metrics (emission parity with signal mode) and, once abandoned,
  is sealed off so the zombie thread cannot emit spans or metrics into
  whatever run is active later.
- ``"auto"`` picks ``"signal"`` when available, else ``"thread"``.
"""

from __future__ import annotations

import ctypes
import signal
import threading
import time
from typing import Any, Callable, TypeVar

from repro.resilience.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "ExecutionTimeout",
    "run_with_timeout",
    "signal_timeout_available",
]

T = TypeVar("T")


class ExecutionTimeout(RuntimeError):
    """Work exceeded its wall-clock budget.

    Subclasses :class:`RuntimeError` so the generation error taxonomy
    classifies it as a runtime (RE-group) pipeline error.
    """


class Deadline:
    """A point in monotonic time before which work must finish."""

    __slots__ = ("seconds", "_clock", "_expires_at")

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if seconds <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        self.seconds = float(seconds)
        self._clock = clock
        self._expires_at = clock() + self.seconds

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (clamped at zero)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "call") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.seconds:g}s deadline"
            )

    def __repr__(self) -> str:
        return f"Deadline(seconds={self.seconds:g}, remaining={self.remaining():.3f})"


def signal_timeout_available() -> bool:
    """Whether SIGALRM-based enforcement works here (POSIX main thread)."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _run_with_signal(fn: Callable[[], T], seconds: float) -> T:
    def _on_alarm(signum: int, frame: Any) -> None:
        raise ExecutionTimeout(
            f"execution exceeded its {seconds:g}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _async_raise(thread_id: int, exc_type: type[BaseException]) -> None:
    ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id), ctypes.py_object(exc_type)
    )


def _run_with_thread(
    fn: Callable[[], T], seconds: float, grace_seconds: float = 1.0
) -> T:
    from repro.obs.fence import ObsFence

    outcome: dict[str, Any] = {}
    started = threading.Event()
    # the fence gives the worker the caller's tracer/metrics (parity with
    # signal mode, where fn runs on the caller's own context) and, if the
    # worker has to be abandoned, cuts it off so a zombie thread cannot
    # emit into whatever run is active later
    fence = ObsFence()
    run = fence.wrap(fn)

    def _target() -> None:
        started.set()
        try:
            outcome["result"] = run()
        except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
            outcome["error"] = exc

    worker = threading.Thread(
        target=_target, name="repro-exec-budget", daemon=True
    )
    worker.start()
    # the worker sets this first thing; the timeout only guards against a
    # pathologically starved scheduler and keeps the budget clock honest
    started.wait(timeout=seconds)
    worker.join(seconds)
    if worker.is_alive():
        # inject ExecutionTimeout between bytecodes; re-send for a short
        # grace period in case the worker swallows BaseException briefly
        grace_deadline = time.monotonic() + grace_seconds
        while worker.is_alive() and time.monotonic() < grace_deadline:
            _async_raise(worker.ident or 0, ExecutionTimeout)
            worker.join(0.02)
        abandoned = worker.is_alive()
        if abandoned:
            fence.seal()
        raise ExecutionTimeout(
            f"execution exceeded its {seconds:g}s wall-clock budget"
            + (" (worker abandoned)" if abandoned else "")
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


def run_with_timeout(
    fn: Callable[[], T],
    seconds: float | None,
    mode: str = "auto",
    grace_seconds: float = 1.0,
) -> T:
    """Run ``fn`` with a hard wall-clock budget of ``seconds``.

    ``seconds=None`` (or ``<= 0``) runs ``fn`` directly.  Raises
    :class:`ExecutionTimeout` when the budget is exceeded; any exception
    ``fn`` itself raises propagates unchanged.
    """
    if seconds is None or seconds <= 0:
        return fn()
    if mode not in ("auto", "signal", "thread"):
        raise ValueError(f"unknown timeout mode {mode!r}")
    if mode == "auto":
        mode = "signal" if signal_timeout_available() else "thread"
    if mode == "signal":
        if not signal_timeout_available():
            mode = "thread"
        else:
            return _run_with_signal(fn, seconds)
    return _run_with_thread(fn, seconds, grace_seconds=grace_seconds)
