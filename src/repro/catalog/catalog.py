"""The data catalog store: column profiles plus dataset-level metadata."""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.catalog.feature_types import FeatureType

__all__ = ["ColumnProfile", "DatasetInfo", "DataCatalog"]


@dataclass
class ColumnProfile:
    """Everything Algorithm 1 extracts for one column."""

    name: str
    data_type: str  # physical: "number" | "string" | "boolean"
    feature_type: FeatureType
    is_categorical: bool
    distinct_count: int
    distinct_percentage: float  # % of rows with a distinct value
    missing_count: int
    missing_percentage: float
    samples: list[Any] = field(default_factory=list)
    statistics: dict[str, float] = field(default_factory=dict)  # numeric only
    inclusion_dependencies: list[str] = field(default_factory=list)
    similarities: list[tuple[str, float]] = field(default_factory=list)
    target_correlation: float = 0.0
    categorical_values: list[Any] = field(default_factory=list)
    refined_from: str | None = None  # original column when created by refinement
    list_delimiter: str | None = None  # set for List features by refinement

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["feature_type"] = self.feature_type.value
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ColumnProfile":
        data = dict(data)
        data["feature_type"] = FeatureType(data["feature_type"])
        data["similarities"] = [tuple(s) for s in data.get("similarities", [])]
        return cls(**data)


@dataclass
class DatasetInfo:
    """Dataset-level facts encoded into prompts (paths, task, shape)."""

    name: str
    task_type: str  # "binary" | "multiclass" | "regression"
    target: str
    n_rows: int
    n_cols: int
    n_tables: int = 1
    file_path: str = ""
    file_format: str = "csv"
    delimiter: str = ","
    description: str = ""

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DatasetInfo":
        return cls(**data)


class DataCatalog:
    """Profiles for one dataset: ordered column profiles + dataset info."""

    def __init__(self, info: DatasetInfo, profiles: list[ColumnProfile]) -> None:
        self.info = info
        self._profiles: dict[str, ColumnProfile] = {}
        for profile in profiles:
            if profile.name in self._profiles:
                raise ValueError(f"duplicate profile for column {profile.name!r}")
            self._profiles[profile.name] = profile

    # -- access ------------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return list(self._profiles)

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def __getitem__(self, name: str) -> ColumnProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(
                f"no profile for column {name!r}; have {self.column_names}"
            ) from None

    def __len__(self) -> int:
        return len(self._profiles)

    def profiles(self) -> list[ColumnProfile]:
        return list(self._profiles.values())

    def feature_profiles(self) -> list[ColumnProfile]:
        """Profiles of non-target columns."""
        return [p for p in self.profiles() if p.name != self.info.target]

    @property
    def target_profile(self) -> ColumnProfile:
        return self[self.info.target]

    # -- mutation ------------------------------------------------------------------

    def replace(self, name: str, new_profiles: list[ColumnProfile]) -> None:
        """Replace one column's profile by one or more (used by refinement)."""
        if name not in self._profiles:
            raise KeyError(f"no profile for column {name!r}")
        rebuilt: dict[str, ColumnProfile] = {}
        for existing_name, profile in self._profiles.items():
            if existing_name == name:
                for new_profile in new_profiles:
                    rebuilt[new_profile.name] = new_profile
            else:
                rebuilt[existing_name] = profile
        self._profiles = rebuilt

    def drop(self, names: list[str]) -> None:
        for name in names:
            self._profiles.pop(name, None)
        self.info.n_cols = len(self._profiles)

    def subset(self, names: list[str]) -> "DataCatalog":
        """Catalog restricted to ``names`` (target always kept)."""
        keep = list(names)
        if self.info.target not in keep and self.info.target in self._profiles:
            keep.append(self.info.target)
        profiles = [self._profiles[n] for n in keep if n in self._profiles]
        info = DatasetInfo(**{**self.info.to_dict(), "n_cols": len(profiles)})
        return DataCatalog(info, profiles)

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "info": self.info.to_dict(),
            "columns": [p.to_dict() for p in self.profiles()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def save(self, path: str | os.PathLike[str]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DataCatalog":
        info = DatasetInfo.from_dict(data["info"])
        profiles = [ColumnProfile.from_dict(c) for c in data["columns"]]
        return cls(info, profiles)

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "DataCatalog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self) -> str:
        return (
            f"DataCatalog(dataset={self.info.name!r}, task={self.info.task_type!r}, "
            f"columns={len(self)}, target={self.info.target!r})"
        )
