"""Table 1 — the eleven metadata combinations.

Each combination selects which data-profiling items are projected into the
prompt's schema messages.  The schema itself (column names and data types)
is always present; the paper's micro-benchmark (Figure 10) sweeps these
combinations to measure metadata impact on pipeline quality.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MetadataCombination", "METADATA_COMBINATIONS", "get_combination"]


@dataclass(frozen=True)
class MetadataCombination:
    """One column of Table 1."""

    number: int
    distinct_value_count: bool
    missing_value_frequency: bool
    basic_statistics: bool
    categorical_values: bool
    user_description: bool = True  # optional row, included in all combos

    @property
    def name(self) -> str:
        return f"#{self.number}"

    @property
    def items(self) -> list[str]:
        included = ["Schema"]
        if self.distinct_value_count:
            included.append("Distinct Value Count")
        if self.missing_value_frequency:
            included.append("Missing Value Frequency")
        if self.basic_statistics:
            included.append("Basic Statistics")
        if self.categorical_values:
            included.append("Categorical Values")
        return included


METADATA_COMBINATIONS: dict[int, MetadataCombination] = {
    1: MetadataCombination(1, False, False, False, False),
    2: MetadataCombination(2, True, False, False, False),
    3: MetadataCombination(3, False, True, False, False),
    4: MetadataCombination(4, False, False, True, False),
    5: MetadataCombination(5, False, False, False, True),
    6: MetadataCombination(6, True, True, False, False),
    7: MetadataCombination(7, True, False, True, False),
    8: MetadataCombination(8, False, True, True, False),
    9: MetadataCombination(9, False, True, False, True),
    10: MetadataCombination(10, False, False, True, True),
    11: MetadataCombination(11, True, True, True, True),
}


def get_combination(number: int) -> MetadataCombination:
    """Combination ``#number`` of Table 1 (1-11); #11 is CatDB's default."""
    if number not in METADATA_COMBINATIONS:
        raise KeyError(f"metadata combination must be 1..11, got {number}")
    return METADATA_COMBINATIONS[number]
