"""The pluggable rule engine: findings, rule protocol, per-rule config.

A :class:`Rule` inspects one parsed source file (through an
:class:`AnalysisContext`) and yields :class:`Finding` objects.  Rules are
pure functions of the AST — no execution, no I/O — so the whole pass is
deterministic and safe to run on untrusted generated code.

Severity semantics: ``error`` findings map onto the
:class:`~repro.generation.errors.PipelineError` taxonomy and route the
generated code straight to repair without executing it; ``warning``
findings are advisory (reported by ``repro lint``, never gating).
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Protocol, runtime_checkable

from repro.analysis.scopes import ScopeInfo, build_scopes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.dataflow import ModuleDataflow
    from repro.catalog.catalog import DataCatalog

__all__ = [
    "Severity",
    "Finding",
    "Rule",
    "RuleConfig",
    "AnalysisContext",
    "run_rules",
]


class Severity(str, enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One static finding, attributable to a rule and a source line."""

    rule_id: str
    severity: Severity
    message: str
    line: int | None = None
    col: int | None = None
    error_type: str | None = None  # taxonomy name for error-severity findings
    details: dict[str, Any] = field(default_factory=dict, compare=False)

    def render(self) -> str:
        location = f":{self.line}" if self.line is not None else ""
        return f"{location} {self.severity.value} [{self.rule_id}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "line": self.line,
            "col": self.col,
            "error_type": self.error_type,
        }


@runtime_checkable
class Rule(Protocol):
    """Protocol every rule implements; registered into a profile."""

    id: str
    description: str
    default_severity: Severity

    def check(self, ctx: "AnalysisContext") -> Iterable[Finding]:  # pragma: no cover
        ...


@dataclass
class RuleConfig:
    """Per-rule enable switches and severity overrides.

    ``enabled`` maps rule id -> bool (absent means enabled);
    ``severities`` maps rule id -> :class:`Severity` override.
    """

    enabled: dict[str, bool] = field(default_factory=dict)
    severities: dict[str, Severity] = field(default_factory=dict)

    def is_enabled(self, rule_id: str) -> bool:
        return self.enabled.get(rule_id, True)

    def severity_for(self, rule: Rule) -> Severity:
        override = self.severities.get(rule.id)
        if override is None:
            return rule.default_severity
        return Severity(override)


class AnalysisContext:
    """Everything a rule may inspect about one source file."""

    def __init__(
        self,
        code: str,
        tree: ast.Module,
        filename: str = "<pipeline>",
        profile: str = "pipeline",
        catalog: "DataCatalog | None" = None,
    ) -> None:
        self.code = code
        self.lines = code.split("\n")
        self.tree = tree
        self.filename = filename
        self.profile = profile
        self.catalog = catalog
        self._scopes: ScopeInfo | None = None
        self._import_aliases: dict[str, str] | None = None
        self._dataflow: "ModuleDataflow | None" = None
        self._nodes: tuple[ast.AST, ...] | None = None

    def walk(self) -> tuple[ast.AST, ...]:
        """All nodes of the module tree, in ``ast.walk`` order.

        Flattened once and shared: every full-tree rule iterates this
        instead of re-traversing with ``ast.walk`` — with ~a dozen such
        rules per profile the repeated traversal was the single largest
        cost of an analysis pass.
        """
        if self._nodes is None:
            self._nodes = tuple(ast.walk(self.tree))
        return self._nodes

    @property
    def scopes(self) -> ScopeInfo:
        """Scope tree + uses, built lazily (shared across rules)."""
        if self._scopes is None:
            self._scopes = build_scopes(self.tree)
        return self._scopes

    @property
    def dataflow(self) -> "ModuleDataflow":
        """Flow-sensitive results (CFG, taint, use-before-def), lazy."""
        if self._dataflow is None:
            from repro.analysis.dataflow import analyze_dataflow

            self._dataflow = analyze_dataflow(
                self.tree, import_aliases=self.import_aliases
            )
        return self._dataflow

    @property
    def import_aliases(self) -> dict[str, str]:
        """Local name -> dotted origin for every import in the file.

        ``import numpy as np`` yields ``{"np": "numpy"}``;
        ``from repro.ml import Ridge as R`` yields
        ``{"R": "repro.ml.Ridge"}``.
        """
        if self._import_aliases is None:
            aliases: dict[str, str] = {}
            for node in self.walk():
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        aliases[(alias.asname or alias.name).split(".")[0]] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        if alias.name != "*":
                            aliases[alias.asname or alias.name] = (
                                f"{node.module}.{alias.name}"
                            )
            self._import_aliases = aliases
        return self._import_aliases

    def dotted_name(self, node: ast.AST) -> str | None:
        """Render ``a.b.c`` chains, resolving the root through imports.

        ``np.random.rand`` becomes ``numpy.random.rand`` when ``np`` is an
        alias for numpy.  Returns ``None`` for non-name-rooted chains.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.import_aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


def run_rules(
    ctx: AnalysisContext,
    rules: Iterable[Rule],
    config: RuleConfig | None = None,
) -> list[Finding]:
    """Run every enabled rule; findings sorted by (line, rule, message)."""
    config = config or RuleConfig()
    findings: list[Finding] = []
    for rule in rules:
        if not config.is_enabled(rule.id):
            continue
        severity = config.severity_for(rule)
        for finding in rule.check(ctx):
            if finding.severity is not severity:
                finding = Finding(
                    rule_id=finding.rule_id,
                    severity=severity,
                    message=finding.message,
                    line=finding.line,
                    col=finding.col,
                    error_type=finding.error_type,
                    details=finding.details,
                )
            findings.append(finding)
    findings.sort(key=lambda f: (f.line or 0, f.rule_id, f.message))
    return findings
