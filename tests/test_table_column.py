"""Unit tests for repro.table.column."""

import numpy as np
import pytest

from repro.table.column import Column, ColumnKind


class TestKindInference:
    def test_numeric_from_floats(self):
        assert Column("a", [1.0, 2.5]).kind is ColumnKind.NUMERIC

    def test_numeric_from_numeric_strings(self):
        col = Column("a", ["1", "2.5", "3"])
        assert col.kind is ColumnKind.NUMERIC
        assert col[1] == 2.5

    def test_string_wins_over_numbers(self):
        assert Column("a", [1, "x", 3]).kind is ColumnKind.STRING

    def test_boolean_from_tokens(self):
        col = Column("a", ["yes", "no", "yes"])
        assert col.kind is ColumnKind.BOOLEAN
        assert col[0] is True
        assert col[1] is False

    def test_python_bools(self):
        assert Column("a", [True, False]).kind is ColumnKind.BOOLEAN

    def test_all_missing_defaults_to_string(self):
        assert Column("a", [None, None]).kind is ColumnKind.STRING

    def test_forced_kind(self):
        col = Column("a", ["1", "2"], kind="string")
        assert col.kind is ColumnKind.STRING
        assert col[0] == "1"


class TestMissingHandling:
    def test_none_is_missing(self):
        col = Column("a", [1.0, None, 3.0])
        assert col.n_missing == 1
        assert col[1] is None

    def test_nan_is_missing(self):
        assert Column("a", [1.0, float("nan")]).n_missing == 1

    def test_textual_missing_tokens(self):
        col = Column("a", ["x", "", "NA", "?", "null"])
        assert col.n_missing == 4

    def test_unparseable_numeric_becomes_missing(self):
        col = Column("a", ["1", "oops"], kind="numeric")
        assert col.n_missing == 1

    def test_missing_fraction(self):
        assert Column("a", [1.0, None]).missing_fraction == pytest.approx(0.5)

    def test_missing_fraction_empty(self):
        assert Column("a", []).missing_fraction == 0.0

    def test_fill_missing(self):
        filled = Column("a", [1.0, None]).fill_missing(9.0)
        assert filled.to_list() == [1.0, 9.0]


class TestAccessors:
    def test_len_iter(self):
        col = Column("a", [1, 2, None])
        assert len(col) == 3
        assert list(col) == [1.0, 2.0, None]

    def test_unique_order_and_dedup(self):
        col = Column("a", ["b", "a", "b", None, "c"])
        assert col.unique() == ["b", "a", "c"]

    def test_value_counts_sorted(self):
        counts = Column("a", ["x", "y", "x", "x"]).value_counts()
        assert list(counts.items()) == [("x", 3), ("y", 1)]

    def test_n_distinct_ignores_missing(self):
        assert Column("a", [1, 1, None, 2]).n_distinct == 2

    def test_numeric_values_requires_numeric(self):
        with pytest.raises(TypeError):
            Column("a", ["x"]).numeric_values()

    def test_numeric_values_has_nan_for_missing(self):
        values = Column("a", [1.0, None]).numeric_values()
        assert np.isnan(values[1])


class TestTransforms:
    def test_take(self):
        col = Column("a", [10, 20, 30]).take([2, 0])
        assert col.to_list() == [30.0, 10.0]

    def test_mask_rows(self):
        col = Column("a", [1, 2, 3]).mask_rows(np.array([True, False, True]))
        assert col.to_list() == [1.0, 3.0]

    def test_renamed(self):
        assert Column("a", [1]).renamed("b").name == "b"

    def test_copy_is_independent(self):
        col = Column("a", [1.0, 2.0])
        dup = col.copy()
        dup.data[0] = 99.0
        assert col[0] == 1.0

    def test_astype_numeric_from_strings(self):
        col = Column("a", ["1", "x", "3"], kind="string").astype_numeric()
        assert col.kind is ColumnKind.NUMERIC
        assert col.n_missing == 1

    def test_astype_string_formats_integers(self):
        col = Column("a", [1.0, 2.0]).astype_string()
        assert col.to_list() == ["1", "2"]

    def test_equality(self):
        assert Column("a", [1, 2]) == Column("a", [1, 2])
        assert Column("a", [1, 2]) != Column("a", [1, 3])
        assert Column("a", [1]) != Column("b", [1])


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("", [1])

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Column(123, [1])

    def test_bad_boolean_rejected(self):
        with pytest.raises(ValueError):
            Column("a", ["maybe"], kind="boolean")


class TestFormatValue:
    """Regression: bool must be checked before the numeric branches.

    ``bool`` subclasses ``int``, so an isinstance-ordered formatter that
    tests float/int first renders ``True`` as ``"1"`` — corrupting
    string-coerced columns that mix booleans with text.
    """

    def test_bools_format_as_words_not_digits(self):
        from repro.table.column import _format_value

        assert _format_value(True) == "true"
        assert _format_value(False) == "false"
        # the numeric branches still behave
        assert _format_value(1) == "1"
        assert _format_value(1.0) == "1"
        assert _format_value(2.5) == "2.5"

    def test_string_coerced_bool_cells(self):
        col = Column("c", [True, "word", False, None], kind="string")
        assert col.to_list() == ["true", "word", "false", None]
        assert col.unique() == ["true", "word", "false"]
