"""Typed columns with explicit missing-value masks.

A :class:`Column` stores its values in a numpy array plus a boolean
``missing`` mask.  Numeric columns use ``float64`` storage (missing slots
hold ``nan``); string and boolean columns use ``object`` storage (missing
slots hold ``None``).  Keeping the mask explicit avoids the usual
``nan``-in-object-array ambiguities when profiling dirty data.
"""

from __future__ import annotations

import enum
import math
from collections import Counter
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["Column", "ColumnKind"]


class ColumnKind(str, enum.Enum):
    """Physical storage kind of a column."""

    NUMERIC = "numeric"
    STRING = "string"
    BOOLEAN = "boolean"


_MISSING_TOKENS = {"", "na", "n/a", "nan", "null", "none", "?", "missing"}

_TRUE_TOKENS = {"true", "t", "yes", "y"}
_FALSE_TOKENS = {"false", "f", "no", "n"}


def _is_missing_scalar(value: Any) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str) and value.strip().lower() in _MISSING_TOKENS:
        return True
    return False


class Column:
    """A named, typed vector of values with a missing mask.

    Parameters
    ----------
    name:
        Column name; must be a non-empty string.
    values:
        Any iterable of scalars.  ``None``, ``nan`` and common textual
        missing tokens (``""``, ``"NA"``, ``"?"`` ...) are treated as
        missing.
    kind:
        Force a :class:`ColumnKind`; inferred from the values when omitted.
    """

    __slots__ = ("name", "kind", "data", "missing")

    def __init__(
        self,
        name: str,
        values: Iterable[Any],
        kind: ColumnKind | str | None = None,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError(f"column name must be a non-empty string, got {name!r}")
        self.name = name
        raw = list(values)
        if kind is not None:
            kind = ColumnKind(kind)
        else:
            kind = _infer_kind(raw)
        self.kind = kind
        self.data, self.missing = _coerce(raw, kind)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        name: str,
        data: np.ndarray,
        missing: np.ndarray | None = None,
        kind: ColumnKind | str | None = None,
    ) -> "Column":
        """Wrap pre-coerced numpy storage without re-inferring types."""
        col = cls.__new__(cls)
        col.name = name
        if kind is None:
            kind = ColumnKind.NUMERIC if data.dtype.kind == "f" else ColumnKind.STRING
        col.kind = ColumnKind(kind)
        col.data = data
        if missing is None:
            if data.dtype.kind == "f":
                missing = np.isnan(data)
            else:
                missing = np.array([v is None for v in data], dtype=bool)
        col.missing = missing
        return col

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return int(self.data.shape[0])

    def __iter__(self):
        for value, is_missing in zip(self.data, self.missing):
            yield None if is_missing else value

    def __getitem__(self, idx: int) -> Any:
        if self.missing[idx]:
            return None
        value = self.data[idx]
        if self.kind is ColumnKind.NUMERIC:
            return float(value)
        return value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind is not other.kind:
            return False
        if len(self) != len(other):
            return False
        return list(self) == list(other)

    def __repr__(self) -> str:
        return (
            f"Column(name={self.name!r}, kind={self.kind.value}, "
            f"n={len(self)}, missing={int(self.missing.sum())})"
        )

    # -- accessors --------------------------------------------------------------

    def to_list(self) -> list[Any]:
        """Values with missing entries as ``None``."""
        out = self.data.tolist()  # C-speed; floats become Python floats
        if self.missing.any():
            for i in np.nonzero(self.missing)[0].tolist():
                out[i] = None
        return out

    def non_missing(self) -> np.ndarray:
        """All present values, in row order."""
        return self.data[~self.missing]

    @property
    def n_missing(self) -> int:
        return int(self.missing.sum())

    @property
    def missing_fraction(self) -> float:
        return float(self.missing.mean()) if len(self) else 0.0

    def unique(self) -> list[Any]:
        """Distinct non-missing values, in first-seen order."""
        return list(dict.fromkeys(self.non_missing().tolist()))

    def value_counts(self) -> dict[Any, int]:
        """Counts of distinct non-missing values, most frequent first."""
        counts = Counter(self.non_missing().tolist())
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))

    @property
    def n_distinct(self) -> int:
        return len(self.unique())

    # -- transformation ----------------------------------------------------------

    def take(self, indices: Sequence[int] | np.ndarray) -> "Column":
        idx = np.asarray(indices, dtype=np.intp)
        return Column.from_numpy(self.name, self.data[idx], self.missing[idx], self.kind)

    def mask_rows(self, keep: np.ndarray) -> "Column":
        keep = np.asarray(keep, dtype=bool)
        return Column.from_numpy(self.name, self.data[keep], self.missing[keep], self.kind)

    def renamed(self, name: str) -> "Column":
        return Column.from_numpy(name, self.data, self.missing, self.kind)

    def copy(self) -> "Column":
        return Column.from_numpy(self.name, self.data.copy(), self.missing.copy(), self.kind)

    def astype_numeric(self) -> "Column":
        """Best-effort conversion to a numeric column (unparseable -> missing)."""
        if self.kind is ColumnKind.NUMERIC:
            return self.copy()
        return Column(self.name, list(self), kind=ColumnKind.NUMERIC)

    def astype_string(self) -> "Column":
        if self.kind is ColumnKind.STRING:
            return self.copy()
        values = [None if v is None else _format_value(v) for v in self]
        return Column(self.name, values, kind=ColumnKind.STRING)

    def fill_missing(self, fill_value: Any) -> "Column":
        values = [fill_value if v is None else v for v in self]
        return Column(self.name, values, kind=self.kind)

    def numeric_values(self) -> np.ndarray:
        """Float array with ``nan`` in missing slots (numeric columns only)."""
        if self.kind is not ColumnKind.NUMERIC:
            raise TypeError(f"column {self.name!r} is {self.kind.value}, not numeric")
        return self.data


def _infer_kind(values: list[Any]) -> ColumnKind:
    saw_bool = saw_number = saw_string = False
    for value in values:
        if _is_missing_scalar(value):
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, (int, float, np.integer, np.floating)):
            saw_number = True
        elif isinstance(value, str):
            token = value.strip().lower()
            if token in _TRUE_TOKENS or token in _FALSE_TOKENS:
                saw_bool = True
            else:
                try:
                    float(value)
                except ValueError:
                    saw_string = True
                else:
                    saw_number = True
        else:
            saw_string = True
    if saw_string:
        return ColumnKind.STRING
    if saw_number:
        return ColumnKind.NUMERIC
    if saw_bool:
        return ColumnKind.BOOLEAN
    return ColumnKind.STRING


def _coerce(values: list[Any], kind: ColumnKind) -> tuple[np.ndarray, np.ndarray]:
    n = len(values)
    missing = np.zeros(n, dtype=bool)
    if kind is ColumnKind.NUMERIC:
        data = np.empty(n, dtype=np.float64)
        for i, value in enumerate(values):
            if _is_missing_scalar(value):
                data[i] = np.nan
                missing[i] = True
                continue
            try:
                data[i] = float(value)
            except (TypeError, ValueError):
                data[i] = np.nan
                missing[i] = True
        return data, missing
    data = np.empty(n, dtype=object)
    for i, value in enumerate(values):
        if _is_missing_scalar(value):
            data[i] = None
            missing[i] = True
        elif kind is ColumnKind.BOOLEAN:
            data[i] = _to_bool(value)
        else:
            data[i] = _format_value(value)
    return data, missing


def _to_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return bool(value)
    token = str(value).strip().lower()
    if token in _TRUE_TOKENS:
        return True
    if token in _FALSE_TOKENS:
        return False
    raise ValueError(f"cannot interpret {value!r} as boolean")


def _format_value(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (float, np.floating)):
        as_float = float(value)
        if as_float.is_integer():
            return str(int(as_float))
        return repr(as_float)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
