"""Run-artifact store: persist prompts, pipelines, and reports to disk.

A production deployment of CatDB materializes every generated artifact so
pipelines can be scrutinized and re-executed later ("this generation
process allows for materialization, scrutiny, and correction before
deployment" — paper Section 6).  ``ArtifactStore`` writes one directory
per generation run:

    <root>/<dataset>/<run_id>/
        pipeline.py        the final validated pipeline source
        report.json        metrics, costs, errors, fixes
        catalog.json       the data catalog the prompts were built from
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.catalog.catalog import DataCatalog
from repro.generation.generator import GenerationReport

__all__ = ["ArtifactStore", "RunArtifact"]


def _slug(text: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_-]+", "-", text).strip("-")
    return cleaned or "run"


@dataclass
class RunArtifact:
    """Paths of one persisted run."""

    run_id: str
    directory: Path
    pipeline_path: Path
    report_path: Path
    catalog_path: Path | None


class ArtifactStore:
    """Directory-backed store of generation runs."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._counter = 0

    def _next_run_id(self, report: GenerationReport) -> str:
        self._counter += 1
        stamp = time.strftime("%Y%m%d-%H%M%S")
        return f"{stamp}-{_slug(report.llm)}-{self._counter:03d}"

    def save(
        self,
        report: GenerationReport,
        catalog: DataCatalog | None = None,
        run_id: str | None = None,
    ) -> RunArtifact:
        """Persist one run; returns the written paths."""
        run_id = run_id or self._next_run_id(report)
        directory = self.root / _slug(report.dataset) / _slug(run_id)
        directory.mkdir(parents=True, exist_ok=True)

        pipeline_path = directory / "pipeline.py"
        pipeline_path.write_text(report.code, encoding="utf-8")

        report_path = directory / "report.json"
        report_path.write_text(
            json.dumps(self._report_payload(report), indent=2, default=str),
            encoding="utf-8",
        )

        catalog_path = None
        if catalog is not None:
            catalog_path = directory / "catalog.json"
            catalog.save(catalog_path)
        return RunArtifact(
            run_id=run_id, directory=directory,
            pipeline_path=pipeline_path, report_path=report_path,
            catalog_path=catalog_path,
        )

    @staticmethod
    def _report_payload(report: GenerationReport) -> dict[str, Any]:
        return {
            "dataset": report.dataset,
            "llm": report.llm,
            "variant": report.variant,
            "success": report.success,
            "metrics": report.metrics,
            "errors": [
                {"type": e.error_type.name, "group": e.group.value,
                 "message": e.message, "line": e.line}
                for e in report.errors
            ],
            "tokens": {
                "prompt": report.cost.prompt_tokens,
                "completion": report.cost.completion_tokens,
                "total": report.cost.total_tokens,
                "pipeline": report.cost.pipeline_cost(),
                "error_handling": report.cost.error_cost(),
                "by_section": report.cost.cost_by_section(),
            },
            "interactions": {
                "gamma": report.cost.gamma,
                "error_prompts": report.cost.n_error_prompts,
                "kb_fixes": report.kb_fixes,
                "llm_fixes": report.llm_fixes,
                "fallback_used": report.fallback_used,
            },
            "seconds": {
                "generation": report.generation_seconds,
                "llm_latency": report.llm_latency_seconds,
                "pipeline_runtime": report.pipeline_runtime_seconds,
                "end_to_end": report.end_to_end_seconds,
            },
        }

    # -- retrieval -----------------------------------------------------------------

    def list_runs(self, dataset: str | None = None) -> list[RunArtifact]:
        """All persisted runs, newest last."""
        runs: list[RunArtifact] = []
        datasets = (
            [self.root / _slug(dataset)] if dataset is not None
            else sorted(p for p in self.root.iterdir() if p.is_dir())
        )
        for dataset_dir in datasets:
            if not dataset_dir.is_dir():
                continue
            for run_dir in sorted(p for p in dataset_dir.iterdir() if p.is_dir()):
                catalog_path = run_dir / "catalog.json"
                runs.append(RunArtifact(
                    run_id=run_dir.name,
                    directory=run_dir,
                    pipeline_path=run_dir / "pipeline.py",
                    report_path=run_dir / "report.json",
                    catalog_path=catalog_path if catalog_path.exists() else None,
                ))
        return runs

    def load_report(self, artifact: RunArtifact) -> dict[str, Any]:
        return json.loads(artifact.report_path.read_text(encoding="utf-8"))

    def load_pipeline(self, artifact: RunArtifact) -> str:
        return artifact.pipeline_path.read_text(encoding="utf-8")
