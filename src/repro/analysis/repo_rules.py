"""Self-lint rules for the repro codebase (profile ``"repo"``).

These encode repo invariants that unit tests cannot cheaply pin:

- ``unseeded-random``   — the substrate must be deterministic end to end;
  any global-RNG draw breaks the soak's bit-identical guarantee
- ``wall-clock``        — cached or parallel code must not read wall
  clocks; cache keys and traces built from ``time.time()`` /
  ``datetime.now()`` differ across runs (monotonic timers are fine)
- ``lock-reentry``      — a method holding a non-reentrant lock must not
  call another method of the same object that re-acquires the same lock.
  This is exactly the ``CircuitBreaker.failure_rate`` deadlock class
  fixed in PR 3: ``before_call`` held ``self._lock`` and called
  ``failure_rate()``, which blocked acquiring it again.
- ``swallowed-base-exception`` — an ``except BaseException:`` (or bare
  ``except:``) handler that neither re-raises nor uses the bound
  exception eats ``KeyboardInterrupt``/``SystemExit`` and the pool's
  timeout alarms; containment code must classify-and-reraise, never
  silently drop
- ``unbounded-wait``    — ``.join()`` / ``.wait()`` / ``.result()``
  with no timeout blocks forever when the peer dies; every blocking
  wait in the substrate must carry a deadline
- ``per-row-iteration`` — the table layer is dictionary-encoded and
  vectorized; a Python loop over row indices (``for i in
  range(table.n_rows)``, ``for i in range(len(col))`` + ``col[i]``)
  runs orders of magnitude slower than the columnar kernels.
  Deliberate per-row fallbacks carry a ``# repro: allow-per-row``
  pragma on the ``for`` line.

Run with ``repro lint src/repro --profile repo``; CI fails on errors.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.rules import AnalysisContext, Finding, Severity

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "LockReentryRule",
    "SwallowedBaseExceptionRule",
    "UnboundedWaitRule",
    "PerRowIterationRule",
    "REPO_RULES",
]

_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed",
}

_NP_RANDOM_SEEDED = {"default_rng", "SeedSequence", "Generator", "BitGenerator"}


class UnseededRandomRule:
    """Global-RNG draws are nondeterministic across processes and runs."""

    id = "unseeded-random"
    description = "global RNG use breaks substrate determinism"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            message: str | None = None
            if dotted.startswith("numpy.random."):
                attr = dotted.split(".", 2)[2]
                if attr == "default_rng" and not node.args and not node.keywords:
                    message = "numpy.random.default_rng() without a seed"
                elif "." not in attr and attr not in _NP_RANDOM_SEEDED:
                    message = f"numpy global RNG call 'np.random.{attr}'"
            elif dotted.startswith("random."):
                attr = dotted.split(".", 1)[1]
                if attr in _GLOBAL_RANDOM_FNS:
                    message = f"stdlib global RNG call 'random.{attr}'"
            if message is not None:
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message=f"{message} (thread a seeded Generator instead)",
                    line=node.lineno,
                )


#: wall-clock reads; monotonic/perf_counter/process_time are deliberately OK
_WALL_CLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "datetime.date.today": "date.today()",
}


class WallClockRule:
    """Wall-clock reads poison cache keys and cross-run comparisons."""

    id = "wall-clock"
    description = "wall-clock read in substrate code (use monotonic timers)"
    default_severity = Severity.WARNING

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message=f"wall-clock read {_WALL_CLOCK_CALLS[dotted]!r} "
                            "(prefer time.monotonic()/perf_counter() for "
                            "durations; pass timestamps in for records)",
                    line=node.lineno,
                )


class LockReentryRule:
    """Holding a non-reentrant lock while calling a method that re-acquires it.

    Per class: collect ``self.<attr> = threading.Lock()`` assignments
    (``RLock`` is reentrant and excluded), map each method to the lock
    attributes it acquires via ``with self.<attr>:``, then flag any
    ``self.<method>(...)`` call made *inside* such a ``with`` block when
    the callee acquires the same attribute.  That call can never return —
    it deadlocks the first time the branch executes.
    """

    id = "lock-reentry"
    description = "re-acquiring a held non-reentrant lock deadlocks"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: AnalysisContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._lock_attrs(ctx, methods)
        if not lock_attrs:
            return
        acquires = {m.name: self._acquired_attrs(m, lock_attrs) for m in methods}
        for method in methods:
            for with_node, attr in self._with_blocks(method, lock_attrs):
                for call in ast.walk(with_node):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = self._self_method(call.func)
                    if callee is not None and attr in acquires.get(callee, set()):
                        yield Finding(
                            rule_id=self.id,
                            severity=self.default_severity,
                            message=(
                                f"{cls.name}.{method.name} holds "
                                f"'self.{attr}' and calls self.{callee}(), "
                                f"which re-acquires 'self.{attr}' — this "
                                "deadlocks (use a _locked helper or RLock)"
                            ),
                            line=call.lineno,
                        )

    @staticmethod
    def _lock_attrs(
        ctx: AnalysisContext,
        methods: list[ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> set[str]:
        attrs: set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                if not (
                    isinstance(node.value, ast.Call)
                    and ctx.dotted_name(node.value.func) == "threading.Lock"
                ):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
        return attrs

    @staticmethod
    def _self_lock_attr(node: ast.AST, lock_attrs: set[str]) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in lock_attrs
        ):
            return node.attr
        return None

    @classmethod
    def _with_blocks(
        cls,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> Iterator[tuple[ast.With | ast.AsyncWith, str]]:
        for node in ast.walk(method):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                attr = cls._self_lock_attr(item.context_expr, lock_attrs)
                if attr is not None:
                    yield node, attr

    @classmethod
    def _acquired_attrs(
        cls,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> set[str]:
        acquired: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = cls._self_lock_attr(item.context_expr, lock_attrs)
                    if attr is not None:
                        acquired.add(attr)
            elif isinstance(node, ast.Call):
                # self.X.acquire() counts too
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "acquire"
                    and cls._self_lock_attr(func.value, lock_attrs) is not None
                ):
                    acquired.add(func.value.attr)  # type: ignore[union-attr]
        return acquired

    @staticmethod
    def _self_method(func: ast.AST) -> str | None:
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return func.attr
        return None


class SwallowedBaseExceptionRule:
    """``except BaseException``/bare ``except`` must not eat the exception.

    ``BaseException`` covers ``KeyboardInterrupt``, ``SystemExit`` and the
    execution pool's timeout alarms — a handler that neither re-raises
    nor touches the bound exception turns all of them into silent
    no-ops.  Handlers that *classify* the exception (use the ``as exc``
    name) or re-raise on any path are fine; so is
    ``contextlib.suppress`` of narrower exceptions, but
    ``contextlib.suppress(BaseException)`` is flagged too.
    """

    id = "swallowed-base-exception"
    description = "BaseException handler that neither re-raises nor inspects"
    default_severity = Severity.ERROR

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_suppress(ctx, node)

    def _check_handler(
        self, ctx: AnalysisContext, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if handler.type is None:
            caught = "bare 'except:'"
        elif ctx.dotted_name(handler.type) in ("BaseException", "builtins.BaseException"):
            caught = "'except BaseException:'"
        else:
            return
        if self._reraises(handler) or self._uses_bound_name(handler):
            return
        yield Finding(
            rule_id=self.id,
            severity=self.default_severity,
            message=f"{caught} swallows KeyboardInterrupt/SystemExit and "
                    "timeout alarms without re-raising or classifying "
                    "(catch Exception, or re-raise after cleanup)",
            line=handler.lineno,
        )

    def _check_suppress(
        self, ctx: AnalysisContext, call: ast.Call
    ) -> Iterator[Finding]:
        if ctx.dotted_name(call.func) != "contextlib.suppress":
            return
        for arg in call.args:
            if ctx.dotted_name(arg) in ("BaseException", "builtins.BaseException"):
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message="contextlib.suppress(BaseException) swallows "
                            "KeyboardInterrupt/SystemExit and timeout alarms "
                            "(suppress a narrower exception type)",
                    line=call.lineno,
                )
                return

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) for n in ast.walk(handler))

    @staticmethod
    def _uses_bound_name(handler: ast.ExceptHandler) -> bool:
        if handler.name is None:
            return False
        return any(
            isinstance(n, ast.Name) and n.id == handler.name
            for stmt in handler.body
            for n in ast.walk(stmt)
        )


class UnboundedWaitRule:
    """Blocking waits must carry a timeout.

    A zero-argument ``.join()`` / ``.wait()`` / ``.result()`` blocks the
    caller forever if the peer thread, process or future never finishes
    — exactly the hang class the deadline/watchdog machinery exists to
    prevent.  Any positional or keyword argument exempts the call
    (``sep.join(parts)`` and ``q.join(...)`` never collide because
    string joins always pass an iterable).
    """

    id = "unbounded-wait"
    description = "blocking wait without a timeout can hang forever"
    default_severity = Severity.ERROR

    _BLOCKING = frozenset({"join", "wait", "result"})

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._BLOCKING
                and not node.args
                and not node.keywords
            ):
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message=f"'.{node.func.attr}()' without a timeout blocks "
                            "forever if the peer never finishes (pass "
                            "timeout=... and handle the expiry)",
                    line=node.lineno,
                )


class PerRowIterationRule:
    """Python row loops over Columns/Tables defeat the columnar layer.

    Two shapes are flagged:

    - ``for ... in range(<expr>.n_rows)`` (or ``range(a, <expr>.n_rows)``)
      — iterating row indices of a table is per-row by construction;
    - ``for i in range(len(X))`` whose body subscripts ``X[i]`` — the
      classic index-and-peek loop; each ``col[i]`` crosses the
      Python/array boundary once per row.

    Deliberate fallbacks (pathological pools, unhashable cells, seed
    reference implementations in tests) stay allowed with a
    ``# repro: allow-per-row`` pragma on the ``for`` line.
    """

    id = "per-row-iteration"
    description = "per-row loop over a Column/Table (use the vectorized kernels)"
    default_severity = Severity.WARNING

    _PRAGMA = "repro: allow-per-row"

    def check(self, ctx: AnalysisContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            line = ctx.lines[node.lineno - 1] if node.lineno <= len(ctx.lines) else ""
            if self._PRAGMA in line:
                continue
            yield from self._check_loop(node)

    def _check_loop(self, loop: ast.For | ast.AsyncFor) -> Iterator[Finding]:
        rng = self._range_call(loop.iter)
        if rng is None:
            return
        for arg in rng.args:
            if isinstance(arg, ast.Attribute) and arg.attr == "n_rows":
                yield Finding(
                    rule_id=self.id,
                    severity=self.default_severity,
                    message="loop over range(....n_rows) visits the table "
                            "row by row (use take/mask_rows/codes kernels, "
                            "or mark a deliberate fallback with "
                            f"'# {self._PRAGMA}')",
                    line=loop.lineno,
                )
                return
        subscripted = self._len_subscript_target(loop, rng)
        if subscripted is not None:
            yield Finding(
                rule_id=self.id,
                severity=self.default_severity,
                message=f"'for i in range(len({subscripted}))' with "
                        f"'{subscripted}[i]' in the body reads one cell per "
                        "iteration (vectorize, or mark a deliberate "
                        f"fallback with '# {self._PRAGMA}')",
                line=loop.lineno,
            )

    @staticmethod
    def _range_call(iter_node: ast.AST) -> ast.Call | None:
        """The ``range(...)`` call behind the iterable, unwrapping
        ``enumerate``/``reversed``/``zip`` shells."""
        node = iter_node
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("enumerate", "reversed", "zip")
            and node.args
        ):
            node = node.args[0]
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"
        ):
            return node
        return None

    @classmethod
    def _len_subscript_target(
        cls, loop: ast.For | ast.AsyncFor, rng: ast.Call
    ) -> str | None:
        """Name ``X`` when the loop is ``for i in range(len(X))`` and the
        body contains ``X[i]``; otherwise ``None``."""
        if len(rng.args) != 1 or not isinstance(loop.target, ast.Name):
            return None
        call = rng.args[0]
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "len"
            and len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
        ):
            return None
        seq = call.args[0].id
        index = loop.target.id
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == seq
                    and isinstance(node.slice, ast.Name)
                    and node.slice.id == index
                ):
                    return seq
        return None


#: the self-lint profile run over ``src/repro`` in CI
REPO_RULES = (
    UnseededRandomRule(),
    WallClockRule(),
    LockReentryRule(),
    SwallowedBaseExceptionRule(),
    UnboundedWaitRule(),
    PerRowIterationRule(),
)
