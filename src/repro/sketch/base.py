"""Shared substrate for the mergeable-summary sketches.

Every sketch in this package follows one contract:

- ``update(...)`` folds a batch of values (with their *global* row
  indices where ordering matters) into the summary;
- ``merge(other)`` combines two summaries of disjoint row ranges into
  the summary of their union — the operation is associative and
  commutative, so shards and chunks can be summarized independently and
  combined in any grouping;
- an *exact mode* keeps the raw state while it stays below a
  configurable cardinality bound, so small inputs round-trip through the
  sketch without any approximation (and the streaming profiler can
  reproduce the batch profiler bit-for-bit).

Determinism is seeded, never salted: hashes are keyed by material drawn
from a :class:`numpy.random.SeedSequence`, so two processes with the
same seed produce identical summaries (unlike builtin ``hash``, which is
``PYTHONHASHSEED``-salted).
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "SketchConfig",
    "encode_value",
    "encode_distinct",
    "hash64",
    "hash64_many",
    "priority_for_tokens",
    "priority_for_floats",
    "seed_material",
    "typed_cell_key",
    "typed_factorize",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class SketchConfig:
    """Size/threshold knobs shared by every sketch of one profiling run.

    ``exact_threshold`` is the cardinality (or buffer-size) bound below
    which sketches keep exact state; ``kmv_k`` bounds the distinct-count
    sketch (relative error ~ 1/sqrt(k-2)); ``heavy_k`` bounds the
    SpaceSaving counter table after exact mode overflows.
    """

    seed: int = 0
    kmv_k: int = 1024
    heavy_k: int = 256
    exact_threshold: int = 8192
    quantile_k: int = 2048
    evidence_k: int = 200
    stats_cap: int = 5000
    corr_category_cap: int = 512
    contingency_cap: int = 4096

    def spawn_key(self, *scope: Any) -> int:
        """A stable 64-bit hash key for one (seed, scope) combination."""
        seq = np.random.SeedSequence(
            [self.seed] + [zlib.crc32(str(part).encode("utf-8")) for part in scope]
        )
        state = seq.generate_state(2, dtype=np.uint64)
        return int(state[0] ^ (state[1] >> np.uint64(1)))


def seed_material(seed: int, *scope: Any) -> int:
    """Stable 64-bit key from a seed plus arbitrary scope labels."""
    return SketchConfig(seed=seed).spawn_key(*scope)


def encode_value(value: Any) -> bytes:
    """Canonical byte encoding used by hash-based sketches.

    Floats encode as their little-endian IEEE-754 bytes (injective per
    distinct float), strings as UTF-8, booleans as one byte.  The 1-byte
    type tag keeps the three views from colliding.
    """
    if value is None:
        return b"\x00"
    if isinstance(value, bool):
        return b"\x03\x01" if value else b"\x03\x00"
    if isinstance(value, float):
        return b"\x02" + struct.pack("<d", value)
    if isinstance(value, str):
        return b"\x01" + value.encode("utf-8", "surrogatepass")
    return b"\x01" + str(value).encode("utf-8", "surrogatepass")


_KEY_SAFE_TYPES = (
    str, bool, int, float, type(None), np.bool_, np.integer, np.floating
)


def typed_cell_key(value: Any) -> tuple:
    """Dict key under which equal-and-same-rendering values collapse.

    Plain equality is too coarse for per-distinct work: ``True``/``1``/
    ``1.0`` share a hash slot but parse, format, and encode differently,
    and ``0.0``/``-0.0`` differ in their IEEE-754 bytes.  Typing the key
    (plus a sign tag for float zero) keeps such values apart.  Raises
    ``TypeError`` for types without value-determined rendering (e.g.
    ``Decimal("1")`` equals ``Decimal("1.0")`` but prints differently),
    so callers fall back to their per-cell path.
    """
    if isinstance(value, float) and value == 0.0:
        return (value.__class__, 0.0, math.copysign(1.0, value))
    if isinstance(value, _KEY_SAFE_TYPES):
        return (value.__class__, value)
    raise TypeError(f"no stable distinct key for {type(value).__name__}")


def typed_factorize(values: list) -> tuple[list, np.ndarray] | None:
    """First-seen distinct values + per-cell codes, keyed per type.

    The substrate for doing parse/format/hash work once per *distinct*
    value and gathering results by code.  Returns ``None`` when any cell
    is unhashable or of a type :func:`typed_cell_key` cannot key.
    """
    index: dict[tuple, int] = {}
    distinct: list = []
    codes = np.empty(len(values), dtype=np.int64)
    try:
        for i, value in enumerate(values):
            key = typed_cell_key(value)
            code = index.get(key)
            if code is None:
                code = index[key] = len(distinct)
                distinct.append(value)
            codes[i] = code
    except TypeError:
        return None
    return distinct, codes


def encode_distinct(values: list) -> tuple[list[bytes], np.ndarray] | None:
    """Factorize by :func:`encode_value` bytes: encodings + per-cell codes.

    Unlike :func:`typed_factorize` this merges values whose *encodings*
    coincide (``1`` and ``"1"`` both encode as ``b"\\x01" + b"1"``), so
    the result is exactly the per-cell encoding stream, deduplicated.
    """
    factorized = typed_factorize(values)
    if factorized is None:
        return None
    distinct, codes = factorized
    by_encoding: dict[bytes, int] = {}
    remap = np.empty(len(distinct), dtype=np.int64)
    encodings: list[bytes] = []
    for t_code, value in enumerate(distinct):
        data = encode_value(value)
        final = by_encoding.get(data)
        if final is None:
            final = by_encoding[data] = len(encodings)
            encodings.append(data)
        remap[t_code] = final
    return encodings, remap[codes]


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer — a well-mixed 64-bit permutation."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
    x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
    x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
    return x ^ (x >> np.uint64(31))


def hash64(key: int, data: bytes) -> int:
    """Seeded 64-bit hash of one encoded value (scalar path)."""
    crc_lo = zlib.crc32(data)
    crc_hi = zlib.crc32(data, 0x9E3779B9)
    packed = ((crc_hi << 32) | crc_lo) ^ (key & 0xFFFFFFFFFFFFFFFF)
    # 0-d arrays keep uint64 arithmetic in silent-wraparound (array) mode
    return int(_splitmix64(np.array([packed], dtype=np.uint64))[0])


def hash64_many(key: int, encodings: "list[bytes]") -> np.ndarray:
    """Batched :func:`hash64` — identical values, one finalizer pass.

    The per-call scalar path pays a numpy array construction per value;
    at chunk sizes that dominates sketch updates, so the hot loops hash
    whole chunks through this instead.
    """
    packed = np.fromiter(
        ((zlib.crc32(data, 0x9E3779B9) << 32) | zlib.crc32(data)
         for data in encodings),
        dtype=np.uint64,
        count=len(encodings),
    )
    return _splitmix64(packed ^ np.uint64(key & 0xFFFFFFFFFFFFFFFF))


def priority_for_tokens(
    key: int, rows: "np.ndarray | list[int]", tokens: "list[str]"
) -> np.ndarray:
    """Deterministic per-(row, value) priorities for bottom-k sampling.

    The priority depends only on ``(key, row, token)``, so the k lowest
    priorities over a multiset of rows form an order-invariant sample:
    chunking, sharding, and merge grouping cannot change the selection.
    """
    crcs = np.fromiter(
        (zlib.crc32(token.encode("utf-8", "surrogatepass")) for token in tokens),
        dtype=np.uint64,
        count=len(tokens),
    )
    rows64 = np.asarray(rows, dtype=np.uint64)
    return _splitmix64((rows64 << np.uint64(32)) ^ crcs ^ np.uint64(key & 0xFFFFFFFFFFFFFFFF))


def priority_for_floats(
    key: int, rows: "np.ndarray | list[int]", values: np.ndarray
) -> np.ndarray:
    """Vectorized priorities for float values (C-speed, no per-value loop)."""
    bits = np.ascontiguousarray(np.asarray(values, dtype=np.float64)).view(np.uint64)
    rows64 = np.asarray(rows, dtype=np.uint64)
    return _splitmix64(
        (rows64 << np.uint64(32)) ^ _splitmix64(bits) ^ np.uint64(key & 0xFFFFFFFFFFFFFFFF)
    )
