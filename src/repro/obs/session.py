"""Run sessions: scope a tracer + metrics registry to one run and persist it.

``enable_tracing()`` flips the process-wide switch (the CLI's ``--trace``
and the ``REPRO_TRACE`` environment variable both land here).  While the
switch is off, :func:`run_session` yields ``None`` without allocating
anything, so instrumented call sites cost one function call.

While the switch is on, each outermost ``run_session`` installs a fresh
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`, opens a root span, and on
exit appends one :class:`~repro.obs.ledger.RunRecord` to the ledger.
Nested ``run_session`` calls (e.g. an experiment driver inside a traced
CLI invocation) reuse the active session instead of emitting a second
record.

Session tracking is ``contextvars``-based (thread- and context-local),
not a module global: two runs observed concurrently — e.g. scheduler
workers each driving one grid cell — open disjoint sessions and emit one
ledger record each, while nesting within one thread still reuses the
outer session.
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.ledger import RunLedger, RunRecord
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.obs.trace import Tracer, set_tracer

__all__ = [
    "RunSession",
    "run_session",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "active_session",
    "configured_ledger_path",
]

_TRACE_ENV = "REPRO_TRACE"

_enabled = False
_ledger_path: Path | None = None
# Thread-/context-local: concurrent runs must not conflate into one record.
_active_session: contextvars.ContextVar["RunSession | None"] = (
    contextvars.ContextVar("repro_active_session", default=None)
)


def enable_tracing(ledger_path: str | Path | None = None) -> None:
    """Turn on observability for subsequent :func:`run_session` calls."""
    global _enabled, _ledger_path
    _enabled = True
    if ledger_path is not None:
        _ledger_path = Path(ledger_path)


def disable_tracing() -> None:
    global _enabled, _ledger_path
    _enabled = False
    _ledger_path = None


def tracing_enabled() -> bool:
    if _enabled:
        return True
    return os.environ.get(_TRACE_ENV, "").strip() not in ("", "0", "false")


def active_session() -> "RunSession | None":
    return _active_session.get()


def configured_ledger_path() -> Path:
    """The ledger path runs record to: ``enable_tracing``'s override or
    the ``$REPRO_RUNS_DIR``/``runs/`` default."""
    from repro.obs.ledger import default_ledger_path

    return _ledger_path if _ledger_path is not None else default_ledger_path()


class RunSession:
    """One observed run: its tracer, metrics, and the record being built."""

    def __init__(
        self,
        kind: str,
        dataset: str = "",
        llm: str = "",
        config: dict[str, Any] | None = None,
        ledger_path: str | Path | None = None,
    ) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.kind = kind
        self.dataset = dataset
        self.llm = llm
        self.config = dict(config or {})
        self.outcome: dict[str, Any] = {}
        self.run_id = RunRecord.new_id()
        self.ledger = RunLedger(ledger_path or _ledger_path)
        self.record: RunRecord | None = None

    def build_record(self) -> RunRecord:
        return RunRecord(
            run_id=self.run_id,
            kind=self.kind,
            created_at=RunRecord.now_iso(),
            dataset=self.dataset,
            llm=self.llm,
            config=self.config,
            outcome=self.outcome,
            metrics=self.metrics.snapshot(),
            spans=self.tracer.to_dicts(),
        )


@contextmanager
def run_session(
    kind: str,
    dataset: str = "",
    llm: str = "",
    config: dict[str, Any] | None = None,
    ledger_path: str | Path | None = None,
    force: bool = False,
) -> Iterator[RunSession | None]:
    """Observe one run; no-op (yields ``None``) when tracing is off.

    ``force=True`` opens a session regardless of the global switch
    (used by tests and the CLI, which enables + forces explicitly).
    """
    if not (force or tracing_enabled()):
        yield None
        return
    outer = _active_session.get()
    if outer is not None:  # nested in this context: reuse the outer session
        yield outer
        return
    session = RunSession(
        kind, dataset=dataset, llm=llm, config=config, ledger_path=ledger_path
    )
    previous_tracer = set_tracer(session.tracer)
    previous_metrics = set_metrics(session.metrics)
    token = _active_session.set(session)
    try:
        with session.tracer.span(
            f"run.{kind}", dataset=dataset, llm=llm
        ) as root:
            try:
                yield session
            finally:
                root.set(**{
                    k: v for k, v in session.outcome.items()
                    if isinstance(v, (str, int, float, bool))
                })
    finally:
        _active_session.reset(token)
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)
        session.record = session.build_record()
        session.ledger.append(session.record)
