"""CAAFE-like baseline: LLM feature engineering on top of a fixed model.

CAAFE (Hollmann et al., NeurIPS 2023) keeps pre-processing and the model
fixed (TabPFN by default) and asks the LLM only for new features, keeping
each proposal if holdout performance improves.  The paper extends CAAFE
with a RandomForest backend for scalability and notes two weaknesses this
baseline reproduces: prompts carry schema *plus ten sample rows per
feature* (high token cost on wide data), and TabPFN's limits make it fail
with out-of-memory on large datasets.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.baselines.base import (
    BaselineReport,
    default_vectorize,
    evaluate_predictions,
    traced_baseline_run,
)
from repro.generation.validator import extract_code_block
from repro.llm.base import LLMClient
from repro.llm.mock import embed_payload
from repro.ml.forest import RandomForestClassifier
from repro.ml.neighbors import TabPFNProxy
from repro.ml.metrics import accuracy_score
from repro.ml.model_selection import train_test_split
from repro.table.table import Table

__all__ = ["CAAFEBaseline"]


class CAAFEBaseline:
    """Semi-automated feature engineering with a fixed downstream model."""

    # paper-scale row count beyond which TabPFN runs out of memory
    # (Gas-Drift's 13.9k rows still worked in Figure 11(b); Volkert's 58k
    # and Yelp's 230k did not)
    TABPFN_MAX_DATASET_ROWS = 30_000

    def __init__(
        self,
        llm: LLMClient,
        model: str = "tabpfn",
        n_rounds: int = 2,
        seed: int = 0,
    ) -> None:
        if model not in ("tabpfn", "rforest"):
            raise ValueError("model must be 'tabpfn' or 'rforest'")
        self.llm = llm
        self.model = model
        self.n_rounds = n_rounds
        self.seed = seed
        self.name = f"caafe-{model}"

    # -- prompt ----------------------------------------------------------------

    def _schema_with_samples(self, table: Table, target: str) -> list[dict[str, Any]]:
        entries = []
        for column in table:
            if column.name == target:
                continue
            samples = [v for v in column.to_list()[:10]]
            entries.append({
                "name": column.name,
                "data_type": {
                    "numeric": "number", "string": "string", "boolean": "boolean"
                }[column.kind.value],
                "samples": samples,
            })
        return entries

    def _feature_prompt(self, table: Table, target: str, round_index: int) -> str:
        schema = self._schema_with_samples(table, target)
        lines = [
            "# CAAFE feature engineering",
            f"Target column: {target}. Propose derived features that could",
            "improve a fixed downstream classifier. Dataset columns with 10",
            "sample values each:",
        ]
        for entry in schema:
            lines.append(f"- {entry['name']} ({entry['data_type']}): {entry['samples']!r}")
        lines.append(embed_payload({
            "task": "caafe_features",
            "schema": schema,
            "round": round_index,
        }))
        return "\n".join(lines)

    # -- run ----------------------------------------------------------------------

    @traced_baseline_run
    def run(
        self,
        train: Table,
        test: Table,
        target: str,
        task_type: str,
        meta: dict[str, Any] | None = None,
    ) -> BaselineReport:
        report = BaselineReport(system=self.name, dataset=train.name)
        start = time.perf_counter()
        if task_type == "regression":
            report.failure_reason = "N/A (doesn't support regression)"
            report.runtime_seconds = time.perf_counter() - start
            return report
        # TabPFN blows GPU memory beyond a few tens of thousands of rows at
        # the *original* dataset scale (the paper's Yelp/Volkert/Airline
        # failures); the reproduction runs on scaled-down data, so the
        # envelope is checked against the paper-scale row count.
        paper_rows = float((meta or {}).get("paper_rows", train.n_rows))
        if self.model == "tabpfn" and paper_rows > self.TABPFN_MAX_DATASET_ROWS:
            report.failure_reason = "OOM"
            report.details["error"] = (
                f"TabPFN cannot fit {paper_rows:.0f}-row datasets"
            )
            report.runtime_seconds = time.perf_counter() - start
            return report

        labels_for_split = [str(v) for v in train[target]]
        fit_part, val_part = train_test_split(
            train, test_size=0.3, random_state=self.seed, stratify=labels_for_split
        )
        try:
            best_score = self._holdout_score(fit_part, val_part, target)
        except MemoryError as exc:
            report.failure_reason = "OOM"
            report.details["error"] = str(exc)
            report.runtime_seconds = time.perf_counter() - start
            return report
        working_train, working_test = train, test

        for round_index in range(self.n_rounds):
            prompt = self._feature_prompt(working_train, target, round_index)
            response = self.llm.complete(prompt)
            report.prompt_tokens += response.prompt_tokens
            report.completion_tokens += response.completion_tokens
            report.n_llm_requests += 1
            report.llm_latency_seconds += float(
                response.metadata.get("latency_seconds", 0.0)
            )
            snippet = extract_code_block(response.content)
            engineered = self._apply_snippet(snippet, fit_part, val_part)
            if engineered is None:
                continue  # CAAFE skips feature engineering on errors
            new_fit, new_val = engineered
            try:
                score = self._holdout_score(new_fit, new_val, target)
            except MemoryError:
                continue  # engineered features pushed past the model's limits
            if score > best_score:
                best_score = score
                applied = self._apply_snippet(snippet, working_train, working_test)
                if applied is not None:
                    working_train, working_test = applied
                    fit_part, val_part = new_fit, new_val

        report.total_tokens = report.prompt_tokens + report.completion_tokens
        pipeline_start = time.perf_counter()
        try:
            metrics = self._fit_final(working_train, working_test, target, task_type)
        except MemoryError as exc:
            report.failure_reason = "OOM"
            report.details["error"] = str(exc)
            report.runtime_seconds = time.perf_counter() - start
            return report
        except Exception as exc:  # noqa: BLE001
            report.failure_reason = f"N/A ({type(exc).__name__})"
            report.runtime_seconds = time.perf_counter() - start
            return report
        report.pipeline_runtime_seconds = time.perf_counter() - pipeline_start
        report.metrics = metrics
        report.success = True
        report.runtime_seconds = time.perf_counter() - start
        return report

    # -- helpers -----------------------------------------------------------------------

    def _apply_snippet(
        self, snippet: str, a: Table, b: Table
    ) -> tuple[Table, Table] | None:
        namespace: dict[str, Any] = {}
        try:
            exec(compile(snippet, "<caafe>", "exec"), namespace)  # noqa: S102
            engineer = namespace["engineer_features"]
            return engineer(a.copy()), engineer(b.copy())
        except Exception:  # noqa: BLE001 - CAAFE skips on errors
            return None

    def _make_model(self, n_train: int):
        if self.model == "tabpfn":
            return TabPFNProxy()
        return RandomForestClassifier(
            n_estimators=40, max_depth=12, random_state=self.seed
        )

    def _cap_for_tabpfn(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """CAAFE feeds TabPFN at most its supported training-sample count."""
        if self.model != "tabpfn" or X.shape[0] <= 1000:
            return X, y
        rng = np.random.default_rng(self.seed)
        picks = rng.choice(X.shape[0], size=1000, replace=False)
        return X[picks], y[picks]

    def _holdout_score(self, fit_part: Table, val_part: Table, target: str) -> float:
        try:
            X_fit, X_val, _ = default_vectorize(fit_part, val_part, target)
            y_fit = np.asarray([str(v) for v in fit_part[target]], dtype=object)
            y_val = np.asarray([str(v) for v in val_part[target]], dtype=object)
            X_fit, y_fit = self._cap_for_tabpfn(X_fit, y_fit)
            model = self._make_model(X_fit.shape[0])
            model.fit(X_fit, y_fit)
            return accuracy_score(y_val, model.predict(X_val))
        except MemoryError:
            raise
        except Exception:  # noqa: BLE001
            return -1.0

    def _fit_final(
        self, train: Table, test: Table, target: str, task_type: str
    ) -> dict[str, float]:
        X_train, X_test, _ = default_vectorize(train, test, target)
        y_train = np.asarray([str(v) for v in train[target]], dtype=object)
        y_test = np.asarray([str(v) for v in test[target]], dtype=object)
        X_fit, y_fit = self._cap_for_tabpfn(X_train, y_train)
        model = self._make_model(X_fit.shape[0])
        model.fit(X_fit, y_fit)
        return evaluate_predictions(
            task_type, y_train, y_test,
            model.predict(X_train), model.predict(X_test),
            model.predict_proba(X_train), model.predict_proba(X_test),
            list(model.classes_),
        )
