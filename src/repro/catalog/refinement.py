"""LLM-assisted data catalog refinement (paper Section 3.2, Figures 4-5).

Three refinements run per string column, each driven by an LLM call
(answered offline by :class:`repro.llm.MockLLM`'s semantic layer):

1. **Feature-type inference** from the attribute name plus ~10 samples —
   Sentence columns become List / Categorical / Composite / Numerical.
2. **Composite splitting** — e.g. ``Address`` mixing zips and state codes
   splits into ``State`` and ``Zip`` columns.
3. **Categorical deduplication** — semantically equivalent spellings map
   onto one canonical value ("F"/"Female" -> "Female"), batch-wise for
   large domains.

The result carries the refined table, the updated catalog, per-column
distinct counts before/after (the paper's Table 4), and an operations log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.catalog.catalog import ColumnProfile, DataCatalog
from repro.catalog.feature_types import FeatureType
from repro.catalog.profiler import profile_table
from repro.llm import semantics
from repro.llm.base import LLMClient
from repro.llm.mock import embed_payload
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.table.column import Column, ColumnKind
from repro.table.table import Table

__all__ = ["RefinementResult", "refine_catalog"]

_SAMPLES_FOR_TYPING = 10
_DEDUPE_BATCH = 40


@dataclass
class RefinementResult:
    """Outcome of one catalog-refinement pass."""

    table: Table
    catalog: DataCatalog
    operations: list[dict[str, Any]] = field(default_factory=list)
    distinct_before: dict[str, int] = field(default_factory=dict)
    distinct_after: dict[str, int] = field(default_factory=dict)
    category_mappings: dict[str, dict[Any, Any]] = field(default_factory=dict)

    @property
    def n_refined_columns(self) -> int:
        return len(self.operations)


def _ask_feature_type(llm: LLMClient, name: str, samples: list[Any]) -> dict[str, Any]:
    prompt = (
        f"Infer the ML feature type of attribute {name!r} from these sample "
        f"values: {samples!r}. Answer with a JSON object.\n"
        + embed_payload({"task": "feature_type", "column": name, "samples": samples})
    )
    return json.loads(llm.complete(prompt).content)


def _ask_dedupe(llm: LLMClient, name: str, values: list[Any]) -> dict[Any, str]:
    """Batch-wise category deduplication through the LLM."""
    mapping: dict[Any, str] = {}
    for start in range(0, len(values), _DEDUPE_BATCH):
        batch = values[start : start + _DEDUPE_BATCH]
        prompt = (
            f"These are distinct values of the categorical attribute {name!r}. "
            "Map semantically equivalent values to one canonical spelling and "
            "answer with a JSON mapping.\n"
            + embed_payload({"task": "dedupe", "column": name, "values": batch})
        )
        raw = json.loads(llm.complete(prompt).content)
        for original in batch:
            mapping[original] = raw.get(str(original), str(original))
    return mapping


def _dedupe_column(
    table: Table, name: str, llm: LLMClient, result: "RefinementResult"
) -> Table:
    """LLM-dedupe one categorical column in place; records the mapping,
    the operation log entry, and the before/after distinct counts."""
    column = table[name]
    distinct_values = column.unique()
    result.distinct_before.setdefault(name, len(distinct_values))
    mapping = _ask_dedupe(llm, name, distinct_values)
    changed = {k: v for k, v in mapping.items() if str(k) != v}
    new_values = [
        None if v is None else mapping.get(v, str(v)) for v in column
    ]
    new_column = Column(name, new_values, kind=ColumnKind.STRING)
    rebuilt = Table(
        (
            new_column if existing == name else table[existing]
            for existing in table.column_names
        ),
        name=table.name,
    )
    result.category_mappings[name] = dict(mapping)
    after = new_column.n_distinct
    result.distinct_after[name] = after
    result.operations.append(
        {"column": name, "op": "dedupe_categories",
         "n_merged": len(changed), "distinct_after": after}
    )
    return rebuilt


def refine_catalog(
    table: Table,
    catalog: DataCatalog,
    llm: LLMClient,
    dedupe_numeric_categoricals: bool = False,
) -> RefinementResult:
    """Run the full refinement workflow of Figure 4 on one table."""
    with get_tracer().span(
        "refine.catalog", dataset=table.name, cols=table.n_cols
    ) as span:
        result = _refine_catalog_impl(
            table, catalog, llm, dedupe_numeric_categoricals
        )
        span.set(operations=len(result.operations))
        metrics = get_metrics()
        for op in result.operations:
            metrics.inc("refine.ops", op=op["op"])
        return result


def _refine_catalog_impl(
    table: Table,
    catalog: DataCatalog,
    llm: LLMClient,
    dedupe_numeric_categoricals: bool = False,
) -> RefinementResult:
    result = RefinementResult(table=table, catalog=catalog)
    out = table

    for profile in list(catalog.profiles()):
        name = profile.name
        if name not in out:
            continue
        if name == catalog.info.target:
            # the target itself can carry semantically duplicate labels
            # (the paper's EU IT case: "semantically identical but
            # differently formatted duplicates"); dedupe them — but never
            # drop, split, or retype the label column
            if (
                catalog.info.task_type != "regression"
                and out[name].kind is ColumnKind.STRING
            ):
                out = _dedupe_column(out, name, llm, result)
            continue
        column = out[name]
        if profile.feature_type is FeatureType.CONSTANT:
            out = out.drop([name])
            result.operations.append({"column": name, "op": "drop_constant"})
            continue
        if column.kind is not ColumnKind.STRING:
            continue
        if profile.feature_type not in (
            FeatureType.SENTENCE,
            FeatureType.CATEGORICAL,
            FeatureType.LIST,
        ):
            continue

        result.distinct_before.setdefault(name, profile.distinct_count)
        samples = [v for v in column.unique()[:_SAMPLES_FOR_TYPING]]
        answer = _ask_feature_type(llm, name, samples)
        inferred = answer.get("feature_type", profile.feature_type.value)

        if inferred == "List":
            delimiter = answer.get("delimiter", ",")
            items: set[str] = set()
            for cell in column:
                if cell is None:
                    continue
                items.update(
                    part.strip() for part in str(cell).split(delimiter) if part.strip()
                )
            result.distinct_after[name] = len(items)
            result.operations.append(
                {"column": name, "op": "list_feature", "delimiter": delimiter,
                 "n_items": len(items)}
            )
            _update_profile(catalog, name, feature_type=FeatureType.LIST,
                            distinct_count=len(items), extra={"list_delimiter": delimiter})
        elif inferred == "Composite":
            spec = semantics.detect_composite(column.unique())
            if spec is None:
                continue
            new_columns: dict[str, list[Any]] = {part: [] for part in spec.parts}
            for cell in column:
                parts = spec.split(cell)
                for part in spec.parts:
                    new_columns[part].append(parts[part])
            out = out.drop([name])
            new_names = []
            for part, values in new_columns.items():
                new_name = part if part not in out else f"{name}_{part}"
                out.add_column(Column(new_name, values))
                new_names.append(new_name)
            result.operations.append(
                {"column": name, "op": "composite_split", "parts": new_names}
            )
            replacements = []
            for new_name in new_names:
                new_col = out[new_name]
                replacements.append(_profile_like(new_col, origin=name))
                result.distinct_after[new_name] = new_col.n_distinct
            catalog.replace(name, replacements)
        elif inferred == "Numerical":
            converted = column.astype_numeric()
            rebuilt = Table(
                (
                    converted if existing == name else out[existing]
                    for existing in out.column_names
                ),
                name=out.name,
            )
            out = rebuilt
            result.operations.append({"column": name, "op": "to_numeric"})
            _update_profile(catalog, name, feature_type=FeatureType.NUMERICAL,
                            distinct_count=converted.n_distinct)
            result.distinct_after[name] = converted.n_distinct
        else:  # Categorical: dedupe values
            out = _dedupe_column(out, name, llm, result)
            after = result.distinct_after[name]
            _update_profile(
                catalog, name, feature_type=FeatureType.CATEGORICAL,
                distinct_count=after,
                categorical_values=out[name].unique(),
            )

    # re-profile so downstream prompts see the refined statistics
    refreshed = profile_table(
        out,
        target=catalog.info.target,
        task_type=catalog.info.task_type,
        n_tables=catalog.info.n_tables,
        file_path=catalog.info.file_path,
        delimiter=catalog.info.delimiter,
        description=catalog.info.description,
    )
    # carry refinement annotations (list delimiters) over to the new catalog
    delimiters = {
        op["column"]: op["delimiter"]
        for op in result.operations
        if op["op"] == "list_feature"
    }
    for profile in refreshed.profiles():
        if profile.name in delimiters:
            profile.feature_type = FeatureType.LIST
            profile.is_categorical = False
            profile.list_delimiter = delimiters[profile.name]
    result.table = out
    result.catalog = refreshed
    return result


def _update_profile(
    catalog: DataCatalog,
    name: str,
    feature_type: FeatureType,
    distinct_count: int | None = None,
    categorical_values: list[Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> None:
    profile = catalog[name]
    profile.feature_type = feature_type
    profile.is_categorical = feature_type is FeatureType.CATEGORICAL
    if distinct_count is not None:
        profile.distinct_count = distinct_count
    if categorical_values is not None:
        profile.categorical_values = categorical_values
        profile.samples = list(categorical_values)


def _profile_like(column: Column, origin: str) -> ColumnProfile:
    """Quick profile for a refinement-created column."""
    from repro.catalog.feature_types import infer_feature_type_heuristic

    n = len(column)
    present = [v for v in column if v is not None]
    distinct = column.n_distinct
    feature_type = infer_feature_type_heuristic(
        present, distinct / n if n else 0.0, column.kind is ColumnKind.NUMERIC, n
    )
    return ColumnProfile(
        name=column.name,
        data_type="number" if column.kind is ColumnKind.NUMERIC else "string",
        feature_type=feature_type,
        is_categorical=feature_type is FeatureType.CATEGORICAL,
        distinct_count=distinct,
        distinct_percentage=100.0 * distinct / n if n else 0.0,
        missing_count=column.n_missing,
        missing_percentage=100.0 * column.n_missing / n if n else 0.0,
        samples=column.unique()[:10],
        categorical_values=column.unique() if feature_type is FeatureType.CATEGORICAL else [],
        refined_from=origin,
    )
