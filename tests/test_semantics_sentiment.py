"""Tests for the sentence-to-category sentiment mapping (Survey case)."""

import pytest

from repro.llm.semantics import dedupe_categories, normalize_category


class TestSentimentMapping:
    @pytest.mark.parametrize("text,expected", [
        ("not satisfied at all", "Low"),
        ("2 out of 10", "Low"),
        ("very low satisfaction", "Low"),
        ("it is okay overall", "Medium"),
        ("5 out of 10", "Medium"),
        ("moderate satisfaction", "Medium"),
        ("extremely satisfied user", "High"),
        ("9 out of 10", "High"),
        ("very high satisfaction", "High"),
    ])
    def test_sentences_map_to_levels(self, text, expected):
        assert normalize_category(text) == expected

    def test_single_words_unaffected(self):
        # single non-rating tokens keep the ordinary normalization path
        assert normalize_category("Berlin") == "Berlin"

    def test_survey_feature_collapses_to_three_levels(self):
        values = [
            "not satisfied at all", "2 out of 10", "very low satisfaction",
            "it is okay overall", "5 out of 10", "moderate satisfaction",
            "extremely satisfied user", "9 out of 10", "very high satisfaction",
        ]
        mapping = dedupe_categories(values)
        assert set(mapping.values()) == {"Low", "Medium", "High"}

    def test_refinement_turns_survey_sentences_categorical(self):
        from repro.catalog.refinement import refine_catalog
        from repro.datasets.registry import load_dataset
        from repro.llm.mock import MockLLM

        bundle = load_dataset("survey", n=400)
        catalog = bundle.profile()
        result = refine_catalog(
            bundle.unified, catalog, MockLLM("gemini-1.5", fault_injection=False)
        )
        before = result.distinct_before.get("satisfaction_text")
        after = result.distinct_after.get("satisfaction_text")
        assert before is not None and after is not None
        assert after <= 4 < before
