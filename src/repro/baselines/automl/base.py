"""The shared mini-AutoML engine.

A tool is a candidate portfolio plus a search policy over it, run under a
wall-clock time budget and a (paper-scale) memory envelope.  The paper's
protocol sets the AutoML time budget to the measured CatDB runtime
(Section 5.5); the engine honours whatever budget the caller passes.

Failure modes reproduce the paper's markers:

- **OOM** — the tool refuses datasets whose *paper-scale* size
  (``paper_cells = paper_rows x paper_cols``, carried via ``meta``)
  exceeds its memory envelope.  The reproduction runs on scaled-down data,
  so the envelope is checked against the original dataset's footprint —
  that is what actually blew up in the paper's testbed.
- **TO** — no candidate finished within the budget (virtual startup cost
  plus real search time).
- **N/A** — the tool does not support the task configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.baselines.base import (
    BaselineReport,
    default_vectorize,
    evaluate_predictions,
    traced_baseline_run,
)
from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import accuracy_score, r2_score
from repro.ml.model_selection import train_test_split
from repro.table.table import Table

__all__ = ["Candidate", "AutoMLResult", "MiniAutoML"]


@dataclass(frozen=True)
class Candidate:
    """One configuration in a tool's portfolio."""

    name: str
    factory: Callable[[], BaseEstimator]
    cost_rank: float = 1.0  # relative training cost estimate (for FLAML-style ordering)


@dataclass
class AutoMLResult:
    """Internal search outcome before reporting."""

    best_name: str = ""
    leaderboard: list[tuple[str, float]] = field(default_factory=list)
    n_evaluated: int = 0


class MiniAutoML:
    """Time-budgeted model search with holdout validation.

    Subclasses (or instances) configure: portfolio, search order,
    ensembling, memory envelope, virtual startup cost, and task support.
    """

    name = "mini-automl"
    # paper-scale memory envelope in cells (rows x cols of the original data)
    memory_envelope_cells: float = 1e9
    # virtual seconds charged against the budget before any search happens
    startup_seconds_classification: float = 0.0
    startup_seconds_regression: float = 0.0
    # ensemble the top-k finished candidates (1 = winner only)
    ensemble_top_k: int = 1
    supports_regression = True
    supports_classification = True
    max_regression_target_cardinality: int | None = None

    def __init__(self, time_budget_seconds: float = 10.0, seed: int = 0) -> None:
        self.time_budget_seconds = time_budget_seconds
        self.seed = seed

    # -- portfolio ------------------------------------------------------------------

    def portfolio(self, task_type: str, n_rows: int, n_features: int) -> list[Candidate]:
        raise NotImplementedError

    def search_order(self, candidates: list[Candidate]) -> list[Candidate]:
        """Default: portfolio order."""
        return candidates

    # -- main entry ------------------------------------------------------------------

    @traced_baseline_run
    def run(
        self,
        train: Table,
        test: Table,
        target: str,
        task_type: str,
        meta: dict[str, Any] | None = None,
    ) -> BaselineReport:
        meta = dict(meta or {})
        report = BaselineReport(system=self.name, dataset=train.name)
        start = time.perf_counter()

        reason = self._check_support(train, target, task_type, meta)
        if reason:
            report.failure_reason = reason
            report.runtime_seconds = time.perf_counter() - start
            return report

        startup = (
            self.startup_seconds_regression
            if task_type == "regression"
            else self.startup_seconds_classification
        )
        budget = self.time_budget_seconds - startup
        if budget <= 0:
            report.failure_reason = "TO"
            report.runtime_seconds = time.perf_counter() - start
            return report

        try:
            X_train, X_test, _vec = default_vectorize(train, test, target)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
            report.failure_reason = f"N/A ({type(exc).__name__})"
            report.runtime_seconds = time.perf_counter() - start
            return report
        if task_type == "regression":
            y_train = train[target].astype_numeric().numeric_values()
            y_test = test[target].astype_numeric().numeric_values()
            keep = ~np.isnan(y_train)
            X_train, y_train = X_train[keep], y_train[keep]
        else:
            y_train = np.asarray([str(v) for v in train[target]], dtype=object)
            y_test = np.asarray([str(v) for v in test[target]], dtype=object)

        search_start = time.perf_counter()
        fitted, result = self._search(X_train, y_train, task_type, budget)
        if not fitted:
            report.failure_reason = "TO"
            report.runtime_seconds = time.perf_counter() - start
            report.details["leaderboard"] = result.leaderboard
            return report

        pipeline_start = time.perf_counter()
        top = fitted[: self.ensemble_top_k]
        train_pred, train_proba, labels = self._ensemble_predict(top, X_train, task_type)
        test_pred, test_proba, _ = self._ensemble_predict(top, X_test, task_type)
        report.pipeline_runtime_seconds = time.perf_counter() - pipeline_start
        report.metrics = evaluate_predictions(
            task_type, y_train, y_test, train_pred, test_pred,
            train_proba, test_proba, labels,
        )
        report.success = True
        report.runtime_seconds = (time.perf_counter() - start) + startup
        report.details = {
            "best": result.best_name,
            "leaderboard": result.leaderboard,
            "n_evaluated": result.n_evaluated,
            "search_seconds": time.perf_counter() - search_start,
        }
        return report

    # -- internals -------------------------------------------------------------------

    def _check_support(
        self, train: Table, target: str, task_type: str, meta: dict[str, Any]
    ) -> str:
        if task_type == "regression" and not self.supports_regression:
            return "N/A (regression unsupported)"
        if task_type != "regression" and not self.supports_classification:
            return "N/A (classification unsupported)"
        if (
            task_type == "regression"
            and self.max_regression_target_cardinality is not None
            and train[target].n_distinct > self.max_regression_target_cardinality
        ):
            return "N/A (no trained models)"
        paper_cells = float(meta.get(
            "paper_cells", train.n_rows * train.n_cols
        ))
        if paper_cells > self.memory_envelope_cells:
            return "OOM"
        return ""

    def _search(
        self,
        X: np.ndarray,
        y: np.ndarray,
        task_type: str,
        budget_seconds: float,
    ) -> tuple[list[tuple[BaseEstimator, float]], AutoMLResult]:
        """Evaluate candidates until the budget runs out; returns fitted
        (estimator, validation score) pairs sorted best-first."""
        candidates = self.search_order(
            self.portfolio(task_type, X.shape[0], X.shape[1])
        )
        stratify = y if task_type != "regression" else None
        X_fit, X_val, y_fit, y_val = train_test_split(
            X, y, test_size=0.25, random_state=self.seed, stratify=stratify
        )
        scorer = r2_score if task_type == "regression" else accuracy_score
        result = AutoMLResult()
        fitted: list[tuple[BaseEstimator, float]] = []
        deadline = time.perf_counter() + budget_seconds
        for candidate in candidates:
            if time.perf_counter() >= deadline and fitted:
                break
            if time.perf_counter() >= deadline and not fitted:
                break
            try:
                model = candidate.factory()
                model.fit(X_fit, y_fit)
                score = scorer(y_val, model.predict(X_val))
            except Exception:  # noqa: BLE001 - a failed config is skipped
                continue
            result.n_evaluated += 1
            result.leaderboard.append((candidate.name, round(float(score), 4)))
            fitted.append((model, float(score)))
        fitted.sort(key=lambda pair: -pair[1])
        result.leaderboard.sort(key=lambda pair: -pair[1])
        if fitted:
            result.best_name = result.leaderboard[0][0]
            # refit the winners on the full training data
            refit: list[tuple[BaseEstimator, float]] = []
            for model, score in fitted[: max(1, self.ensemble_top_k)]:
                fresh = clone(model)
                fresh.fit(X, y)
                refit.append((fresh, score))
            fitted = refit + fitted[max(1, self.ensemble_top_k):]
        return fitted, result

    def _ensemble_predict(
        self,
        fitted: Sequence[tuple[BaseEstimator, float]],
        X: np.ndarray,
        task_type: str,
    ) -> tuple[np.ndarray, np.ndarray | None, list | None]:
        if task_type == "regression":
            preds = np.mean([model.predict(X) for model, _ in fitted], axis=0)
            return preds, None, None
        # align class probability matrices over the union label order
        labels = sorted(
            {label for model, _ in fitted for label in model.classes_}, key=str
        )
        index = {label: i for i, label in enumerate(labels)}
        total = np.zeros((X.shape[0], len(labels)))
        for model, _score in fitted:
            if hasattr(model, "predict_proba"):
                proba = model.predict_proba(X)
                for j, label in enumerate(model.classes_):
                    total[:, index[label]] += proba[:, j]
            else:
                for i, label in enumerate(model.predict(X)):
                    total[i, index[label]] += 1.0
        total /= max(1, len(fitted))
        picks = np.argmax(total, axis=1)
        preds = np.asarray([labels[p] for p in picks], dtype=object)
        return preds, total, labels
