"""Execution-mode and pool configuration (env-resolvable, import-light).

This module is imported by :mod:`repro.generation.executor` at module
load, so it must not import anything from the executor side — it only
reads environment variables and holds the :class:`PoolConfig` value
object.  The knobs:

- ``REPRO_EXEC_MODE``            — ``inproc`` (default) | ``pool``
- ``REPRO_EXEC_MEMORY_MB``       — per-execution address-space soft
  limit applied inside pool workers (unset = unlimited)
- ``REPRO_EXEC_POOL_SIZE``       — max warm workers (default: CPU count)
- ``REPRO_EXEC_MAX_JOBS_PER_WORKER`` — recycle a worker after N jobs
- ``REPRO_EXEC_KILL_GRACE``      — extra seconds past the wall-clock
  budget before the parent SIGKILLs an unresponsive worker
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "EXEC_MODES",
    "MODE_ENV",
    "MEMORY_ENV",
    "PoolConfig",
    "resolve_exec_mode",
    "resolve_memory_mb",
    "pool_config_from_env",
]

EXEC_MODES = ("inproc", "pool")

MODE_ENV = "REPRO_EXEC_MODE"
MEMORY_ENV = "REPRO_EXEC_MEMORY_MB"
_POOL_SIZE_ENV = "REPRO_EXEC_POOL_SIZE"
_MAX_JOBS_ENV = "REPRO_EXEC_MAX_JOBS_PER_WORKER"
_KILL_GRACE_ENV = "REPRO_EXEC_KILL_GRACE"


def resolve_exec_mode(mode: str | None = None) -> str:
    """Normalize an execution mode: explicit arg > ``$REPRO_EXEC_MODE`` >
    ``inproc``.  Raises ``ValueError`` on anything else."""
    if mode is None:
        mode = os.environ.get(MODE_ENV, "").strip().lower() or "inproc"
    if mode not in EXEC_MODES:
        raise ValueError(
            f"unknown exec mode {mode!r}; expected one of {EXEC_MODES}"
        )
    return mode


def resolve_memory_mb(memory_mb: int | None = None) -> int | None:
    """Per-execution memory cap: explicit arg > ``$REPRO_EXEC_MEMORY_MB``
    > unlimited (``None``).  ``0`` or negative also means unlimited."""
    if memory_mb is None:
        env = os.environ.get(MEMORY_ENV, "").strip()
        if not env:
            return None
        try:
            memory_mb = int(env)
        except ValueError:
            return None
    return memory_mb if memory_mb > 0 else None


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _float_env(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class PoolConfig:
    """Sizing and containment knobs for one :class:`~repro.execpool.pool.\
ExecPool`."""

    size: int = 0  # 0 = one worker per CPU core
    memory_mb: int | None = None  # default per-execution RLIMIT_AS (soft)
    max_jobs_per_worker: int = 64  # recycle cadence (leak containment)
    kill_grace_seconds: float = 1.0  # past-budget slack before SIGKILL
    spawn_timeout_seconds: float = 60.0  # worker must report ready by then

    def resolved_size(self) -> int:
        if self.size > 0:
            return self.size
        return os.cpu_count() or 1


def pool_config_from_env() -> PoolConfig:
    """The default pool configuration (the ``get_pool()`` singleton's)."""
    return PoolConfig(
        size=_int_env(_POOL_SIZE_ENV, 0),
        memory_mb=resolve_memory_mb(None),
        max_jobs_per_worker=max(1, _int_env(_MAX_JOBS_ENV, 64)),
        kill_grace_seconds=max(0.1, _float_env(_KILL_GRACE_ENV, 1.0)),
    )
