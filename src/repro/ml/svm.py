"""Linear support-vector machine trained with SGD on the hinge loss.

Rounds out the model zoo available to generated pipelines and AutoML
portfolios: a max-margin linear classifier with L2 regularization and a
Platt-style logistic link for probability estimates.  Multi-class is
one-vs-rest over the sorted label set.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, check_X, check_X_y

__all__ = ["LinearSVC"]


class LinearSVC(BaseEstimator, ClassifierMixin):
    """L2-regularized linear SVM (hinge loss, averaged SGD)."""

    def __init__(
        self,
        alpha: float = 1e-4,
        max_iter: int = 30,
        learning_rate: float = 0.05,
        random_state: int = 0,
    ) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.random_state = random_state

    def fit(self, X: Any, y: Any) -> "LinearSVC":
        X, y = check_X_y(X, y)
        self.classes_ = sorted(set(y.tolist()), key=str)
        if len(self.classes_) < 2:
            raise ValueError("LinearSVC needs at least two classes")
        mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._mu, self._sigma = mean, np.where(std > 0, std, 1.0)
        Z = (X - self._mu) / self._sigma
        n, d = Z.shape
        rng = np.random.default_rng(self.random_state)

        self.coef_ = np.zeros((len(self.classes_), d))
        self.intercept_ = np.zeros(len(self.classes_))
        for c, label in enumerate(self.classes_):
            target = np.where(y == label, 1.0, -1.0)
            w = np.zeros(d)
            b = 0.0
            w_sum = np.zeros(d)
            b_sum = 0.0
            steps = 0
            for epoch in range(self.max_iter):
                order = rng.permutation(n)
                eta = self.learning_rate / (1.0 + 0.1 * epoch)
                for i in order:
                    margin = target[i] * (Z[i] @ w + b)
                    w *= 1.0 - eta * self.alpha
                    if margin < 1.0:
                        w += eta * target[i] * Z[i]
                        b += eta * target[i]
                    w_sum += w
                    b_sum += b
                    steps += 1
            self.coef_[c] = w_sum / steps
            self.intercept_[c] = b_sum / steps
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        Z = (X - self._mu) / self._sigma
        scores = Z @ self.coef_.T + self.intercept_
        if len(self.classes_) == 2:
            return scores[:, 1]  # sklearn-style single margin for binary
        return scores

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        Z = (X - self._mu) / self._sigma
        scores = Z @ self.coef_.T + self.intercept_
        picks = np.argmax(scores, axis=1)
        return np.asarray([self.classes_[p] for p in picks], dtype=object)

    def predict_proba(self, X: Any) -> np.ndarray:
        """Logistic squash of the margins (Platt-flavoured, uncalibrated)."""
        self._check_fitted("coef_")
        X = check_X(X)
        Z = (X - self._mu) / self._sigma
        scores = Z @ self.coef_.T + self.intercept_
        expit = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
        totals = expit.sum(axis=1, keepdims=True)
        return expit / np.where(totals > 0, totals, 1.0)
