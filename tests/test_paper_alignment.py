"""Paper-alignment tests: published constants encoded as assertions.

These tests pin the reproduction's structures to the paper's published
facts — dataset inventory (Table 3), metadata combinations (Table 1),
error taxonomy size (Section 4.2), Table-2 error mixes, and the dataset
groups each experiment uses — so drift from the paper is caught by CI.
"""

import pytest

from repro.datasets.registry import DATASET_SPECS
from repro.experiments.fig11_iterations import ITERATION_DATASETS
from repro.experiments.fig13_tokens import FIG13_DATASETS
from repro.experiments.table4_refinement import REFINEMENT_DATASETS
from repro.experiments.table7_single_iteration import TABLE7_DATASETS
from repro.generation.errors import ERROR_TYPES, ErrorGroup
from repro.llm.profiles import get_profile
from repro.prompt.combinations import METADATA_COMBINATIONS


class TestTable3Inventory:
    """Dataset facts straight from the paper's Table 3."""

    PAPER_TABLE_3 = {
        # name: (tables, rows, cols, classes)
        "wifi": (1, 98, 9, 2),
        "diabetes": (1, 768, 9, 2),
        "tictactoe": (1, 958, 10, 2),
        "imdb": (7, 30_530_313, 15, 2),
        "kdd98": (1, 82_318, 478, 2),
        "walking": (1, 149_332, 5, 22),
        "cmc": (1, 1_473, 10, 3),
        "eu_it": (1, 1_253, 23, 148),
        "survey": (1, 2_778, 29, 9),
        "etailing": (1, 439, 44, 5),
        "accidents": (3, 954_036, 46, 6),
        "financial": (8, 552_017, 62, 4),
        "airline": (19, 445_827, 115, 3),
        "gas_drift": (1, 13_910, 129, 6),
        "volkert": (1, 58_310, 181, 10),
        "yelp": (4, 229_907, 194, 9),
        "bike_sharing": (1, 17_379, 12, 869),
        "utility": (1, 4_574, 13, 95),
        "nyc": (1, 581_835, 17, 1_811),
        "house_sales": (1, 21_613, 18, 4_028),
    }

    def test_all_20_registered(self):
        assert set(DATASET_SPECS) == set(self.PAPER_TABLE_3)

    @pytest.mark.parametrize("name", sorted(PAPER_TABLE_3))
    def test_paper_scale_facts(self, name):
        spec = DATASET_SPECS[name]
        tables, rows, cols, classes = self.PAPER_TABLE_3[name]
        assert spec.paper_tables == tables
        assert spec.paper_rows == rows
        assert spec.paper_cols == cols
        assert spec.paper_classes == classes


class TestTable1Combinations:
    """The check-mark pattern of the paper's Table 1."""

    # (distinct, missing, statistics, categorical) per combination number
    PAPER_TABLE_1 = {
        1: (0, 0, 0, 0), 2: (1, 0, 0, 0), 3: (0, 1, 0, 0), 4: (0, 0, 1, 0),
        5: (0, 0, 0, 1), 6: (1, 1, 0, 0), 7: (1, 0, 1, 0), 8: (0, 1, 1, 0),
        9: (0, 1, 0, 1), 10: (0, 0, 1, 1), 11: (1, 1, 1, 1),
    }

    @pytest.mark.parametrize("number", sorted(PAPER_TABLE_1))
    def test_pattern(self, number):
        combo = METADATA_COMBINATIONS[number]
        expected = self.PAPER_TABLE_1[number]
        actual = (
            int(combo.distinct_value_count),
            int(combo.missing_value_frequency),
            int(combo.basic_statistics),
            int(combo.categorical_values),
        )
        assert actual == expected


class TestErrorTaxonomy:
    def test_23_types_as_in_figure_8(self):
        assert len(ERROR_TYPES) == 23

    def test_kb_group_has_six_types(self):
        """'The CatDB Knowledge Base (KB) API manages six error types.'"""
        kb = [e for e in ERROR_TYPES.values() if e.group is ErrorGroup.KB]
        assert len(kb) == 6

    def test_within_group_weights_normalised(self):
        for group in ErrorGroup:
            total = sum(e.weight for e in ERROR_TYPES.values()
                        if e.group is group)
            assert total == pytest.approx(1.0, abs=0.02)


class TestTable2Calibration:
    def test_llama_row(self):
        profile = get_profile("llama3.1-70b")
        kb, se, re = profile.error_mix
        assert kb == pytest.approx(0.02464, abs=0.005)
        assert se == pytest.approx(0.02907, abs=0.005)
        assert re == pytest.approx(0.94629, abs=0.005)

    def test_gemini_row(self):
        profile = get_profile("gemini-1.5")
        kb, se, re = profile.error_mix
        assert kb == pytest.approx(0.21213, abs=0.005)
        assert se == pytest.approx(0.02092, abs=0.005)
        assert re == pytest.approx(0.76695, abs=0.005)


class TestExperimentDatasetGroups:
    def test_refinement_six(self):
        """Tables 4-6 use EU IT, Wifi, Etailing, Survey, Utility, Yelp."""
        assert set(REFINEMENT_DATASETS) == {
            "eu_it", "wifi", "etailing", "survey", "utility", "yelp"
        }

    def test_iteration_three(self):
        """Figures 11-12 use Diabetes, Gas-Drift, Volkert."""
        assert set(ITERATION_DATASETS) == {"diabetes", "gas_drift", "volkert"}

    def test_table7_eight(self):
        assert set(TABLE7_DATASETS) == {
            "airline", "imdb", "accidents", "financial",
            "cmc", "bike_sharing", "house_sales", "nyc",
        }

    def test_fig13_ten(self):
        assert len(FIG13_DATASETS) == 10
