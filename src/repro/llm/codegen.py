"""Pipeline code generation — what the simulated LLM "writes".

Given the parsed prompt payload (dataset info, projected schema, rules),
this module emits a complete, runnable Python pipeline script against
:mod:`repro.table` / :mod:`repro.ml`.  The quality of the emitted code
*depends on what the prompt contains*, exactly like a real LLM:

- columns absent from the prompt's schema are not used;
- missing-value handling is only emitted when the prompt exposes
  missing-value metadata or an imputation rule (otherwise the code either
  drops incomplete rows or ignores the problem, by model quality);
- categorical encodings degrade to ordinal codes when the prompt lacks
  distinct-value/categorical metadata;
- numeric columns are normalized/clipped only when statistics are present;
- without model-selection rules, weak models may fall back to a slow
  exhaustive grid search (the Llama behaviour in Table 8).

The emitted script defines ``run_pipeline(train, test)`` returning a
metrics dict; :mod:`repro.generation.executor` runs it.
"""

from __future__ import annotations

import pprint
from typing import Any

from repro.llm.profiles import LLMProfile
from repro.llm.rand import stable_hash, weighted_pick

__all__ = ["generate_pipeline_code", "build_encoding_plan", "choose_model"]


def _schema_by_name(payload: dict[str, Any]) -> dict[str, dict[str, Any]]:
    entries = list(payload.get("previous_schema", [])) + list(payload.get("schema", []))
    by_name: dict[str, dict[str, Any]] = {}
    for entry in entries:
        by_name[entry["name"]] = entry
    return by_name


def _rules_by_kind(payload: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {rule["kind"]: rule for rule in payload.get("rules", [])}


def build_encoding_plan(
    payload: dict[str, Any], profile: LLMProfile, salt: int
) -> tuple[dict[str, dict[str, Any]], list[str], list[str]]:
    """Derive (plan, features, dropped) from the prompt contents.

    Returns the per-column encoding plan, the feature list the pipeline
    will use, and the columns it explicitly drops.
    """
    dataset = payload.get("dataset", {})
    target = dataset.get("target")
    schema = _schema_by_name(payload)
    rules = _rules_by_kind(payload)
    impute_rule = rules.get("impute_missing")
    normalize_rule = rules.get("normalize")
    clip_rule = rules.get("clip_outliers")

    plan: dict[str, dict[str, Any]] = {}
    features: list[str] = []
    dropped: list[str] = []
    for name, entry in schema.items():
        if name == target:
            continue
        feature_type = entry.get("feature_type", "")
        if not feature_type:
            # schema-only prompts (AIDE-style) leave the model to guess the
            # feature type from the physical data type
            data_type = entry.get("data_type", "number")
            feature_type = {
                "string": "Categorical",
                "boolean": "Boolean",
            }.get(data_type, "Numerical")
        if feature_type in ("Constant", "Id"):
            dropped.append(name)
            continue
        missing_pct = entry.get("missing_percentage")
        has_missing_info = missing_pct is not None
        spec: dict[str, Any]
        if feature_type == "List":
            spec = {
                "encode": "khot",
                "delimiter": entry.get("list_delimiter", ","),
                "max_items": 64,
            }
        elif feature_type == "Sentence":
            spec = {"encode": "hash", "n_features": 16}
        elif feature_type == "Boolean":
            spec = {"encode": "ordinal"}
        elif feature_type == "Categorical":
            has_cat_info = bool(entry.get("categorical_values")) or (
                entry.get("distinct_count") is not None
            )
            if has_cat_info:
                distinct = entry.get("distinct_count") or len(
                    entry.get("categorical_values") or []
                )
                if distinct and distinct > 64:
                    spec = {"encode": "hash", "n_features": 32}
                else:
                    spec = {"encode": "onehot", "max_categories": 50}
            elif entry.get("data_type") == "number":
                # prompt gave no categorical evidence: model treats the
                # 7-distinct-integers column as plain numeric (the paper's
                # motivating mistake in Section 3.4)
                spec = _numeric_spec(
                    entry, impute_rule, normalize_rule, clip_rule,
                    has_missing_info, profile, salt,
                )
            else:
                spec = {"encode": "ordinal"}
        else:  # Numerical (or unknown)
            spec = _numeric_spec(
                entry, impute_rule, normalize_rule, clip_rule,
                has_missing_info, profile, salt,
            )
        plan[name] = spec
        features.append(name)
    return plan, features, dropped


def _numeric_spec(
    entry: dict[str, Any],
    impute_rule: dict[str, Any] | None,
    normalize_rule: dict[str, Any] | None,
    clip_rule: dict[str, Any] | None,
    has_missing_info: bool,
    profile: LLMProfile,
    salt: int,
) -> dict[str, Any]:
    spec: dict[str, Any] = {"encode": "numeric"}
    missing_pct = entry.get("missing_percentage") or 0.0
    if impute_rule is not None or (has_missing_info and missing_pct > 0):
        params = (impute_rule or {}).get("params", {})
        spec["impute"] = params.get("strategy_numeric", "median")
    else:
        # no guidance: a good model still imputes defensively, a weak one
        # leaves NaN handling to chance (drop-rows marker consumed by the
        # script emitter below)
        choice = weighted_pick(
            ["median", "drop_rows", "none"],
            [profile.code_quality, 0.6 * (1 - profile.code_quality) + 0.2, 0.4 * (1 - profile.code_quality)],
            "impute-default", entry.get("name"), profile.name, salt,
        )
        spec["impute"] = choice
    has_stats = bool(entry.get("statistics"))
    spec["scale"] = bool(normalize_rule) or has_stats
    if clip_rule is not None and has_stats:
        spec["clip_outliers"] = True
    return spec


_CLASSIFIER_CHOICES = [
    ("GradientBoostingClassifier", "GradientBoostingClassifier(n_estimators=40, max_depth=3, random_state=0)", 0.95),
    ("RandomForestClassifier", "RandomForestClassifier(n_estimators=60, max_depth=12, random_state=0)", 0.92),
    ("RandomForestClassifier", "RandomForestClassifier(n_estimators=30, max_depth=8, random_state=0)", 0.80),
    ("LogisticRegression", "LogisticRegression(max_iter=200)", 0.70),
    ("LinearSVC", "LinearSVC(max_iter=20, random_state=0)", 0.68),
    ("DecisionTreeClassifier", "DecisionTreeClassifier(max_depth=8, random_state=0)", 0.55),
]

_REGRESSOR_CHOICES = [
    ("GradientBoostingRegressor", "GradientBoostingRegressor(n_estimators=80, max_depth=3, random_state=0)", 0.95),
    ("RandomForestRegressor", "RandomForestRegressor(n_estimators=60, max_depth=12, random_state=0)", 0.92),
    ("RandomForestRegressor", "RandomForestRegressor(n_estimators=30, max_depth=8, random_state=0)", 0.80),
    ("Ridge", "Ridge(alpha=1.0)", 0.65),
    ("LinearRegression", "LinearRegression()", 0.55),
]


def choose_model(
    payload: dict[str, Any], profile: LLMProfile, salt: int
) -> tuple[str, str, bool]:
    """Pick (class_name, constructor_expr, uses_grid_search)."""
    dataset = payload.get("dataset", {})
    task_type = dataset.get("task_type", "binary")
    rules = _rules_by_kind(payload)
    guided = "model_selection" in rules
    choices = _REGRESSOR_CHOICES if task_type == "regression" else _CLASSIFIER_CHOICES
    # guided prompts concentrate probability mass on strong options
    quality = profile.code_quality if guided else profile.code_quality * 0.8
    weights = []
    for _name, _ctor, strength in choices:
        distance = abs(strength - quality)
        weights.append(max(0.02, 1.0 - 2.0 * distance))
    name, ctor, _ = weighted_pick(
        choices, weights, "model-choice", profile.name, dataset.get("name"), salt
    )
    grid_probability = 0.0 if guided else profile.grid_search_tendency
    use_grid = (
        stable_hash("grid", profile.name, dataset.get("name"), salt) % 1000
        < grid_probability * 1000
    )
    return name, ctor, bool(use_grid)


def generate_pipeline_code(
    payload: dict[str, Any], profile: LLMProfile, salt: int = 0
) -> str:
    """Emit the full pipeline script for a prompt payload."""
    dataset = payload.get("dataset", {})
    target = dataset.get("target", "target")
    task_type = dataset.get("task_type", "binary")
    rules = _rules_by_kind(payload)
    plan, features, dropped = build_encoding_plan(payload, profile, salt)

    selection_rule = rules.get("feature_selection")
    if selection_rule is not None:
        ranked = selection_rule.get("params", {}).get("ranked") or []
        top_k = selection_rule.get("params", {}).get("top_k")
        if ranked and top_k:
            keep = [name for name in ranked if name in plan][: int(top_k)]
            if keep:
                dropped.extend(sorted(set(features) - set(keep)))
                features = keep
                plan = {name: plan[name] for name in keep}

    drop_row_columns = [
        name for name, spec in plan.items() if spec.get("impute") == "drop_rows"
    ]
    for name in drop_row_columns:
        # train rows with gaps are dropped; median-impute protects the test
        # split, which must not lose rows
        plan[name] = {**plan[name], "impute": "median"}
    for name, spec in plan.items():
        if spec.get("impute") == "none":
            # the model ignored missing values: NaN flows to the estimator
            plan[name] = {**spec, "impute": None}

    rebalance = "rebalance" in rules and task_type != "regression"
    augment = "augment_small" in rules and task_type != "regression"
    model_name, model_ctor, use_grid = choose_model(payload, profile, salt)

    is_classification = task_type != "regression"
    imports = {
        "TableVectorizer",
        model_name,
        "accuracy_score" if is_classification else "r2_score",
    }
    if is_classification:
        imports.add("roc_auc_score")
    if use_grid:
        imports.add("GridSearchCV")

    lines: list[str] = []
    lines.append('"""Auto-generated data-centric ML pipeline.')
    lines.append("")
    lines.append(f"Dataset: {dataset.get('name', '?')} | task: {task_type} | target: {target}")
    lines.append(f"Generated by simulated LLM profile: {profile.name}")
    lines.append('"""')
    lines.append("import numpy as np")
    lines.append("")
    lines.append(f"from repro.ml import {', '.join(sorted(imports))}")
    if rebalance:
        lines.append("from repro.ml.augment import oversample_minority")
    if augment:
        lines.append("from repro.ml.augment import gaussian_augment")
    if drop_row_columns:
        lines.append("from repro.table.ops import drop_missing_rows")
    lines.append("")
    lines.append(f"TARGET = {target!r}")
    lines.append(f"FEATURES = {pprint.pformat(features, width=88)}")
    lines.append(f"DROP_COLUMNS = {pprint.pformat(sorted(set(dropped)), width=88)}")
    lines.append(f"PLAN = {pprint.pformat(plan, width=88, sort_dicts=True)}")
    lines.append("")
    lines.append("")
    lines.append("def run_pipeline(train, test):")
    lines.append('    """Train on `train`, evaluate on both splits, return metrics."""')
    lines.append("    train = train.select([c for c in FEATURES + [TARGET] if c in train])")
    lines.append("    test = test.select([c for c in FEATURES + [TARGET] if c in test])")
    lines.append("    # rows without a label cannot be used for supervised training")
    lines.append("    train = train.filter_mask(~train[TARGET].missing)")
    lines.append("    test = test.filter_mask(~test[TARGET].missing)")
    if drop_row_columns:
        lines.append(f"    train = drop_missing_rows(train, subset={drop_row_columns!r})")
    lines.append("    vectorizer = TableVectorizer(plan=PLAN, target=TARGET)")
    lines.append("    X_train = vectorizer.fit_transform(train)")
    lines.append("    X_test = vectorizer.transform(test)")
    if is_classification:
        lines.append("    y_train = np.asarray([str(v) for v in train[TARGET]], dtype=object)")
        lines.append("    y_test = np.asarray([str(v) for v in test[TARGET]], dtype=object)")
    else:
        lines.append("    y_train = train[TARGET].astype_numeric().numeric_values()")
        lines.append("    y_test = test[TARGET].astype_numeric().numeric_values()")
    if rebalance:
        lines.append("    X_train, y_train = oversample_minority(X_train, y_train, random_state=0)")
    if augment:
        lines.append("    if X_train.shape[0] < 500:")
        lines.append("        X_train, y_train = gaussian_augment(X_train, y_train, random_state=0)")
    if use_grid:
        lines.append(f"    base_model = {model_ctor}")
        grid = _grid_for(model_name)
        lines.append(f"    model = GridSearchCV(base_model, {grid}, cv=3)")
    else:
        lines.append(f"    model = {model_ctor}")
    lines.append("    model.fit(X_train, y_train)")
    lines.append("    train_pred = model.predict(X_train)")
    lines.append("    test_pred = model.predict(X_test)")
    if is_classification:
        lines.append("    metrics = {")
        lines.append('        "train_accuracy": accuracy_score(y_train, train_pred),')
        lines.append('        "test_accuracy": accuracy_score(y_test, test_pred),')
        lines.append("    }")
        lines.append("    try:")
        lines.append("        labels = model.classes_")
        lines.append("        train_proba = model.predict_proba(X_train)")
        lines.append("        test_proba = model.predict_proba(X_test)")
        lines.append('        metrics["train_auc"] = roc_auc_score(y_train, train_proba, labels=labels)')
        lines.append('        metrics["test_auc"] = roc_auc_score(y_test, test_proba, labels=labels)')
        lines.append("    except (AttributeError, ValueError):")
        lines.append('        metrics["train_auc"] = metrics["train_accuracy"]')
        lines.append('        metrics["test_auc"] = metrics["test_accuracy"]')
    else:
        lines.append("    metrics = {")
        lines.append('        "train_r2": r2_score(y_train, train_pred),')
        lines.append('        "test_r2": r2_score(y_test, test_pred),')
        lines.append("    }")
    lines.append('    metrics["model"] = type(model).__name__')
    lines.append('    metrics["n_features"] = X_train.shape[1]')
    lines.append("    return metrics")
    lines.append("")
    return "\n".join(lines)


def _grid_for(model_name: str) -> str:
    """Hyper-parameter grid expression for the naive-grid-search fallback."""
    if "Forest" in model_name:
        return "{'n_estimators': [20, 40, 80], 'max_depth': [4, 8, 12]}"
    if "Boosting" in model_name:
        return "{'n_estimators': [20, 40, 80], 'learning_rate': [0.05, 0.1, 0.2]}"
    if "Tree" in model_name:
        return "{'max_depth': [4, 6, 8, 12]}"
    if model_name == "Ridge":
        return "{'alpha': [0.1, 1.0, 10.0]}"
    return "{'max_iter': [100, 200, 400]}"
