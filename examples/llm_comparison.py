"""Compare the three LLM profiles on one dataset, including error handling.

Runs CatDB with gpt-4o / gemini-1.5 / llama3.1-70b profiles over several
iterations and reports per-model quality, token cost, repair behaviour,
and the knowledge-base error-trace distribution (Table 2 style).

Run with:  python examples/llm_comparison.py
"""

from repro.datasets import load_dataset
from repro.generation.generator import CatDB
from repro.generation.knowledge_base import KnowledgeBase
from repro.llm.mock import MockLLM
from repro.ml import train_test_split

ITERATIONS = 5


def main() -> None:
    bundle = load_dataset("cmc", n=900)
    unified = bundle.unified
    labels = [str(v) for v in unified[bundle.target]]
    train, test = train_test_split(
        unified, test_size=0.3, random_state=0, stratify=labels
    )
    catalog = bundle.profile()
    knowledge_base = KnowledgeBase()

    print(f"dataset: {bundle.name}  shape={unified.shape}  "
          f"task={bundle.task_type}\n")
    print(f"{'model':14s} {'ok':>3s} {'best AUC':>9s} {'tokens':>8s} "
          f"{'errors':>7s} {'kb-fix':>6s} {'llm-fix':>7s}")
    for model in ("gpt-4o", "gemini-1.5", "llama3.1-70b"):
        metrics, tokens, errors, kb_fixes, llm_fixes, ok = [], 0, 0, 0, 0, 0
        for iteration in range(ITERATIONS):
            llm = MockLLM(model, seed=iteration)
            generator = CatDB(llm, knowledge_base=knowledge_base)
            report = generator.generate(train, test, catalog,
                                        iteration=iteration)
            ok += int(report.success)
            if report.success and report.primary_metric is not None:
                metrics.append(report.primary_metric)
            tokens += report.total_tokens
            errors += len(report.errors)
            kb_fixes += report.kb_fixes
            llm_fixes += report.llm_fixes
        best = f"{max(metrics):.3f}" if metrics else "-"
        print(f"{model:14s} {ok:>2d}/{ITERATIONS} {best:>9s} {tokens:>8d} "
              f"{errors:>7d} {kb_fixes:>6d} {llm_fixes:>7d}")

    print("\nerror-trace distribution across all runs (Table 2 style):")
    for model in ("gpt-4o", "gemini-1.5", "llama3.1-70b"):
        dist = knowledge_base.group_distribution(model)
        print(f"  {model:14s} KB={dist['KB']:5.1f}%  SE={dist['SE']:5.1f}%  "
              f"RE={dist['RE']:5.1f}%")


if __name__ == "__main__":
    main()
