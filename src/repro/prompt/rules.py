"""Rule definition (Algorithm 2b and Section 3.3).

Rules guide the LLM without dictating one fixed recipe.  Four essential
groups come from the data catalog: data-preparation, feature-dependency,
feature-filter, and data-augmentation rules, plus the model-selection rule
tied to the target column.  Each :class:`Rule` carries a machine-readable
``kind``/``params`` (consumed by the simulated LLM's code generator) and
the human-readable ``text`` that would steer a real model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.catalog.catalog import DataCatalog
from repro.catalog.feature_types import FeatureType

__all__ = ["Rule", "build_rules", "SECTION_PREPROCESSING", "SECTION_FE", "SECTION_MODEL"]

SECTION_PREPROCESSING = "preprocessing"
SECTION_FE = "fe-engineering"
SECTION_MODEL = "model-selection"

_IMBALANCE_THRESHOLD = 3.0  # majority/minority ratio that triggers rebalancing
_SMALL_DATASET_ROWS = 400


@dataclass
class Rule:
    """One instruction for the LLM."""

    section: str
    kind: str
    text: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> dict[str, Any]:
        return {"section": self.section, "kind": self.kind,
                "text": self.text, "params": self.params}


def build_rules(catalog: DataCatalog) -> list[Rule]:
    """Derive the full rule set for a catalog (Algorithm 2, lines 8-15)."""
    rules: list[Rule] = []
    rules.extend(_preprocessing_rules(catalog))
    rules.extend(_feature_engineering_rules(catalog))
    rules.append(_model_selection_rule(catalog))
    return rules


def _preprocessing_rules(catalog: DataCatalog) -> list[Rule]:
    rules: list[Rule] = []
    with_missing = [
        p.name for p in catalog.feature_profiles() if p.missing_percentage > 0
    ]
    if with_missing:
        rules.append(Rule(
            SECTION_PREPROCESSING,
            "impute_missing",
            "Impute missing values: use the most frequent value for "
            "categorical features and the median for numerical features "
            f"(columns with gaps: {', '.join(with_missing[:20])}).",
            {"columns": with_missing,
             "strategy_categorical": "most_frequent",
             "strategy_numeric": "median"},
        ))
    numeric = [
        p.name for p in catalog.feature_profiles()
        if p.feature_type is FeatureType.NUMERICAL
    ]
    if numeric:
        rules.append(Rule(
            SECTION_PREPROCESSING,
            "normalize",
            "Scale numerical features to comparable ranges before training "
            f"({', '.join(numeric[:20])}).",
            {"columns": numeric},
        ))
        spread = [
            p.name for p in catalog.feature_profiles()
            if p.statistics and p.statistics.get("std", 0) > 0
        ]
        if spread:
            rules.append(Rule(
                SECTION_PREPROCESSING,
                "clip_outliers",
                "Winsorize extreme numerical values (clip to robust quantiles) "
                "instead of dropping rows.",
                {"columns": spread},
            ))
    if catalog.info.task_type != "regression":
        target = catalog.target_profile
        counts = _label_counts(target)
        if counts and max(counts) / max(1, min(counts)) >= _IMBALANCE_THRESHOLD:
            rules.append(Rule(
                SECTION_PREPROCESSING,
                "rebalance",
                "The class labels are imbalanced; oversample minority classes "
                "before training.",
                {},
            ))
    if catalog.info.n_rows < _SMALL_DATASET_ROWS:
        rules.append(Rule(
            SECTION_PREPROCESSING,
            "augment_small",
            "The dataset is small; augment the training data with jittered "
            "copies to improve generalisation.",
            {},
        ))
    return rules


def _label_counts(profile) -> list[int]:
    # class frequencies are not stored per-value; approximate imbalance from
    # distinct count vs rows (fallback) unless categorical values carry counts
    if not profile.is_categorical or not profile.distinct_count:
        return []
    counts = profile.statistics.get("class_counts") if profile.statistics else None
    if isinstance(counts, (list, tuple)):
        return [int(c) for c in counts]
    return []


def _feature_engineering_rules(catalog: DataCatalog) -> list[Rule]:
    rules: list[Rule] = []
    categorical = {
        p.name: p.distinct_count
        for p in catalog.feature_profiles()
        if p.feature_type is FeatureType.CATEGORICAL
    }
    if categorical:
        rules.append(Rule(
            SECTION_FE,
            "encode_categorical",
            "One-hot encode the categorical features; use feature hashing "
            "when a feature has many distinct values.",
            {"columns": categorical},
        ))
    lists = {
        p.name: (p.list_delimiter or ",")
        for p in catalog.feature_profiles()
        if p.feature_type is FeatureType.LIST
    }
    if lists:
        rules.append(Rule(
            SECTION_FE,
            "encode_list",
            "K-hot encode the list features (split on the delimiter, one "
            "indicator per distinct item).",
            {"columns": lists},
        ))
    sentences = [
        p.name for p in catalog.feature_profiles()
        if p.feature_type is FeatureType.SENTENCE
    ]
    if sentences:
        rules.append(Rule(
            SECTION_FE,
            "hash_sentence",
            "Hash free-text features into a fixed number of buckets.",
            {"columns": sentences, "n_features": 16},
        ))
    low_value = [
        p.name for p in catalog.feature_profiles()
        if p.feature_type in (FeatureType.CONSTANT, FeatureType.ID)
    ]
    if low_value:
        rules.append(Rule(
            SECTION_FE,
            "drop_low_value",
            "Drop constant and identifier-like columns; they carry no signal "
            f"({', '.join(low_value)}).",
            {"columns": low_value},
        ))
    ranked = sorted(
        catalog.feature_profiles(),
        key=lambda p: p.target_correlation,
        reverse=True,
    )
    if ranked:
        rules.append(Rule(
            SECTION_FE,
            "feature_dependency",
            "Prefer features correlated with the target; correlations are "
            "listed in the schema metadata.",
            {"ranked": [p.name for p in ranked]},
        ))
    return rules


def _model_selection_rule(catalog: DataCatalog) -> Rule:
    task = catalog.info.task_type
    if task == "regression":
        text = (
            "Train a regression model; prefer tree ensembles "
            "(random forest / gradient boosting) with fixed, sensible "
            "hyper-parameters — do not run exhaustive grid search."
        )
        candidates = ["RandomForestRegressor", "GradientBoostingRegressor", "Ridge"]
    else:
        text = (
            "Train a classification model; prefer tree ensembles "
            "(random forest / gradient boosting) with fixed, sensible "
            "hyper-parameters — do not run exhaustive grid search. "
            "Report accuracy and AUC."
        )
        candidates = [
            "RandomForestClassifier", "GradientBoostingClassifier",
            "LogisticRegression",
        ]
    return Rule(
        SECTION_MODEL,
        "model_selection",
        text,
        {"task_type": task, "candidates": candidates, "tune": False},
    )
