"""Experiment drivers — one module per table/figure of paper Section 5.

Every module exposes ``run(...)`` returning a result object with the rows
the paper reports and a ``render()`` method that prints them in a
paper-style layout.  The benchmark harness under ``benchmarks/`` invokes
these drivers; they are also importable for ad-hoc analysis.

Most drivers accept ``quick=True`` (the default used by the benchmark
suite) which shrinks dataset sizes / iteration counts so the whole suite
runs in minutes; ``quick=False`` reproduces the full protocol.
"""

from repro.experiments import common

__all__ = ["common"]
