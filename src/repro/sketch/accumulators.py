"""Small exact mergeable accumulators used by the column sketch.

These carry the pieces of the batch profiler's logic that are *exactly*
streamable — no approximation, no ordering sensitivity:

- :class:`KindFlags` replicates ``repro.table.column._infer_kind`` as
  three OR-merged booleans, so the final :class:`ColumnKind` of a
  streamed column equals what one batch ``Column(values)`` would infer.
- :class:`FirstKEvidence` keeps the ``k`` present values with the
  smallest global row indices — the ``present[:k]`` window the feature-
  type heuristics (`_looks_like_list`, `_looks_like_sentence`) inspect.
- :class:`TokenStats` counts canonical tokens with their first-seen row,
  feeding embeddings/hash-sets; the cap prunes by first-seen row, which
  is the batch scan's truncation rule.
- :class:`FingerprintAccumulator` feeds running md5 digests chunk-by-
  chunk so cache fingerprints never require materializing the column.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from repro.table.column import _FALSE_TOKENS, _TRUE_TOKENS

__all__ = [
    "KindFlags",
    "FirstKEvidence",
    "TokenStats",
    "FingerprintAccumulator",
    "BOOLEAN_DOMAIN",
]

_FAR_ROW = 1 << 62

# the lowered-token domain `infer_feature_type_heuristic` reads as Boolean
BOOLEAN_DOMAIN = frozenset(
    {"true", "false", "yes", "no", "0", "1", "t", "f", "y", "n"}
)


class KindFlags:
    """OR-merged evidence flags mirroring ``_infer_kind``."""

    __slots__ = ("saw_bool", "saw_number", "saw_string")

    def __init__(self) -> None:
        self.saw_bool = False
        self.saw_number = False
        self.saw_string = False

    def observe_token(self, token: str) -> None:
        """Classify one non-missing raw CSV token exactly as ``_infer_kind``."""
        lowered = token.strip().lower()
        if lowered in _TRUE_TOKENS or lowered in _FALSE_TOKENS:
            self.saw_bool = True
            return
        try:
            float(token)
        except ValueError:
            self.saw_string = True
        else:
            self.saw_number = True

    def merge(self, other: "KindFlags") -> "KindFlags":
        self.saw_bool = self.saw_bool or other.saw_bool
        self.saw_number = self.saw_number or other.saw_number
        self.saw_string = self.saw_string or other.saw_string
        return self

    def copy(self) -> "KindFlags":
        clone = KindFlags()
        clone.merge(self)
        return clone

    def kind_name(self) -> str:
        """`_infer_kind` precedence: string > number > bool > string."""
        if self.saw_string:
            return "string"
        if self.saw_number:
            return "numeric"
        if self.saw_bool:
            return "boolean"
        return "string"

    def canonical_state(self) -> tuple:
        return (self.saw_bool, self.saw_number, self.saw_string)


class FirstKEvidence:
    """The ``k`` present values with the smallest global row indices."""

    __slots__ = ("k", "_entries", "_threshold")

    def __init__(self, k: int = 200) -> None:
        self.k = k
        self._entries: list[tuple[int, Any]] = []  # (row, value)
        self._threshold = _FAR_ROW  # rows >= this can never make the cut

    def update(self, values: Iterable[Any], rows: Iterable[int]) -> None:
        entries = self._entries
        threshold = self._threshold
        for value, row in zip(values, rows):
            if row < threshold:
                entries.append((row, value))
        if len(entries) > 4 * self.k:
            self._prune()

    def _prune(self) -> None:
        if len(self._entries) > self.k:
            self._entries.sort(key=lambda rv: rv[0])
            del self._entries[self.k:]
            self._threshold = self._entries[-1][0]

    def merge(self, other: "FirstKEvidence") -> "FirstKEvidence":
        if self.k != other.k:
            raise ValueError("cannot merge FirstKEvidence with different k")
        self._entries.extend(other._entries)
        self._prune()
        return self

    def copy(self) -> "FirstKEvidence":
        clone = FirstKEvidence(self.k)
        clone._entries = list(self._entries)
        clone._threshold = self._threshold
        return clone

    def values(self) -> list[Any]:
        """The first-K present values in row order."""
        self._prune()
        return [value for _, value in sorted(self._entries, key=lambda rv: rv[0])]

    def canonical_state(self) -> tuple:
        self._prune()
        return tuple(sorted((row, repr(value)) for row, value in self._entries))


class TokenStats:
    """Canonical-token counts with first-seen rows, capped by row order.

    ``cap`` bounds the number of distinct tokens tracked; overflow prunes
    the tokens with the *largest* first-seen rows, matching the batch
    scan that stops admitting new distinct tokens past its cap.
    """

    __slots__ = ("cap", "_tokens")

    def __init__(self, cap: int = 5000) -> None:
        self.cap = cap
        self._tokens: dict[str, list[int]] = {}  # token -> [count, min_row]

    def update(self, tokens: Iterable[str], rows: Iterable[int]) -> None:
        table = self._tokens
        for token, row in zip(tokens, rows):
            entry = table.get(token)
            if entry is not None:
                entry[0] += 1
                if row < entry[1]:
                    entry[1] = row
            else:
                table[token] = [1, row]
        if len(table) > 2 * self.cap:
            self._prune()

    def _prune(self) -> None:
        if len(self._tokens) > self.cap:
            ranked = sorted(self._tokens.items(), key=lambda kv: (kv[1][1], kv[0]))
            self._tokens = dict(ranked[: self.cap])

    def merge(self, other: "TokenStats") -> "TokenStats":
        if self.cap != other.cap:
            raise ValueError("cannot merge TokenStats with different caps")
        table = self._tokens
        for token, (count, row) in other._tokens.items():
            entry = table.get(token)
            if entry is not None:
                entry[0] += count
                if row < entry[1]:
                    entry[1] = row
            else:
                table[token] = [count, row]
        if len(table) > self.cap:
            self._prune()
        return self

    def copy(self) -> "TokenStats":
        clone = TokenStats(self.cap)
        clone._tokens = {token: list(entry) for token, entry in self._tokens.items()}
        return clone

    def items_first_seen(self) -> list[tuple[str, int]]:
        """``(token, count)`` pairs in first-seen row order, within cap."""
        self._prune()
        return [
            (token, entry[0])
            for token, entry in sorted(
                self._tokens.items(), key=lambda kv: (kv[1][1], kv[0])
            )
        ]

    def __len__(self) -> int:
        return len(self._tokens)

    def canonical_state(self) -> tuple:
        self._prune()
        return tuple(sorted(
            (token, entry[0], entry[1]) for token, entry in self._tokens.items()
        ))


class FingerprintAccumulator:
    """Running (data, mask) md5 pair matching ``column_fingerprint``.

    The batch fingerprint hashes the data buffer and the missing mask as
    two separate digests (combined at the end), precisely so a streaming
    producer can feed both running hashes chunk-by-chunk without ever
    holding the column.  Chunks must arrive in canonical row order —
    the streaming profiler's ordered fold guarantees that.
    """

    __slots__ = ("_data_md5", "_mask_md5", "n", "n_missing")

    def __init__(self) -> None:
        self._data_md5 = hashlib.md5()
        self._mask_md5 = hashlib.md5()
        self.n = 0
        self.n_missing = 0

    def update(self, data_bytes: bytes, mask_bytes: bytes, n: int, n_missing: int) -> None:
        self._data_md5.update(data_bytes)
        self._mask_md5.update(mask_bytes)
        self.n += n
        self.n_missing += n_missing

    def fingerprint(self, kind_name: str) -> tuple:
        """The ``(kind, len, n_missing, content)`` cache key."""
        combined = hashlib.md5(
            self._data_md5.digest() + self._mask_md5.digest()
        ).hexdigest()
        return (kind_name, self.n, self.n_missing, combined)

    def copy(self) -> "FingerprintAccumulator":
        clone = FingerprintAccumulator()
        clone._data_md5 = self._data_md5.copy()
        clone._mask_md5 = self._mask_md5.copy()
        clone.n = self.n
        clone.n_missing = self.n_missing
        return clone
