"""Static pipeline validation (paper Section 4.2, SE handling).

This module is now a thin compatibility wrapper over
:mod:`repro.analysis` — the multi-pass scope-aware analyzer that
replaced the old flat ``ast.walk`` name collection.  ``validate_source``
keeps its historical contract (structure + known-import checks, issues
mapped onto the error taxonomy) while the generator runs the full
``"pipeline"`` profile (leakage, banned APIs, nondeterminism, known
signatures) via :func:`repro.analysis.analyze_source`.

Two long-standing defects died with the old implementation:

- ``_syntax_error_type`` had a dead conditional (both the prose branch
  and its fallthrough returned ``stray_prose``) — non-prose parse
  failures now classify as ``truncated_code``;
- ``_collect_defined_names`` contained a no-op ternary and missed whole
  binding forms (walrus, ``AnnAssign``, lambda parameters, ``match``
  captures), and its flat walk treated names bound in *any* scope as
  visible *everywhere*.  The scope-chain resolver in
  :mod:`repro.analysis.scopes` implements Python's actual rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.engine import analyze_source
from repro.analysis.pipeline_rules import KNOWN_LIBRARY_SYMBOLS
from repro.generation.errors import PipelineError

__all__ = ["ValidationIssue", "validate_source", "extract_code_block"]

# historical alias — external callers imported the private name
_KNOWN_LIBRARY_SYMBOLS = KNOWN_LIBRARY_SYMBOLS


@dataclass
class ValidationIssue:
    """One static finding, mapped onto the error taxonomy."""

    error: PipelineError

    @property
    def type_name(self) -> str:
        return self.error.error_type.name


def extract_code_block(response_text: str) -> str:
    """Pull the code out of a model response.

    Prefers ``<CODE>...</CODE>`` tags; falls back to the raw text.  Leftover
    markdown fences are intentionally NOT stripped here — detecting them is
    the validator's job (they are one of the 23 error types).
    """
    text = response_text
    if "<CODE>" in text and "</CODE>" in text:
        text = text.split("<CODE>", 1)[1].split("</CODE>", 1)[0]
    return text.strip("\n")


def validate_source(code: str) -> list[ValidationIssue]:
    """Run the legacy structural checks; empty list means statically clean.

    Uses the ``"validate"`` profile (entry point + known-import
    resolution) so existing callers see the same surface as before; the
    generation stack itself gates on the richer ``"pipeline"`` profile.
    """
    report = analyze_source(code, profile="validate")
    return [ValidationIssue(error) for error in report.pipeline_errors()]
