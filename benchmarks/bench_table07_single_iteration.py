"""Table 7 — single-iteration performance on 8 datasets, all systems."""

from benchmarks.conftest import LLMS, QUICK, save_result
from repro.experiments import table7_single_iteration


def test_table07_single_iteration(benchmark):
    result = benchmark.pedantic(
        lambda: table7_single_iteration.run(llms=LLMS, quick=QUICK),
        rounds=1, iterations=1,
    )
    save_result("table07_single_iteration", result.render())

    datasets = list(dict.fromkeys(r["dataset"] for r in result.rows))
    assert len(datasets) == 8

    # shape: CatDB and CatDB Chain succeed on every dataset/LLM pair
    for dataset in datasets:
        for llm in LLMS:
            for system in ("catdb", "catdb-chain"):
                row = result.cell(dataset, llm, system)
                assert row is not None and not row["failure"], (
                    dataset, llm, system, row,
                )

    # shape: CAAFE-TabPFN OOMs on the large multi-table datasets
    ooms = [
        result.cell(d, llm, "caafe-tabpfn")
        for d in ("airline", "imdb", "accidents", "financial")
        for llm in LLMS
    ]
    assert any(row and row["failure"] == "OOM" for row in ooms)

    # shape: Auto-Sklearn OOMs on paper-scale multi-table data and TOs on CMC
    for dataset in ("airline", "imdb", "accidents", "financial"):
        row = result.cell(dataset, None, "autosklearn")
        assert row and row["failure"] == "OOM", (dataset, row)
    cmc = result.cell("cmc", None, "autosklearn")
    assert cmc and cmc["failure"] in ("TO", "OOM")

    # shape: Auto-Sklearn succeeds on the single-table regression datasets
    for dataset in ("bike_sharing", "house_sales", "nyc"):
        row = result.cell(dataset, None, "autosklearn")
        assert row and (not row["failure"]), (dataset, row)
