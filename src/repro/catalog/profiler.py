"""Algorithm 1 — PROFILING(D, tau_1): build a :class:`DataCatalog`.

For every column we extract the schema (name, data type), distinct and
missing percentages, basic statistics (numeric columns), feature type,
embeddings-derived inclusion dependencies / similarities, the correlation
to the target, and a value sample of size ``tau_1`` (all unique values for
categorical columns, per the paper).

Columns are profiled on a :class:`ProfilerExecutor` worker pool
(``workers=N``); per-column RNGs are spawned from one ``SeedSequence`` so
parallel and sequential runs produce bit-identical catalogs.  Embeddings
and value-hash sets flow through the content-fingerprint
:class:`~repro.catalog.cache.ProfileCache`, so the similarity and
inclusion passes (and any re-profiling during refinement) never recompute
them for unchanged column content.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.catalog.cache import ProfileCache, get_default_cache
from repro.catalog.catalog import ColumnProfile, DataCatalog, DatasetInfo
from repro.catalog.embeddings import (
    column_correlation,
    find_inclusion_dependencies,
    pairwise_similarities,
)
from repro.catalog.executor import ProfilerExecutor, spawn_column_rngs
from repro.catalog.feature_types import FeatureType, infer_feature_type_heuristic
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.table.column import Column, ColumnKind
from repro.table.table import Table

__all__ = ["profile_table", "profile_dataset", "numeric_statistics"]

DEFAULT_SAMPLES = 10


def numeric_statistics(column: Column) -> dict[str, float]:
    """min / max / mean / median / std of the present values."""
    values = column.non_missing()
    if values.size == 0:
        return {}
    values = values.astype(np.float64)
    return {
        "min": float(values.min()),
        "max": float(values.max()),
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "std": float(values.std()),
    }


def _profile_column(
    column: Column,
    n_rows: int,
    tau_1: int,
    rng: np.random.Generator,
) -> ColumnProfile:
    with get_tracer().span("profile.column", column=column.name):
        return _profile_column_impl(column, n_rows, tau_1, rng)


def _profile_column_impl(
    column: Column,
    n_rows: int,
    tau_1: int,
    rng: np.random.Generator,
) -> ColumnProfile:
    present = column.non_missing().tolist()
    distinct = column.unique()
    distinct_pct = 100.0 * len(distinct) / n_rows if n_rows else 0.0
    missing_pct = 100.0 * column.n_missing / n_rows if n_rows else 0.0
    is_numeric = column.kind is ColumnKind.NUMERIC
    feature_type = infer_feature_type_heuristic(
        present, distinct_pct / 100.0, is_numeric, n_rows
    )
    is_categorical = feature_type in (FeatureType.CATEGORICAL, FeatureType.BOOLEAN)

    if is_categorical:
        samples = list(distinct)  # all unique values, as the paper stores
        categorical_values = list(distinct)
    else:
        categorical_values = []
        if len(present) <= tau_1:
            samples = list(present)
        else:
            picks = rng.choice(len(present), size=tau_1, replace=False)
            samples = [present[i] for i in sorted(picks)]

    if is_numeric and feature_type is not FeatureType.CATEGORICAL:
        statistics: dict = numeric_statistics(column)
    elif is_categorical:
        # per-class frequencies drive the imbalance (rebalancing) rule
        statistics = {"class_counts": list(column.value_counts().values())}
    else:
        statistics = {}
    data_type = {
        ColumnKind.NUMERIC: "number",
        ColumnKind.STRING: "string",
        ColumnKind.BOOLEAN: "boolean",
    }[column.kind]
    return ColumnProfile(
        name=column.name,
        data_type=data_type,
        feature_type=feature_type,
        is_categorical=is_categorical,
        distinct_count=len(distinct),
        distinct_percentage=round(distinct_pct, 4),
        missing_count=column.n_missing,
        missing_percentage=round(missing_pct, 4),
        samples=samples,
        statistics=statistics,
        categorical_values=categorical_values,
    )


def profile_table(
    table: Table,
    target: str,
    task_type: str,
    tau_1: int = DEFAULT_SAMPLES,
    n_tables: int = 1,
    file_path: str = "",
    delimiter: str = ",",
    description: str = "",
    seed: int = 0,
    with_dependencies: bool = True,
    workers: int | None = None,
    cache: ProfileCache | None = None,
) -> DataCatalog:
    """Profile a single table into a :class:`DataCatalog` (Algorithm 1).

    ``workers`` sizes the column-profiling worker pool (``None``/1 =
    sequential, 0 = all cores); results are bit-identical across pool
    sizes because each column's RNG is derived from ``(seed, position)``.
    ``cache`` overrides the process-wide embedding/value-hash cache.
    """
    if target not in table:
        raise KeyError(f"target column {target!r} not in table")
    executor = ProfilerExecutor(workers)
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "profile.table", dataset=table.name, rows=table.n_rows,
        cols=table.n_cols, workers=executor.workers,
    ):
        names = table.column_names
        rngs = spawn_column_rngs(seed, len(names))
        with tracer.span("profile.columns"):
            profiles = executor.starmap(
                _profile_column,
                [
                    (table[name], table.n_rows, tau_1, rng)
                    for name, rng in zip(names, rngs)
                ],
            )
        if with_dependencies:
            cache_obj = cache if cache is not None else get_default_cache()
            hits_before = cache_obj.hits
            misses_before = cache_obj.misses
            with tracer.span("profile.dependencies"):
                similarities = pairwise_similarities(table, cache=cache)
                inclusion = find_inclusion_dependencies(table, cache=cache)
                target_column = table[target]

                def _attach(profile: ColumnProfile) -> ColumnProfile:
                    profile.similarities = similarities.get(profile.name, [])
                    profile.inclusion_dependencies = inclusion.get(
                        profile.name, []
                    )
                    if profile.name != target:
                        profile.target_correlation = round(
                            column_correlation(
                                table[profile.name], target_column
                            ),
                            4,
                        )
                    return profile

                executor.map(_attach, profiles)
            metrics.inc(
                "profile.cache.hits", cache_obj.hits - hits_before
            )
            metrics.inc(
                "profile.cache.misses", cache_obj.misses - misses_before
            )
        metrics.inc("profile.tables")
        metrics.inc("profile.columns", len(names))
    info = DatasetInfo(
        name=table.name,
        task_type=task_type,
        target=target,
        n_rows=table.n_rows,
        n_cols=table.n_cols,
        n_tables=n_tables,
        file_path=file_path or f"{table.name}.csv",
        delimiter=delimiter,
        description=description,
    )
    return DataCatalog(info, profiles)


def profile_dataset(
    tables: Sequence[Table],
    target: str,
    task_type: str,
    join_plan: Sequence[tuple[str, str, str]] = (),
    tau_1: int = DEFAULT_SAMPLES,
    seed: int = 0,
    description: str = "",
    workers: int | None = None,
    cache: ProfileCache | None = None,
) -> DataCatalog:
    """Profile a (possibly multi-table) dataset.

    Multi-table datasets are joined into one table first — the paper
    materializes multi-table data into a single table during preparation —
    using ``join_plan`` entries ``(left_table, right_table, key)``.
    """
    from repro.catalog.materialize import join_multi_table

    if not tables:
        raise ValueError("need at least one table")
    if len(tables) == 1:
        unified = tables[0]
    else:
        unified = join_multi_table(list(tables), join_plan)
    return profile_table(
        unified,
        target=target,
        task_type=task_type,
        tau_1=tau_1,
        n_tables=len(tables),
        seed=seed,
        description=description,
        workers=workers,
        cache=cache,
    )
