"""Integration tests for the chain workflow and cross-module behaviour."""

import numpy as np
import pytest

from repro.catalog.profiler import profile_table
from repro.generation.generator import CatDB, CatDBChain
from repro.llm.mock import MockLLM
from repro.ml.model_selection import train_test_split
from repro.table.table import Table


def _features_of(code: str) -> list[str]:
    """Extract the FEATURES list literal from generated pipeline code."""
    import ast

    tree = ast.parse(code)
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "FEATURES"
        ):
            return [ast.literal_eval(e) for e in node.value.elts]
    raise AssertionError("no FEATURES assignment in generated code")


@pytest.fixture(scope="module")
def wide_setup():
    rng = np.random.default_rng(0)
    n = 300
    data = {f"f{i}": rng.normal(size=n) for i in range(12)}
    data["cat_a"] = rng.choice(["x", "y"], size=n).tolist()
    data["cat_b"] = rng.choice(["p", "q", "r"], size=n).tolist()
    score = data["f0"] + data["f1"]
    data["y"] = np.where(score > 0, "pos", "neg").tolist()
    t = Table.from_dict(data, name="wide")
    labels = [str(v) for v in t["y"]]
    train, test = train_test_split(t, test_size=0.3, random_state=0,
                                   stratify=labels)
    catalog = profile_table(t, target="y", task_type="binary")
    return train, test, catalog


class TestChainIntegration:
    def test_final_pipeline_covers_all_chunks(self, wide_setup):
        train, test, catalog = wide_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        report = CatDBChain(llm, beta=3).generate(train, test, catalog)
        assert report.success
        # the final code's FEATURES list spans columns from every chunk
        features = _features_of(report.code)
        assert len(features) >= 12  # nearly all 14 features survive chunking
        assert "cat_a" in features and "f0" in features and "f11" in features

    def test_chain_uses_more_interactions_for_more_beta(self, wide_setup):
        train, test, catalog = wide_setup
        gammas = []
        for beta in (2, 3):
            llm = MockLLM("gpt-4o", fault_injection=False)
            report = CatDBChain(llm, beta=beta).generate(train, test, catalog)
            gammas.append(report.cost.gamma)
        assert gammas == [5, 7]

    def test_chain_handles_faults(self, wide_setup):
        train, test, catalog = wide_setup
        for seed in range(3):
            llm = MockLLM("llama3.1-70b", seed=seed, error_rate_multiplier=2.0)
            report = CatDBChain(llm, beta=2, max_fix_attempts=4).generate(
                train, test, catalog, iteration=seed
            )
            assert report.success

    def test_alpha_and_chain_compose(self, wide_setup):
        train, test, catalog = wide_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        report = CatDBChain(llm, beta=2, alpha=6).generate(train, test, catalog)
        assert report.success
        assert len(_features_of(report.code)) <= 6


class TestEndToEndArtifacts:
    def test_generate_save_reload_execute(self, wide_setup, tmp_path):
        """The persisted pipeline re-executes identically."""
        from repro.generation.artifacts import ArtifactStore
        from repro.generation.executor import execute_pipeline_code

        train, test, catalog = wide_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        report = CatDB(llm).generate(train, test, catalog)
        store = ArtifactStore(tmp_path)
        artifact = store.save(report, catalog=catalog)

        code = store.load_pipeline(artifact)
        replay = execute_pipeline_code(code, train, test)
        assert replay.success
        assert replay.metrics["test_auc"] == pytest.approx(
            report.metrics["test_auc"]
        )

    def test_reloaded_catalog_rebuilds_same_prompt(self, wide_setup, tmp_path):
        from repro.catalog.catalog import DataCatalog
        from repro.prompt.builder import build_prompt_plan

        _train, _test, catalog = wide_setup
        path = tmp_path / "catalog.json"
        catalog.save(path)
        reloaded = DataCatalog.load(path)
        original_prompt = build_prompt_plan(catalog, beta=1).single.text
        reloaded_prompt = build_prompt_plan(reloaded, beta=1).single.text
        assert original_prompt == reloaded_prompt
