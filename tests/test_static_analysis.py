"""Tests for the scope-aware static analyzer (repro.analysis).

Covers: the scope-chain name resolver (one regression per binding form
the old flat walk missed), syntax-error classification, every pipeline
rule positive + negative, the repo self-lint profile with the PR-3
breaker-deadlock fixture, worker-count invariance of the lint verdict,
and the execution-skip audit (statically-dirty code never reaches
``execute_pipeline_code``).
"""

import ast

import numpy as np
import pytest

from repro.analysis import (
    PROFILES,
    RuleConfig,
    Severity,
    analyze_source,
    build_scopes,
    lint_paths,
)
from repro.analysis.engine import _classify_syntax_error
from repro.catalog.profiler import profile_table
from repro.generation.generator import CatDB
from repro.llm import faults
from repro.llm.base import LLMClient, LLMResponse
from repro.llm.mock import MockLLM
from repro.ml.model_selection import train_test_split
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.table.table import Table


def _undefined(code: str) -> set[str]:
    info = build_scopes(ast.parse(code))
    return {name for name, _ in info.undefined_uses()}


def _error_rules(code: str, profile: str = "pipeline") -> set[str]:
    return {f.rule_id for f in analyze_source(code, profile=profile).errors()}


PIPELINE_STUB = "\ndef run_pipeline(train, test):\n    return {}\n"


class TestScopeResolver:
    def test_walrus_binds_in_enclosing_scope(self):
        code = "if (n := 10) > 5:\n    print(n)\nprint(n)"
        assert _undefined(code) == set()

    def test_walrus_inside_comprehension_escapes(self):
        # per PEP 572 the := target binds in the containing scope
        code = "values = [y for x in range(3) if (y := x * 2) > 0]\nprint(y)"
        assert _undefined(code) == set()

    def test_annassign_with_value_binds(self):
        assert _undefined("x: int = 1\nprint(x)") == set()

    def test_annassign_without_value_binds(self):
        # flow-insensitive: an annotated declaration counts as a binding
        assert _undefined("x: int\nprint(x)") == set()

    def test_lambda_parameters_bound_inside_only(self):
        assert _undefined("f = lambda a, b=1, *args, **kw: a + b") == set()
        # the parameter is NOT visible outside the lambda
        assert _undefined("f = lambda a: a\nprint(a)") == {"a"}

    def test_match_captures_bind(self):
        code = (
            "match point:\n"
            "    case {'x': x, **rest}:\n"
            "        print(x, rest)\n"
            "    case [first, *others] as whole:\n"
            "        print(first, others, whole)\n"
        )
        undefined = _undefined(code)
        assert undefined == {"point"}

    def test_comprehension_target_does_not_leak(self):
        code = "values = [i * 2 for i in range(3)]\nprint(i)"
        assert _undefined(code) == {"i"}

    def test_function_local_invisible_at_module_level(self):
        # the old flat walk treated np as defined everywhere
        code = "def helper():\n    np = object()\n    return np\nprint(np)"
        assert _undefined(code) == {"np"}

    def test_class_body_names_invisible_to_methods(self):
        code = (
            "class C:\n"
            "    attr = 1\n"
            "    def m(self):\n"
            "        return attr\n"
        )
        assert _undefined(code) == {"attr"}

    def test_class_body_names_visible_in_body(self):
        code = "class C:\n    attr = 1\n    other = attr + 1\n"
        assert _undefined(code) == set()

    def test_global_declaration_resolves_to_module(self):
        code = (
            "counter = 0\n"
            "def bump():\n"
            "    global counter\n"
            "    counter += 1\n"
        )
        assert _undefined(code) == set()

    def test_nonlocal_resolves_to_enclosing_function(self):
        code = (
            "def outer():\n"
            "    state = 0\n"
            "    def inner():\n"
            "        nonlocal state\n"
            "        state += 1\n"
            "    return inner\n"
        )
        assert _undefined(code) == set()

    def test_for_tuple_target_binds_all_names(self):
        assert _undefined("for k, (a, b) in items():\n    print(k, a, b)") == {"items"}

    def test_except_handler_and_with_bind(self):
        code = (
            "try:\n    pass\nexcept ValueError as exc:\n    print(exc)\n"
            "with open('x') as fh:\n    print(fh)\n"
        )
        assert _undefined(code) == set()

    def test_closure_reads_enclosing_scope(self):
        code = (
            "def outer():\n"
            "    seed = 3\n"
            "    def inner():\n"
            "        return seed\n"
            "    return inner\n"
        )
        assert _undefined(code) == set()


class TestSyntaxClassification:
    def _classify(self, code: str) -> str:
        with pytest.raises(SyntaxError) as excinfo:
            ast.parse(code)
        return _classify_syntax_error(code, excinfo.value)

    def test_prose_line_is_stray_prose(self):
        code = "Here is the pipeline you asked for today\nx = 1"
        assert self._classify(code) == "stray_prose"

    def test_non_prose_failure_is_truncated_code(self):
        # the old implementation's dead fallthrough returned stray_prose
        # for everything; a half-written statement is truncation
        assert self._classify("def broken(:\n    pass") == "truncated_code"

    def test_markdown_fence(self):
        assert self._classify("```python\nx = 1\n```") == "markdown_fence"

    def test_indentation(self):
        assert self._classify("def f():\nreturn 1") in (
            "broken_indentation", "truncated_code",
        )
        assert self._classify("def f():\n        x = 1\n      y = 2") == (
            "broken_indentation"
        )

    def test_mid_statement_truncation(self):
        code = "def run_pipeline(train, test):\n    model = Ridge("
        assert self._classify(code) == "truncated_code"

    def test_analyze_source_reports_syntax_error(self):
        report = analyze_source("```python\nx = 1")
        assert report.syntax_error
        error = report.first_error()
        assert error is not None and error.error_type.name == "markdown_fence"


class TestPipelineRules:
    def test_entry_point_missing(self):
        report = analyze_source("x = 1\n")
        assert any(
            f.rule_id == "entry-point" and f.error_type == "truncated_code"
            for f in report.errors()
        )

    def test_entry_point_wrong_arity(self):
        assert "entry-point" in _error_rules("def run_pipeline(train):\n    pass\n")

    def test_entry_point_ok(self):
        assert "entry-point" not in _error_rules(PIPELINE_STUB)

    def test_missing_import_known_symbol(self):
        code = "def run_pipeline(train, test):\n    return np.mean([1.0])\n"
        report = analyze_source(code)
        assert any(
            f.rule_id == "missing-import" and f.error_type == "missing_import"
            for f in report.errors()
        )

    def test_unknown_name_stays_runtime(self):
        # arbitrary undefined identifiers are runtime NameErrors (RE),
        # not static missing-imports — the paper's SE-vs-RE split
        code = "def run_pipeline(train, test):\n    return vectoriser.fit(train)\n"
        assert "missing-import" not in _error_rules(code)

    def test_missing_import_satisfied_by_import(self):
        code = "import numpy as np" + PIPELINE_STUB
        assert "missing-import" not in _error_rules(code)

    @pytest.mark.parametrize("snippet,error_type", [
        ("eval('1 + 1')", "wrong_api"),
        ("open('/data/file.csv')", "missing_data_file"),
        ("import os\nos.system('ls')", "wrong_api"),
        ("import os\nos.environ['HOME']", "env_variable"),
        ("import os\nos.getenv('HOME')", "env_variable"),
        ("import subprocess", "wrong_api"),
        ("import urllib.request", "wrong_api"),
    ])
    def test_banned_api_positive(self, snippet, error_type):
        code = snippet + PIPELINE_STUB
        report = analyze_source(code)
        matches = [f for f in report.errors() if f.rule_id == "banned-api"]
        assert matches and matches[0].error_type == error_type

    def test_banned_api_negative(self):
        code = "import numpy as np\nimport os.path" + PIPELINE_STUB
        assert "banned-api" not in _error_rules(code)

    def test_leakage_fit_on_test(self):
        code = (
            "def run_pipeline(train, test):\n"
            "    vec = TableVectorizer()\n"
            "    vec.fit(test)\n"
            "    return {}\n"
        )
        report = analyze_source(code)
        assert any(
            f.rule_id == "data-leakage" and f.error_type == "task_mismatch"
            for f in report.errors()
        )

    def test_leakage_fit_on_concatenated_split(self):
        code = (
            "import numpy as np\n"
            "def run_pipeline(train, test):\n"
            "    full = np.concatenate([train, test])\n"
            "    scaler = StandardScaler()\n"
            "    scaler.fit(full)\n"
            "    return {}\n"
        )
        assert "data-leakage" in _error_rules(code)

    def test_leakage_target_in_features(self):
        code = (
            "TARGET = 'label'\n"
            "FEATURES = ['x1', 'label']\n"
        ) + PIPELINE_STUB
        assert "data-leakage" in _error_rules(code)

    def test_leakage_negative_fit_on_train(self):
        code = (
            "TARGET = 'label'\n"
            "FEATURES = ['x1', 'x2']\n"
            "def run_pipeline(train, test):\n"
            "    vec = TableVectorizer()\n"
            "    vec.fit_transform(train)\n"
            "    vec.transform(test)\n"
            "    return {}\n"
        )
        assert "data-leakage" not in _error_rules(code)

    def test_nondeterminism_global_rng_warns(self):
        code = (
            "import numpy as np\n"
            "import random\n"
            "def run_pipeline(train, test):\n"
            "    noise = np.random.rand(10)\n"
            "    pick = random.choice([1, 2])\n"
            "    rng = np.random.default_rng()\n"
            "    return {}\n"
        )
        report = analyze_source(code)
        warnings = [f for f in report.warnings() if f.rule_id == "nondeterminism"]
        assert len(warnings) == 3
        # warnings never gate: the report is still statically clean
        assert report.ok

    def test_nondeterminism_random_state_none(self):
        code = (
            "from repro.ml import RandomForestClassifier\n"
            "def run_pipeline(train, test):\n"
            "    model = RandomForestClassifier(random_state=None)\n"
            "    return {}\n"
        )
        report = analyze_source(code)
        assert any(f.rule_id == "nondeterminism" for f in report.warnings())

    def test_nondeterminism_negative_seeded(self):
        code = (
            "import numpy as np\n"
            "from repro.ml import RandomForestClassifier\n"
            "def run_pipeline(train, test):\n"
            "    rng = np.random.default_rng(0)\n"
            "    model = RandomForestClassifier(random_state=0)\n"
            "    return {}\n"
        )
        assert not analyze_source(code).findings

    def test_signature_unexpected_keyword(self):
        code = (
            "from repro.ml import Ridge\n"
            "def run_pipeline(train, test):\n"
            "    model = Ridge(wrongness=3)\n"
            "    return {}\n"
        )
        report = analyze_source(code)
        matches = [f for f in report.errors() if f.rule_id == "signature"]
        assert matches and matches[0].error_type == "wrong_api"
        assert "wrongness" in matches[0].message

    def test_signature_missing_method(self):
        code = (
            "from repro.ml import Ridge\n"
            "def run_pipeline(train, test):\n"
            "    model = Ridge()\n"
            "    model.run_inference(test)\n"
            "    return {}\n"
        )
        assert "signature" in _error_rules(code)

    def test_signature_guarded_call_suppressed(self):
        # generated pipelines probe predict_proba inside try/except
        # (AttributeError, ValueError) — runtime-guarded, not a finding
        code = (
            "from repro.ml import Ridge\n"
            "def run_pipeline(train, test):\n"
            "    model = Ridge()\n"
            "    try:\n"
            "        model.predict_proba(test)\n"
            "    except (AttributeError, ValueError):\n"
            "        pass\n"
            "    return {}\n"
        )
        assert "signature" not in _error_rules(code)

    def test_signature_contextlib_suppress_guards(self):
        # with contextlib.suppress(AttributeError): is the same runtime
        # guard as try/except AttributeError
        code = (
            "import contextlib\n"
            "from repro.ml import Ridge\n"
            "def run_pipeline(train, test):\n"
            "    model = Ridge()\n"
            "    with contextlib.suppress(AttributeError):\n"
            "        model.predict_proba(test)\n"
            "    return {}\n"
        )
        assert "signature" not in _error_rules(code)

    def test_signature_suppress_unrelated_exception_no_guard(self):
        # suppressing an unrelated exception does not excuse the call
        code = (
            "import contextlib\n"
            "from repro.ml import Ridge\n"
            "def run_pipeline(train, test):\n"
            "    model = Ridge()\n"
            "    with contextlib.suppress(ZeroDivisionError):\n"
            "        model.run_inference(test)\n"
            "    return {}\n"
        )
        assert "signature" in _error_rules(code)

    def test_signature_negative_valid_call(self):
        code = (
            "from repro.ml import Ridge\n"
            "def run_pipeline(train, test):\n"
            "    model = Ridge(alpha=1.0)\n"
            "    model.fit(train, test)\n"
            "    return {}\n"
        )
        assert "signature" not in _error_rules(code)

    def test_rule_config_disable_and_severity(self):
        code = "def run_pipeline(train):\n    pass\n"
        config = RuleConfig(enabled={"entry-point": False})
        assert not analyze_source(code, config=config).findings
        config = RuleConfig(severities={"entry-point": Severity.WARNING})
        report = analyze_source(code, config=config)
        assert not report.errors() and report.warnings()

    def test_profiles_registered(self):
        assert set(PROFILES) == {"pipeline", "validate", "repo"}


@pytest.fixture(scope="module")
def generation_setup():
    rng = np.random.default_rng(0)
    n = 240
    x1 = rng.normal(size=n)
    x2 = rng.normal(size=n)
    x1[rng.choice(n, 15, replace=False)] = np.nan
    label = np.where(np.nan_to_num(x1) + x2 > 0, "pos", "neg")
    t = Table.from_dict({
        "x1": x1, "x2": x2,
        "cat": np.where(x2 > 0, "hi", "lo"),
        "label": label,
    }, name="static")
    labels = [str(v) for v in t["label"]]
    train, test = train_test_split(t, test_size=0.3, random_state=0, stratify=labels)
    catalog = profile_table(t, target="label", task_type="binary")
    return train, test, catalog


class TestGeneratedCorpus:
    def test_clean_generations_have_zero_error_findings(self, generation_setup):
        train, test, catalog = generation_setup
        for model in ("gpt-4o", "gemini-1.5", "llama3.1-70b"):
            for seed in range(3):
                llm = MockLLM(model, seed=seed, fault_injection=False)
                report = CatDB(llm).generate(train, test, catalog)
                assert report.success
                analysis = analyze_source(report.code)
                assert analysis.errors() == [], (model, seed)
                assert report.static_exec_skipped == 0

    def test_every_se_injector_caught_without_executing(self, generation_setup):
        train, test, catalog = generation_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        clean = CatDB(llm).generate(train, test, catalog).code
        se_faults = {
            "markdown_fence", "stray_prose", "broken_indentation",
            "unclosed_bracket", "missing_import", "truncated_code",
        }
        for name in se_faults:
            dirty = faults._INJECTORS[name](clean, 3)
            report = analyze_source(dirty)
            error = report.first_error()
            assert error is not None, name
            assert error.group.value == "SE", name

    def test_semantic_injectors_caught(self, generation_setup):
        train, test, catalog = generation_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        clean = CatDB(llm).generate(train, test, catalog).code
        for name, expected in [
            ("wrong_api", "wrong_api"),
            ("missing_data_file", "missing_data_file"),
            ("env_variable", "env_variable"),
        ]:
            dirty = faults._INJECTORS[name](clean, 3)
            error = analyze_source(dirty).first_error()
            assert error is not None and error.error_type.name == expected, name

    def test_kb_package_faults_stay_runtime(self, generation_setup):
        # `import xgboost` must NOT be a static finding: it is a runtime
        # ModuleNotFoundError the knowledge base patches after execution
        train, test, catalog = generation_setup
        llm = MockLLM("gpt-4o", fault_injection=False)
        clean = CatDB(llm).generate(train, test, catalog).code
        for name in ("missing_package", "package_version"):
            dirty = faults._INJECTORS[name](clean, 3)
            assert analyze_source(dirty).ok, name


class _DirtyLLM(LLMClient):
    """Always returns statically-dirty code (missing import of np)."""

    DIRTY = (
        "def run_pipeline(train, test):\n"
        "    return {'train_accuracy': float(np.mean([1.0]))}\n"
    )

    def __init__(self) -> None:
        self.model = "dirty-stub"
        self.calls = 0

    def complete(self, prompt, **kwargs):
        self.calls += 1
        return LLMResponse(
            content=f"<CODE>{self.DIRTY}</CODE>",
            prompt_tokens=10, completion_tokens=10, model=self.model,
        )


class TestExecSkipAudit:
    def test_dirty_code_never_reaches_executor(
        self, generation_setup, monkeypatch
    ):
        train, test, catalog = generation_setup
        executed: list[str] = []
        import repro.generation.generator as generator_module

        real_execute = generator_module.execute_pipeline_code

        def recording_execute(code, *args, **kwargs):
            executed.append(code)
            return real_execute(code, *args, **kwargs)

        monkeypatch.setattr(
            generator_module, "execute_pipeline_code", recording_execute
        )
        llm = _DirtyLLM()
        # static_fix off: this audit pins the pure gate-and-regenerate
        # path (with the fix tier on, the missing import is simply fixed
        # — covered by test_static_fix_repairs_dirty_code below)
        gen = CatDB(llm, max_fix_attempts=3, static_fix=False)
        report = gen.generate(train, test, catalog)
        # every dirty candidate was gated statically: zero executions of
        # the dirty code, one exec skip per inspection
        assert all(_DirtyLLM.DIRTY.strip() not in code for code in executed)
        assert report.static_exec_skipped >= gen.max_fix_attempts
        # the run still ends well via the deterministic fallback
        assert report.fallback_used and report.success

    def test_static_fix_repairs_dirty_code(self, generation_setup, monkeypatch):
        train, test, catalog = generation_setup
        executed: list[str] = []
        import repro.generation.generator as generator_module

        real_execute = generator_module.execute_pipeline_code

        def recording_execute(code, *args, **kwargs):
            executed.append(code)
            return real_execute(code, *args, **kwargs)

        monkeypatch.setattr(
            generator_module, "execute_pipeline_code", recording_execute
        )
        llm = _DirtyLLM()
        gen = CatDB(llm, max_fix_attempts=3)
        report = gen.generate(train, test, catalog)
        # the deterministic tier inserted the missing import: one static
        # fix, no LLM repair round-trip, and the repaired code executed
        assert report.static_fixes >= 1
        assert report.llm_fixes_avoided >= 1
        assert report.static_fix_types.get("missing_import", 0) >= 1
        assert report.llm_fixes == 0
        assert not report.fallback_used and report.success
        assert any("import numpy as np" in code for code in executed)
        # the raw dirty code itself still never executed
        assert all(
            "import numpy as np" in code
            for code in executed
            if _DirtyLLM.DIRTY.strip() in code
        )

    def test_static_gate_off_reproduces_execute_path(
        self, generation_setup, monkeypatch
    ):
        train, test, catalog = generation_setup
        executed: list[str] = []
        import repro.generation.generator as generator_module

        real_execute = generator_module.execute_pipeline_code

        def recording_execute(code, *args, **kwargs):
            executed.append(code)
            return real_execute(code, *args, **kwargs)

        monkeypatch.setattr(
            generator_module, "execute_pipeline_code", recording_execute
        )
        gen = CatDB(_DirtyLLM(), max_fix_attempts=1, static_gate=False)
        report = gen.generate(train, test, catalog)
        assert any(_DirtyLLM.DIRTY.strip() in code for code in executed)
        assert report.static_exec_skipped == 0

    def test_metrics_counters(self, generation_setup):
        train, test, catalog = generation_setup
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            gen = CatDB(_DirtyLLM(), max_fix_attempts=2, static_fix=False)
            gen.generate(train, test, catalog)
        finally:
            set_metrics(previous)
        assert registry.counter_value("static.exec_skipped") >= 2
        assert registry.counter_value(
            "static.findings", rule="missing-import"
        ) >= 2

    def test_static_fix_metrics_counters(self, generation_setup):
        train, test, catalog = generation_setup
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            gen = CatDB(_DirtyLLM(), max_fix_attempts=3)
            gen.generate(train, test, catalog)
        finally:
            set_metrics(previous)
        assert registry.counter_value(
            "repair.static_fixes", type="missing_import"
        ) >= 1
        assert registry.counter_value("repair.llm_fixes_avoided") >= 1

    def test_static_gate_keeps_clean_runs_bit_identical(self, generation_setup):
        train, test, catalog = generation_setup
        on = CatDB(MockLLM("gpt-4o", fault_injection=False))
        off = CatDB(MockLLM("gpt-4o", fault_injection=False), static_gate=False)
        assert (
            on.generate(train, test, catalog).code
            == off.generate(train, test, catalog).code
        )


BUGGY_BREAKER = '''
import threading

class Breaker:
    def __init__(self):
        self._lock = threading.Lock()
        self._failures = 0

    def failure_rate(self):
        with self._lock:
            return self._failures / 10

    def before_call(self):
        with self._lock:
            if self.failure_rate() > 0.5:
                raise RuntimeError("open")
'''


class TestRepoProfile:
    def test_breaker_reentry_flagged(self):
        report = analyze_source(BUGGY_BREAKER, profile="repo")
        matches = [f for f in report.errors() if f.rule_id == "lock-reentry"]
        assert matches and "failure_rate" in matches[0].message

    def test_locked_helper_pattern_clean(self):
        fixed = BUGGY_BREAKER.replace(
            "self.failure_rate()", "self._failure_rate_locked()"
        ) + (
            "\n    def _failure_rate_locked(self):\n"
            "        return self._failures / 10\n"
        )
        assert analyze_source(fixed, profile="repo").ok

    def test_rlock_not_flagged(self):
        code = BUGGY_BREAKER.replace("threading.Lock()", "threading.RLock()")
        assert analyze_source(code, profile="repo").ok

    def test_unseeded_random_flagged(self):
        code = "import numpy as np\nnoise = np.random.rand(5)\n"
        assert "unseeded-random" in _error_rules(code, profile="repo")
        seeded = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert analyze_source(seeded, profile="repo").ok

    def test_wall_clock_warns(self):
        code = "import time\nstamp = time.time()\n"
        report = analyze_source(code, profile="repo")
        assert any(f.rule_id == "wall-clock" for f in report.warnings())
        # monotonic timers are the sanctioned alternative
        ok = "import time\nstart = time.monotonic()\nd = time.perf_counter()\n"
        assert not analyze_source(ok, profile="repo").findings

    def test_per_row_iteration_flagged(self):
        code = (
            "def f(table):\n"
            "    out = []\n"
            "    for i in range(table.n_rows):\n"
            "        out.append(table.row(i))\n"
            "    return out\n"
        )
        report = analyze_source(code, profile="repo")
        assert any(
            f.rule_id == "per-row-iteration" for f in report.warnings()
        )

    def test_per_row_len_subscript_flagged(self):
        code = (
            "def f(values):\n"
            "    total = 0\n"
            "    for i in range(len(values)):\n"
            "        total += values[i]\n"
            "    return total\n"
        )
        report = analyze_source(code, profile="repo")
        assert any(
            f.rule_id == "per-row-iteration" for f in report.warnings()
        )

    def test_per_row_len_without_subscript_clean(self):
        code = (
            "def f(values):\n"
            "    for i in range(len(values)):\n"
            "        print(i)\n"
        )
        report = analyze_source(code, profile="repo")
        assert not any(
            f.rule_id == "per-row-iteration" for f in report.findings
        )

    def test_per_row_pragma_suppresses(self):
        code = (
            "def f(table):\n"
            "    for i in range(table.n_rows):  # repro: allow-per-row\n"
            "        table.row(i)\n"
        )
        report = analyze_source(code, profile="repo")
        assert not any(
            f.rule_id == "per-row-iteration" for f in report.findings
        )

    def test_src_repro_lints_clean(self):
        reports = lint_paths(["src/repro"], profile="repo")
        errors = [f for r in reports for f in r.errors()]
        assert errors == [], [f.render() for f in errors]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_lint_verdict_worker_invariant(self, workers):
        baseline = lint_paths(["src/repro/resilience"], profile="repo", workers=1)
        parallel = lint_paths(
            ["src/repro/resilience"], profile="repo", workers=workers
        )
        assert [r.path for r in parallel] == [r.path for r in baseline]
        assert [
            f.to_dict() for r in parallel for f in r.findings
        ] == [
            f.to_dict() for r in baseline for f in r.findings
        ]


class TestLintCli:
    def test_lint_src_repro_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["lint", "src/repro", "--profile", "repo"]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_lint_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BUGGY_BREAKER)
        from repro.cli import main

        assert main(["lint", str(tmp_path), "--profile", "repo"]) == 1
        assert "lock-reentry" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        from repro.cli import main

        assert main([
            "lint", str(tmp_path), "--profile", "repo", "--format", "json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["findings"][0]["rule_id"] == "unseeded-random"

    def test_lint_no_files(self, tmp_path):
        from repro.cli import main

        assert main(["lint", str(tmp_path)]) == 2
