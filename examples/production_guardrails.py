"""Production guardrails around generated pipelines.

Shows the three deployment-oriented extensions (paper Section 4.3 future
work, implemented here):

1. **Library policies** — generation under an allowlist; violating imports
   are rewritten to approved equivalents or reported.
2. **Expectation suites** — data validation derived from the catalog,
   catching drifted serving data before the pipeline consumes it.
3. **Artifact store** — every run persisted (pipeline.py / report.json /
   catalog.json) for scrutiny and re-execution.

Run with:  python examples/production_guardrails.py
"""

import tempfile

from repro.catalog.validation import ExpectationSuite
from repro.datasets import inject_missing_values, inject_outliers, load_dataset
from repro.generation.artifacts import ArtifactStore
from repro.generation.constraints import LibraryPolicy
from repro.generation.executor import execute_pipeline_code
from repro.generation.generator import CatDB
from repro.llm.mock import MockLLM
from repro.ml import train_test_split


def main() -> None:
    bundle = load_dataset("house_sales", n=1200)
    unified = bundle.unified
    train, test = train_test_split(unified, test_size=0.3, random_state=0)
    catalog = bundle.profile()

    # 1. generate under a strict library policy
    policy = LibraryPolicy(disallowed=frozenset({"torch", "tensorflow"}))
    generator = CatDB(MockLLM("gpt-4o", seed=0), library_policy=policy)
    report = generator.generate(train, test, catalog)
    print(f"generation: success={report.success}  "
          f"policy violations remaining={len(report.library_violations)}")
    print("metrics:", {k: round(v, 4) if isinstance(v, float) else v
                       for k, v in report.metrics.items()})

    # 2. persist the run
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        artifact = store.save(report, catalog=catalog)
        print(f"\npersisted run: {artifact.directory}")
        for artifact_path in (artifact.pipeline_path, artifact.report_path,
                              artifact.catalog_path):
            print(f"  - {artifact_path.name}")

        # 3. validate a fresh serving batch before re-executing the pipeline
        suite = ExpectationSuite.from_catalog(catalog)
        clean_batch = load_dataset("house_sales", n=400, seed=99).unified
        print("\nclean serving batch:",
              suite.validate(clean_batch).render().splitlines()[0])

        drifted = inject_outliers(clean_batch, bundle.target, 0.15,
                                  magnitude=30, seed=1)
        drifted = inject_missing_values(drifted, bundle.target, 0.4, seed=2)
        drift_report = suite.validate(drifted)
        print("\ndrifted serving batch:")
        print(drift_report.render())

        # the persisted pipeline replays identically on valid data
        code = store.load_pipeline(artifact)
        replay = execute_pipeline_code(code, train, test)
        print(f"\nreplay from artifact store: success={replay.success}  "
              f"test_r2={replay.metrics.get('test_r2'):.4f}")


if __name__ == "__main__":
    main()
