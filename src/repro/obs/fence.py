"""Observability fencing for abandonable worker threads.

Thread-mode execution timeouts (``run_with_timeout(mode="thread")``)
inject :class:`~repro.resilience.deadline.ExecutionTimeout` into the
worker, but a worker stuck in a C call — or one that swallows
``BaseException`` — survives the grace period and is *abandoned*: the
daemon thread keeps running until process exit while the orchestrator
moves on, possibly into a different run's session.

Two failure modes follow, and :class:`ObsFence` fixes both:

1. **Lost emissions** (mode-parity bug): a plain worker thread starts
   with a fresh contextvars context, so its spans/metrics land in the
   null sinks instead of the caller's session.  ``ObsFence.wrap``
   captures the caller's tracer/metrics (and current span, for correct
   nesting) and installs them in the worker's copied context.
2. **Late emissions** (cross-run corruption): once the caller gives up
   on the worker, anything the zombie emits later must not land in a
   session it no longer belongs to.  The captured tracer/metrics are
   installed behind fenced proxies; ``seal()`` flips a
   ``threading.Event`` and every subsequent emission from the abandoned
   worker is dropped.

Spans the worker opened *before* the seal stay in the run that started
them (they were recorded at open time); sealing only stops new spans,
counters, gauges, and histogram observations.
"""

from __future__ import annotations

import contextvars
import threading
from typing import Any, Callable, TypeVar

from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer, get_tracer, set_tracer

__all__ = ["FencedMetrics", "FencedTracer", "ObsFence"]

T = TypeVar("T")


class FencedMetrics(MetricsRegistry):
    """Delegates to the captured registry until the fence seals."""

    def __init__(self, inner: MetricsRegistry, fence: threading.Event) -> None:
        super().__init__()
        self._inner = inner
        self._fence = fence

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        if not self._fence.is_set():
            self._inner.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        if not self._fence.is_set():
            self._inner.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if not self._fence.is_set():
            self._inner.observe(name, value, **labels)

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._inner.counter_value(name, **labels)

    def snapshot(self) -> dict[str, Any]:
        return self._inner.snapshot()


class FencedTracer(Tracer):
    """Delegates to the captured tracer until the fence seals."""

    def __init__(self, inner: Tracer, fence: threading.Event) -> None:
        super().__init__()
        self._inner = inner
        self._fence = fence
        self.enabled = inner.enabled

    def span(self, name: str, **attrs: Any) -> Any:
        if self._fence.is_set():
            return NULL_TRACER.span(name)
        return self._inner.span(name, **attrs)

    def attach(self, parent: Span | None) -> Any:
        if self._fence.is_set():
            return NULL_TRACER.attach(parent)
        return self._inner.attach(parent)

    def current(self) -> Span | None:
        if self._fence.is_set():
            return None
        return self._inner.current()

    def to_dicts(self) -> list[dict[str, Any]]:
        return self._inner.to_dicts()


class ObsFence:
    """One-shot fence between a worker thread and its caller's session."""

    def __init__(self) -> None:
        self._event = threading.Event()

    @property
    def sealed(self) -> bool:
        return self._event.is_set()

    def seal(self) -> None:
        """Cut the worker off: every later emission through the fence drops."""
        self._event.set()

    def wrap(self, fn: Callable[[], T]) -> Callable[[], T]:
        """A zero-arg callable running ``fn`` behind this fence.

        Must be called on the *caller's* thread: it snapshots the active
        tracer/metrics and current span there, then runs ``fn`` in a
        copied context with the fenced proxies installed, the worker's
        spans nesting under the caller's current span.  When
        observability is off entirely, ``fn`` is returned unchanged.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        if tracer is NULL_TRACER and metrics is NULL_METRICS:
            return fn
        parent = tracer.current()
        fenced_tracer = FencedTracer(tracer, self._event)
        fenced_metrics = FencedMetrics(metrics, self._event)
        ctx = contextvars.copy_context()

        def _runner() -> T:
            set_tracer(fenced_tracer)
            set_metrics(fenced_metrics)
            with fenced_tracer.attach(parent):
                return fn()

        return lambda: ctx.run(_runner)
