"""Adversarial pipeline corpus + the pool containment soak.

Each entry is a hostile ``run_pipeline`` script exercising one way a
generated pipeline can attack the orchestrator: spin forever, allocate
gigabytes, tear the interpreter down (``sys.exit`` / ``os._exit``),
segfault through ctypes, or flood stdout.  The pool must *contain* every
one of them — the orchestrator survives, the failure is classified onto
the RE taxonomy, and the worker is recycled where it died — while clean
pipelines stay bit-identical to in-process execution.

:func:`run_adversarial_soak` is the CLI/CI gate
(``repro soak --adversarial --exec-mode pool``): N seeded executions
drawing variants from a :func:`~repro.llm.rand.stable_hash` schedule.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

from repro.generation.errors import ERROR_TYPES
from repro.llm.rand import stable_hash
from repro.table.table import Table

__all__ = [
    "ADVERSARIAL_PIPELINES",
    "CLEAN_PIPELINE",
    "adversarial_tables",
    "pick_variant",
    "run_adversarial_soak",
]

#: A well-behaved pipeline used for parity checks inside the soak.
CLEAN_PIPELINE = '''
import numpy as np


def run_pipeline(train, test):
    x = np.asarray([float(v) for v in train["x"]])
    acc = float(np.clip(x.mean() / (abs(x).max() + 1.0) + 0.5, 0.0, 1.0))
    return {
        "train_accuracy": acc,
        "test_accuracy": acc,
        "model": "MeanClip",
        "n_features": 1,
    }
'''

#: name -> (script, expected RE-taxonomy error types)
ADVERSARIAL_PIPELINES: dict[str, tuple[str, tuple[str, ...]]] = {
    # pure-Python spin: the in-worker SIGALRM budget interrupts it
    "hang": (
        '''
def run_pipeline(train, test):
    while True:
        pass
''',
        ("no_convergence",),
    ),
    # C-blocked sleep that swallows the alarm once, then spins: the
    # worker-side budget re-raises / the parent SIGKILLs at grace
    "stubborn_hang": (
        '''
import time


def run_pipeline(train, test):
    while True:
        try:
            time.sleep(60)
        except BaseException:
            pass
''',
        ("no_convergence",),
    ),
    # ~2 GB allocation: RLIMIT_AS turns it into an in-pipeline
    # MemoryError (classified resource_limit), never an orchestrator OOM
    "bigalloc": (
        '''
import numpy as np


def run_pipeline(train, test):
    hog = np.ones(2 * 1024**3 // 8, dtype=np.float64)
    return {"test_accuracy": float(hog[0])}
''',
        ("resource_limit",),
    ),
    # interpreter teardown the polite way: BaseException, caught in-worker
    "sys_exit": (
        '''
import sys


def run_pipeline(train, test):
    sys.exit(3)
''',
        ("no_convergence",),
    ),
    # interpreter teardown the hard way: no exception, the process is gone
    "os_exit": (
        '''
import os


def run_pipeline(train, test):
    os._exit(7)
''',
        ("no_convergence",),
    ),
    # native crash: dereference NULL through ctypes
    "segfault": (
        '''
import ctypes


def run_pipeline(train, test):
    ctypes.string_at(0)
''',
        ("no_convergence", "resource_limit"),
    ),
    # stdout flood: must not corrupt the worker protocol stream
    "flood": (
        '''
def run_pipeline(train, test):
    for _ in range(2000):
        print("x" * 65536)
    raise RuntimeError("flooded")
''',
        ("no_convergence",),
    ),
}

_VARIANT_ORDER = tuple(ADVERSARIAL_PIPELINES) + ("clean",)


def adversarial_tables(seed: int = 0, rows: int = 64) -> tuple[Table, Table]:
    """Small deterministic train/test tables for the soak executions."""
    rng = np.random.default_rng(seed)
    def make(n: int, salt: int) -> Table:
        rng_local = np.random.default_rng(seed * 1000 + salt)
        return Table.from_dict({
            "x": rng_local.normal(size=n),
            "y": rng_local.choice(["p", "n"], size=n).tolist(),
        })
    del rng
    return make(rows, 1), make(max(8, rows // 3), 2)


def pick_variant(seed: int) -> str:
    """Deterministic hostile/clean mix (clean seeds anchor the parity check)."""
    return _VARIANT_ORDER[
        stable_hash("adversarial-soak", seed) % len(_VARIANT_ORDER)
    ]


def run_adversarial_soak(
    seeds: int = 50,
    timeout_seconds: float = 2.0,
    memory_mb: int = 512,
    exec_mode: str = "pool",
    verbose: bool = True,
) -> int:
    """Execute ``seeds`` adversarial/clean pipelines under the pool.

    Asserts, per seed: the orchestrator survives (no exception escapes
    ``execute_pipeline_code``), hostile failures classify into the
    expected RE-taxonomy types, and clean pipelines return results
    identical to in-process execution.  Returns a process exit code.
    """
    from repro.generation.executor import execute_pipeline_code

    failures: list[tuple[int, str]] = []
    by_variant: dict[str, int] = {}
    for seed in range(seeds):
        variant = pick_variant(seed)
        by_variant[variant] = by_variant.get(variant, 0) + 1
        train, test = adversarial_tables(seed)
        if variant == "clean":
            code, expected = CLEAN_PIPELINE, ()
        else:
            code, expected = ADVERSARIAL_PIPELINES[variant]
        try:
            result = execute_pipeline_code(
                code, train, test,
                timeout_seconds=timeout_seconds,
                mode=exec_mode,
                memory_mb=memory_mb,
            )
        except Exception as exc:  # noqa: BLE001 - any escape is the failure
            failures.append(
                (seed, f"{variant}: escaped {type(exc).__name__}: {exc}")
            )
            if verbose:
                print(f"seed {seed:3d}: {variant:13s} ESCAPED "
                      f"{type(exc).__name__}: {exc}")
            continue
        note = ""
        if variant == "clean":
            if not result.success:
                failures.append((seed, f"clean pipeline failed: {result.error}"))
                note = "  [clean FAILED]"
            else:
                inproc = execute_pipeline_code(
                    code, train, test,
                    timeout_seconds=timeout_seconds, mode="inproc",
                )
                if result.metrics != inproc.metrics:
                    failures.append((seed, "clean parity mismatch: "
                                     f"{result.metrics} != {inproc.metrics}"))
                    note = "  [parity MISMATCH]"
        else:
            if result.success:
                failures.append((seed, f"{variant} was not contained"))
                note = "  [NOT CONTAINED]"
            elif result.error is None or (
                result.error.error_type.name not in ERROR_TYPES
            ):
                failures.append((seed, f"{variant} left no classified error"))
                note = "  [UNCLASSIFIED]"
            elif expected and result.error.error_type.name not in expected:
                failures.append((
                    seed,
                    f"{variant} classified {result.error.error_type.name}, "
                    f"expected one of {expected}",
                ))
                note = "  [MISCLASSIFIED]"
        if verbose:
            status = "ok" if result.success else (
                result.error.error_type.name if result.error else "?"
            )
            print(f"seed {seed:3d}: {variant:13s} -> {status}{note}")
    mix = ", ".join(f"{k}={v}" for k, v in sorted(by_variant.items()))
    print(f"\nadversarial soak: {seeds} seeds @ exec_mode={exec_mode} "
          f"({mix}) -> {len(failures)} failures")
    for seed, why in failures:
        print(f"  seed {seed}: {why}", file=sys.stderr)
    return 1 if failures else 0
