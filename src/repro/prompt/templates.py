"""Prompt templates (Figure 6 for generation, Figure 7 for error fixing).

Every prompt has two faces: the human-readable text a real LLM would read
(task framing, schema tables, rule lists) and one machine-readable payload
block the offline :class:`~repro.llm.MockLLM` parses.  Token costs are
computed over the full rendered text, so prompt-size effects (chaining,
top-K projection, metadata combinations) behave like the paper's.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.catalog.catalog import DatasetInfo
from repro.llm.mock import embed_payload
from repro.prompt.rules import Rule

__all__ = ["render_pipeline_prompt", "render_error_prompt"]

_TASK_NAMES = {
    "binary": "binary classification",
    "multiclass": "multi-class classification",
    "regression": "regression",
}


def _dataset_section(info: DatasetInfo) -> str:
    lines = [
        "## Dataset",
        f"- name: {info.name}",
        f"- task: {_TASK_NAMES.get(info.task_type, info.task_type)}",
        f"- target column: {info.target}",
        f"- rows: {info.n_rows}, columns: {info.n_cols}, source tables: {info.n_tables}",
        f"- file: {info.file_path} (format: {info.file_format}, delimiter: {info.delimiter!r})",
    ]
    if info.description:
        lines.append(f"- description: {info.description}")
    return "\n".join(lines)


def _schema_section(schema: Sequence[dict[str, Any]]) -> str:
    lines = ["## Schema and metadata"]
    for entry in schema:
        parts = [f"{entry['name']} ({entry['data_type']}, {entry['feature_type']})"]
        if entry.get("is_target"):
            parts.append("TARGET COLUMN")
        if "distinct_count" in entry:
            parts.append(
                f"distinct: {entry['distinct_count']} "
                f"({entry.get('distinct_percentage', 0):.1f}%)"
            )
        if "missing_percentage" in entry:
            parts.append(f"missing: {entry['missing_percentage']:.1f}%")
        if "statistics" in entry:
            stats = entry["statistics"]
            parts.append(
                "stats: " + ", ".join(f"{k}={v:.3g}" for k, v in stats.items())
            )
        if "categorical_values" in entry:
            shown = entry["categorical_values"][:12]
            parts.append(f"values: {json.dumps(shown, default=str)}")
        if "target_correlation" in entry:
            parts.append(f"corr(target): {entry['target_correlation']:.2f}")
        lines.append("- " + " | ".join(str(p) for p in parts))
    return "\n".join(lines)


def _rules_section(rules: Sequence[Rule]) -> str:
    lines = ["## Rules"]
    for i, rule in enumerate(rules, start=1):
        lines.append(f"R{i} [{rule.section}] {rule.text}")
    return "\n".join(lines)


_SUBTASK_FRAMING = {
    "preprocessing": (
        "Generate ONLY the data pre-processing part of the pipeline for the "
        "columns listed below (cleaning, imputation, scaling)."
    ),
    "fe-engineering": (
        "Extend the pipeline with feature engineering for the columns listed "
        "below (encodings, derived features, feature selection)."
    ),
    "model-selection": (
        "Complete the pipeline with model selection and training based on "
        "the target column, integrating the previously generated steps."
    ),
}


def render_pipeline_prompt(
    info: DatasetInfo,
    schema: Sequence[dict[str, Any]],
    rules: Sequence[Rule],
    subtasks: Sequence[str] = ("preprocessing", "fe-engineering", "model-selection"),
    previous_code: str | None = None,
    previous_schema: Sequence[dict[str, Any]] = (),
    iteration: int = 0,
    few_shot: int = 0,
) -> str:
    """Render a single (or chain-step) pipeline-generation prompt.

    ``few_shot > 0`` prepends worked examples (the ablation of CatDB's
    zero-shot design; see :mod:`repro.prompt.fewshot`).
    """
    task_name = _TASK_NAMES.get(info.task_type, info.task_type)
    header = [
        "# CatDB pipeline generation",
        "You are an expert data scientist. Generate a complete, runnable",
        f"Python data-centric ML pipeline for the {task_name} task described",
        "below. Follow every rule. Use only the documented `repro.table` and",
        "`repro.ml` APIs. Return the code between <CODE> and </CODE> tags.",
    ]
    if len(subtasks) < 3:
        header.append("")
        header.extend(_SUBTASK_FRAMING[s] for s in subtasks)
    sections = ["\n".join(header)]
    if few_shot > 0:
        from repro.prompt.fewshot import render_few_shot_block

        sections.append(render_few_shot_block(few_shot))
    sections.extend([
        _dataset_section(info),
        _schema_section(schema),
        _rules_section(list(rules)),
    ])
    if previous_code:
        sections.append("## Previously generated pipeline steps\n<CODE>\n"
                        + previous_code + "\n</CODE>")
    payload = {
        "task": "pipeline",
        "dataset": info.to_dict(),
        "schema": list(schema),
        "previous_schema": list(previous_schema),
        "rules": [r.to_payload() for r in rules],
        "subtasks": list(subtasks),
        "iteration": iteration,
    }
    sections.append(embed_payload(payload))
    return "\n\n".join(sections)


def render_error_prompt(
    info: DatasetInfo,
    code: str,
    error_type: str,
    error_message: str,
    error_line: int | None,
    attempt: int,
    schema: Sequence[dict[str, Any]] = (),
    rules: Sequence[Rule] = (),
    include_metadata: bool = True,
) -> str:
    """Render the Figure-7 error-correction prompt.

    Combines (1) the erroneous code in ``<CODE>`` tags, (2) the error
    message with line information in ``<ERROR>`` tags, and (3) a summary of
    the original prompt — metadata included only for runtime errors, per
    the paper.
    """
    location = f" at line {error_line}" if error_line is not None else ""
    sections = [
        "# CatDB pipeline error correction",
        "The pipeline below fails. Fix the error and return the corrected",
        "code between <CODE> and </CODE> tags. Keep all working parts.",
        f"<CODE>\n{code}\n</CODE>",
        f"<ERROR>\n{error_message}{location}\n</ERROR>",
        f"(error category: {error_type}, repair attempt {attempt})",
        _dataset_section(info),
    ]
    summary: dict[str, Any] | None = None
    if include_metadata:
        sections.append(_schema_section(schema))
        summary = {
            "task": "pipeline",
            "dataset": info.to_dict(),
            "schema": list(schema),
            "rules": [r.to_payload() for r in rules],
            "subtasks": ["preprocessing", "fe-engineering", "model-selection"],
        }
    payload = {
        "task": "error_fix",
        "code": code,
        "error": {
            "type": error_type,
            "message": error_message,
            "line": error_line,
        },
        "attempt": attempt,
        "summary": summary,
    }
    sections.append(embed_payload(payload))
    return "\n\n".join(sections)
