"""The CatDB user API (paper Section 2, "User API").

The paper sketches:

.. code-block:: text

    1: md  = catdb_collect(M)            /* collect metadata */
    2: llm = LLM(model, client_url, config)  /* config LLM */
    3: P   = catdb_pipgen(md, llm)
    4: /* P.code: source code of generated pipeline */
    5: /* P.results: outputs of pipeline's execution */

This module provides exactly that surface over the library internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.catalog.catalog import DataCatalog
from repro.catalog.profiler import profile_dataset, profile_table
from repro.catalog.refinement import RefinementResult, refine_catalog
from repro.generation.generator import CatDB, CatDBChain, GenerationReport
from repro.llm.base import LLMClient
from repro.ml.model_selection import train_test_split
from repro.table.io_csv import read_csv
from repro.table.table import Table

__all__ = ["LLM", "PipelineResult", "catdb_collect", "catdb_refine", "catdb_pipgen"]


def LLM(model: str, client_url: str = "", config: Mapping[str, Any] | None = None) -> LLMClient:
    """Configure an LLM client.

    In the original system this selects OpenAI / Google AI Studio / Groq by
    ``client_url``; here every model resolves to the offline
    :class:`~repro.llm.MockLLM` with the matching behaviour profile.
    ``config`` accepts ``seed`` and ``fault_injection``, plus the
    resilience knobs ``fault_rate`` (transient-fault injection via
    :class:`~repro.llm.FlakyLLM`), ``max_retries``, ``llm_timeout``, and
    ``retry_base_delay`` (any of which wraps the client in
    :class:`~repro.llm.ResilientLLM`); see ``docs/resilience.md``.
    """
    config = dict(config or {})
    from repro.llm import build_client

    return build_client(
        model,
        seed=int(config.get("seed", 0)),
        fault_injection=bool(config.get("fault_injection", True)),
        fault_rate=float(config.get("fault_rate", 0.0)),
        max_retries=config.get("max_retries"),
        llm_timeout=config.get("llm_timeout"),
        retry_base_delay=float(config.get("retry_base_delay", 0.05)),
    )


@dataclass
class PipelineResult:
    """What ``catdb_pipgen`` hands back to the user."""

    code: str
    results: dict[str, Any]
    report: GenerationReport
    refinement: RefinementResult | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        return self.report.success


def catdb_collect(
    M: Mapping[str, Any] | str | Table | Sequence[Table],
    target: str | None = None,
    task_type: str | None = None,
    **kwargs: Any,
) -> DataCatalog:
    """Collect metadata for a dataset into a :class:`DataCatalog`.

    ``M`` may be a CSV path, a :class:`Table`, a sequence of tables (with a
    ``join_plan`` keyword), or a mapping with keys ``data`` (any of the
    former), ``target``, ``task_type``, and optional profiling keywords.
    """
    if isinstance(M, Mapping):
        options = dict(M)
        data = options.pop("data")
        target = options.pop("target", target)
        task_type = options.pop("task_type", task_type)
        kwargs = {**options, **kwargs}
    else:
        data = M
    if target is None or task_type is None:
        raise ValueError("catdb_collect requires `target` and `task_type`")
    if isinstance(data, str):
        data = read_csv(data)
    if isinstance(data, Table):
        return profile_table(data, target=target, task_type=task_type, **kwargs)
    return profile_dataset(list(data), target=target, task_type=task_type, **kwargs)


def catdb_refine(
    table: Table, catalog: DataCatalog, llm: LLMClient
) -> RefinementResult:
    """Run LLM-assisted catalog refinement + data cleaning (Section 3.2)."""
    return refine_catalog(table, catalog, llm)


def catdb_pipgen(
    md: DataCatalog,
    llm: LLMClient,
    data: Table | None = None,
    train: Table | None = None,
    test: Table | None = None,
    alpha: int | None = None,
    beta: int = 1,
    combination: int = 11,
    refine: bool = False,
    max_fix_attempts: int = 5,
    iteration: int = 0,
    test_size: float = 0.3,
    seed: int = 0,
    exec_timeout_seconds: float | None = None,
    exec_mode: str | None = None,
    exec_memory_mb: int | None = None,
) -> PipelineResult:
    """Generate, validate, and execute a data-centric ML pipeline.

    Pass either a full ``data`` table (split 70/30 internally, matching the
    paper's protocol) or explicit ``train``/``test`` tables.  ``beta > 1``
    selects CatDB Chain.  ``refine=True`` first runs catalog refinement and
    materializes the cleaned dataset.  ``exec_timeout_seconds`` bounds each
    generated-pipeline execution with a hard wall-clock budget;
    ``exec_mode="pool"`` runs each execution in an isolated subprocess
    worker with an optional ``exec_memory_mb`` address-space cap (see
    :mod:`repro.execpool`).
    """
    if data is None and (train is None or test is None):
        raise ValueError("pass `data`, or both `train` and `test`")
    if data is not None:
        if md.info.task_type == "regression":
            train, test = train_test_split(data, test_size=test_size, random_state=seed)
        else:
            labels = [str(v) for v in data[md.info.target]]
            train, test = train_test_split(
                data, test_size=test_size, random_state=seed, stratify=labels
            )
    assert train is not None and test is not None

    refinement: RefinementResult | None = None
    if refine:
        refinement = refine_catalog(train, md, llm)
        md = refinement.catalog
        from repro.catalog.materialize import materialize_refined

        train = refinement.table
        test = materialize_refined(test, refinement.category_mappings)
        # composite splits and numeric conversions must hit the test set too
        test = _replay_structural_ops(test, refinement)

    if beta <= 1:
        generator: CatDB = CatDB(
            llm, alpha=alpha, combination=combination,
            max_fix_attempts=max_fix_attempts,
            exec_timeout_seconds=exec_timeout_seconds,
            exec_mode=exec_mode, exec_memory_mb=exec_memory_mb,
        )
    else:
        generator = CatDBChain(
            llm, beta=beta, alpha=alpha, combination=combination,
            max_fix_attempts=max_fix_attempts,
            exec_timeout_seconds=exec_timeout_seconds,
            exec_mode=exec_mode, exec_memory_mb=exec_memory_mb,
        )
    report = generator.generate(train, test, md, iteration=iteration)
    return PipelineResult(
        code=report.code, results=report.metrics, report=report,
        refinement=refinement,
    )


def _replay_structural_ops(table: Table, refinement: RefinementResult) -> Table:
    """Apply refinement structure changes (splits, numeric casts) to a new split."""
    from repro.llm import semantics
    from repro.table.column import Column

    out = table
    for op in refinement.operations:
        name = op["column"]
        if op["op"] == "composite_split" and name in out:
            spec = semantics.detect_composite(out[name].unique())
            if spec is None:
                out = out.drop([name])
                continue
            parts: dict[str, list[Any]] = {p: [] for p in spec.parts}
            for cell in out[name]:
                split = spec.split(cell)
                for part in spec.parts:
                    parts[part].append(split[part])
            out = out.drop([name])
            for part_name in op["parts"]:
                suffix = part_name.split("_")[-1]
                values = parts.get(suffix) or parts.get(part_name)
                if values is not None:
                    out.add_column(Column(part_name, values))
        elif op["op"] == "to_numeric" and name in out:
            converted = out[name].astype_numeric()
            out = Table(
                (
                    converted if existing == name else out[existing]
                    for existing in out.column_names
                ),
                name=out.name,
            )
        elif op["op"] == "drop_constant" and name in out:
            out = out.drop([name])
    return out
