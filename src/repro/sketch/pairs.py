"""Mergeable pair summaries behind streaming target correlations.

The batch path computes |Pearson r| (numeric-numeric), the correlation
ratio (categorical-numeric), or Cramér's V (categorical-categorical)
from both full columns.  A :class:`PairSketch` carries the sufficient
statistics for *all three* outcomes — the pair's final kind combination
is only known once the stream ends:

- co-moments (Chan's parallel covariance) over rows where both cells
  parse as floats,
- per-category moments of the numeric side keyed by the categorical
  side's formatted token (both directions),
- a capped contingency table over formatted token pairs.

All four merges are associative; the streaming profiler folds them in
canonical chunk order, so correlations are deterministic for a given
``(seed, chunk_rows)`` at any worker count.  Category/cell caps make the
summaries constant-size; overflow prunes lowest-count cells (contingency)
or latest-first-seen groups (category moments) and flags the estimate
approximate.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.sketch.base import SketchConfig

__all__ = ["PairSketch"]

_FAR_ROW = 1 << 62


class _CoMoments:
    """n, means, M2s and co-moment C_xy with Chan's parallel merge."""

    __slots__ = ("n", "mean_x", "mean_y", "m2x", "m2y", "cxy")

    def __init__(self) -> None:
        self.n = 0
        self.mean_x = self.mean_y = 0.0
        self.m2x = self.m2y = self.cxy = 0.0

    def update(self, xs: np.ndarray, ys: np.ndarray) -> None:
        n_b = int(xs.size)
        if n_b == 0:
            return
        mean_x = float(xs.mean())
        mean_y = float(ys.mean())
        dx = xs - mean_x
        dy = ys - mean_y
        self._combine(
            n_b, mean_x, mean_y,
            float(np.sum(dx * dx)), float(np.sum(dy * dy)), float(np.sum(dx * dy)),
        )

    def _combine(
        self, n_b: int, mean_x: float, mean_y: float,
        m2x: float, m2y: float, cxy: float,
    ) -> None:
        n_a = self.n
        if n_a == 0:
            self.n = n_b
            self.mean_x, self.mean_y = mean_x, mean_y
            self.m2x, self.m2y, self.cxy = m2x, m2y, cxy
            return
        n = n_a + n_b
        dx = mean_x - self.mean_x
        dy = mean_y - self.mean_y
        self.m2x += m2x + dx * dx * n_a * n_b / n
        self.m2y += m2y + dy * dy * n_a * n_b / n
        self.cxy += cxy + dx * dy * n_a * n_b / n
        self.mean_x += dx * n_b / n
        self.mean_y += dy * n_b / n
        self.n = n

    def merge(self, other: "_CoMoments") -> None:
        if other.n:
            self._combine(
                other.n, other.mean_x, other.mean_y, other.m2x, other.m2y, other.cxy
            )

    def abs_pearson(self) -> float:
        if self.n < 3 or self.m2x <= 0.0 or self.m2y <= 0.0:
            return 0.0
        return min(abs(self.cxy) / math.sqrt(self.m2x * self.m2y), 1.0)


class _GroupMoments:
    """Per-category [n, mean, M2] of a numeric companion, capped."""

    __slots__ = ("cap", "groups", "saturated")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        # token -> [n, mean, m2, first_row]
        self.groups: dict[str, list[Any]] = {}
        self.saturated = False

    def update(self, tokens: list[str], values: np.ndarray, rows: list[int]) -> None:
        by_token: dict[str, list[int]] = {}
        for i, token in enumerate(tokens):
            by_token.setdefault(token, []).append(i)
        for token, idx in by_token.items():
            vals = values[idx]
            mean = float(vals.mean())
            m2 = float(np.sum((vals - mean) ** 2))
            first_row = min(rows[i] for i in idx)
            self._combine(token, len(idx), mean, m2, first_row)
        self._prune()

    def _combine(self, token: str, n_b: int, mean_b: float, m2_b: float, row: int) -> None:
        entry = self.groups.get(token)
        if entry is None:
            self.groups[token] = [n_b, mean_b, m2_b, row]
            return
        n_a, mean_a, m2_a, first = entry
        n = n_a + n_b
        delta = mean_b - mean_a
        entry[0] = n
        entry[1] = mean_a + delta * n_b / n
        entry[2] = m2_a + m2_b + delta * delta * n_a * n_b / n
        entry[3] = min(first, row)

    def _prune(self) -> None:
        if len(self.groups) > self.cap:
            ranked = sorted(self.groups.items(), key=lambda kv: (kv[1][3], kv[0]))
            self.groups = dict(ranked[: self.cap])
            self.saturated = True

    def merge(self, other: "_GroupMoments") -> None:
        for token, (n, mean, m2, row) in other.groups.items():
            self._combine(token, n, mean, m2, row)
        self.saturated = self.saturated or other.saturated
        self._prune()

    def correlation_ratio(self) -> float:
        total = sum(entry[0] for entry in self.groups.values())
        if total < 3:
            return 0.0
        grand = sum(entry[0] * entry[1] for entry in self.groups.values()) / total
        ss_between = sum(
            entry[0] * (entry[1] - grand) ** 2 for entry in self.groups.values()
        )
        ss_total = ss_between + sum(entry[2] for entry in self.groups.values())
        if ss_total <= 0.0:
            return 0.0
        return math.sqrt(ss_between / ss_total)


class _Contingency:
    """Capped (token_a, token_b) count table for Cramér's V."""

    __slots__ = ("cap", "cells", "saturated")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.cells: dict[tuple[str, str], int] = {}
        self.saturated = False

    def update(self, tokens_a: list[str], tokens_b: list[str]) -> None:
        cells = self.cells
        for pair in zip(tokens_a, tokens_b):
            cells[pair] = cells.get(pair, 0) + 1
        self._prune()

    def _prune(self) -> None:
        if len(self.cells) > self.cap:
            ranked = sorted(self.cells.items(), key=lambda kv: (-kv[1], kv[0]))
            self.cells = dict(ranked[: self.cap])
            self.saturated = True

    def merge(self, other: "_Contingency") -> None:
        cells = self.cells
        for pair, count in other.cells.items():
            cells[pair] = cells.get(pair, 0) + count
        self.saturated = self.saturated or other.saturated
        self._prune()

    def cramers_v(self) -> float:
        if not self.cells:
            return 0.0
        a_levels = sorted({a for a, _ in self.cells})
        b_levels = sorted({b for _, b in self.cells})
        if len(a_levels) < 2 or len(b_levels) < 2:
            return 0.0
        a_index = {level: i for i, level in enumerate(a_levels)}
        b_index = {level: i for i, level in enumerate(b_levels)}
        table = np.zeros((len(a_levels), len(b_levels)), dtype=np.float64)
        for (a, b), count in self.cells.items():
            table[a_index[a], b_index[b]] = count
        n = table.sum()
        if n < 3:
            return 0.0
        expected = np.outer(table.sum(axis=1), table.sum(axis=0)) / n
        with np.errstate(divide="ignore", invalid="ignore"):
            chi2 = np.nansum(
                np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
            )
        k = min(len(a_levels), len(b_levels))
        return float(np.sqrt(chi2 / (n * (k - 1))))


class PairSketch:
    """Summary of one (column, target) pair covering all kind outcomes."""

    __slots__ = ("config", "comoments", "eta_ab", "eta_ba", "contingency")

    def __init__(self, config: SketchConfig) -> None:
        self.config = config
        self.comoments = _CoMoments()
        # a categorical vs b numeric, and the mirror direction
        self.eta_ab = _GroupMoments(config.corr_category_cap)
        self.eta_ba = _GroupMoments(config.corr_category_cap)
        self.contingency = _Contingency(config.contingency_cap)

    def update(
        self,
        a_tokens: list[str | None],
        a_floats: np.ndarray,
        b_tokens: list[str | None],
        b_floats: np.ndarray,
        start_row: int,
    ) -> None:
        """Fold one chunk of the pair.

        ``*_tokens`` hold the formatted token per row (``None`` where the
        raw cell is missing); ``*_floats`` the float parse per row
        (``nan`` where missing or unparseable).
        """
        a_num = ~np.isnan(a_floats)
        b_num = ~np.isnan(b_floats)
        both_num = a_num & b_num
        if both_num.any():
            self.comoments.update(a_floats[both_num], b_floats[both_num])
        a_present = np.fromiter(
            (t is not None for t in a_tokens), dtype=bool, count=len(a_tokens)
        )
        b_present = np.fromiter(
            (t is not None for t in b_tokens), dtype=bool, count=len(b_tokens)
        )
        keep = a_present & b_num
        if keep.any():
            idx = np.nonzero(keep)[0].tolist()
            self.eta_ab.update(
                [a_tokens[i] for i in idx], b_floats[keep],
                [start_row + i for i in idx],
            )
        keep = b_present & a_num
        if keep.any():
            idx = np.nonzero(keep)[0].tolist()
            self.eta_ba.update(
                [b_tokens[i] for i in idx], a_floats[keep],
                [start_row + i for i in idx],
            )
        keep = a_present & b_present
        if keep.any():
            idx = np.nonzero(keep)[0].tolist()
            self.contingency.update(
                [a_tokens[i] for i in idx], [b_tokens[i] for i in idx]
            )

    def merge(self, other: "PairSketch") -> "PairSketch":
        if self.config != other.config:
            raise ValueError("cannot merge pair sketches with different configs")
        self.comoments.merge(other.comoments)
        self.eta_ab.merge(other.eta_ab)
        self.eta_ba.merge(other.eta_ba)
        self.contingency.merge(other.contingency)
        return self

    def correlation(self, a_numeric: bool, b_numeric: bool) -> float:
        """Association in [0, 1] given the pair's final kind combination."""
        if a_numeric and b_numeric:
            return self.comoments.abs_pearson()
        if a_numeric != b_numeric:
            groups = self.eta_ba if a_numeric else self.eta_ab
            return groups.correlation_ratio()
        return self.contingency.cramers_v()

    def __repr__(self) -> str:
        return (
            f"PairSketch(n_numeric={self.comoments.n}, "
            f"groups=({len(self.eta_ab.groups)}, {len(self.eta_ba.groups)}), "
            f"cells={len(self.contingency.cells)})"
        )
