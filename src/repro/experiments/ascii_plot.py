"""Tiny ASCII plotting helpers for figure-style benchmark output.

The paper's figures are line/bar charts; the benchmark harness renders
text tables plus these ASCII charts so `benchmarks/results/*.txt` can show
the *shape* of each figure without a plotting stack.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart", "series_plot"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    value_format: str = "{:.1f}",
    title: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title
    label_width = max(len(str(l)) for l in labels)
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    lines = [title] if title else []
    for label, value in zip(labels, values):
        fraction = max(0.0, min(1.0, abs(value) / peak))
        filled = fraction * width
        whole = int(filled)
        remainder = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[remainder] if remainder else "")
        rendered = value_format.format(value)
        lines.append(f"{str(label).ljust(label_width)} |{bar.ljust(width)}| {rendered}")
    return "\n".join(lines)


def series_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float | None]],
    height: int = 10,
    width: int = 60,
    title: str = "",
) -> str:
    """Multiple y-series over shared x positions, as a character grid.

    Each series gets a marker (its name's first letter); overlapping points
    show ``*``. Missing values (None) are skipped.
    """
    points: list[tuple[float, float, str]] = []
    for name, ys in series.items():
        marker = name[0].upper() if name else "?"
        for x, y in zip(x_values, ys):
            if y is not None:
                points.append((float(x), float(y), marker))
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = (height - 1) - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*" if grid[row][col] not in (" ", marker) else marker

    lines = [title] if title else []
    lines.append(f"{y_hi:8.2f} ┐")
    for row in grid:
        lines.append(" " * 9 + "│" + "".join(row))
    lines.append(f"{y_lo:8.2f} ┘" + "─" * width)
    lines.append(" " * 10 + f"{x_lo:<10.3g}{' ' * max(0, width - 20)}{x_hi:>10.3g}")
    legend = "  ".join(f"{name[0].upper()}={name}" for name in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
