"""Nearest-neighbour models and the TabPFN stand-in.

``TabPFNProxy`` mimics the operational envelope of TabPFN as used by CAAFE
in the paper: excellent on small, clean classification data, but it
*refuses* (raises :class:`MemoryError`) beyond its sample/feature/class
limits — which is exactly how CAAFE-TabPFN fails ("Out of Mem.") on the
paper's large datasets (Tables 5 and 7).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_X, check_X_y

__all__ = ["KNeighborsClassifier", "KNeighborsRegressor", "TabPFNProxy"]


class _BaseKNN(BaseEstimator):
    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def _neighbors(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Indices and distances of the k nearest training rows per query."""
        diff_sq = (
            np.sum(X**2, axis=1, keepdims=True)
            - 2.0 * X @ self._X_train.T
            + np.sum(self._X_train**2, axis=1)
        )
        diff_sq = np.maximum(diff_sq, 0.0)
        k = min(self.n_neighbors, self._X_train.shape[0])
        idx = np.argpartition(diff_sq, k - 1, axis=1)[:, :k]
        rows = np.arange(X.shape[0])[:, None]
        return idx, np.sqrt(diff_sq[rows, idx])

    def _neighbor_weights(self, distances: np.ndarray) -> np.ndarray:
        if self.weights == "uniform":
            return np.ones_like(distances)
        return 1.0 / (distances + 1e-9)


class KNeighborsClassifier(_BaseKNN, ClassifierMixin):
    """Brute-force k-NN classification."""

    def fit(self, X: Any, y: Any) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = sorted(set(y.tolist()), key=str)
        index = {label: i for i, label in enumerate(self.classes_)}
        self._X_train = X
        self._codes = np.asarray([index[v] for v in y], dtype=np.int64)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        self._check_fitted("_X_train")
        X = check_X(X)
        idx, distances = self._neighbors(X)
        weights = self._neighbor_weights(distances)
        proba = np.zeros((X.shape[0], len(self.classes_)))
        for c in range(len(self.classes_)):
            proba[:, c] = np.sum(weights * (self._codes[idx] == c), axis=1)
        totals = proba.sum(axis=1, keepdims=True)
        return proba / np.where(totals > 0, totals, 1.0)

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        picks = np.argmax(proba, axis=1)
        return np.asarray([self.classes_[p] for p in picks], dtype=object)


class KNeighborsRegressor(_BaseKNN, RegressorMixin):
    """Brute-force k-NN regression."""

    def fit(self, X: Any, y: Any) -> "KNeighborsRegressor":
        X, y = check_X_y(X, y)
        self._X_train = X
        self._y_train = y.astype(np.float64)
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted("_X_train")
        X = check_X(X)
        idx, distances = self._neighbors(X)
        weights = self._neighbor_weights(distances)
        values = self._y_train[idx]
        return np.sum(weights * values, axis=1) / np.sum(weights, axis=1)


class TabPFNProxy(BaseEstimator, ClassifierMixin):
    """Stand-in for TabPFN with its published operating limits.

    Internally a distance-weighted k-NN over standardized features (a prior
    that works well on small clean data), but refuses to fit beyond
    ``max_samples`` training rows, ``max_features`` columns, or
    ``max_classes`` classes, raising :class:`MemoryError` exactly like the
    real model's GPU memory blow-up reported in the paper.
    """

    def __init__(
        self,
        max_samples: int = 1000,
        max_features: int = 100,
        max_classes: int = 10,
        n_neighbors: int = 9,
    ) -> None:
        self.max_samples = max_samples
        self.max_features = max_features
        self.max_classes = max_classes
        self.n_neighbors = n_neighbors

    def fit(self, X: Any, y: Any) -> "TabPFNProxy":
        X, y = check_X_y(X, y)
        if X.shape[0] > self.max_samples:
            raise MemoryError(
                f"TabPFN supports at most {self.max_samples} training samples, "
                f"got {X.shape[0]}"
            )
        if X.shape[1] > self.max_features:
            raise MemoryError(
                f"TabPFN supports at most {self.max_features} features, got {X.shape[1]}"
            )
        n_classes = len(set(y.tolist()))
        if n_classes > self.max_classes:
            raise MemoryError(
                f"TabPFN supports at most {self.max_classes} classes, got {n_classes}"
            )
        mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._mu, self._sigma = mean, np.where(std > 0, std, 1.0)
        self._knn = KNeighborsClassifier(
            n_neighbors=min(self.n_neighbors, X.shape[0]), weights="distance"
        )
        self._knn.fit((X - self._mu) / self._sigma, y)
        self.classes_ = self._knn.classes_
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        self._check_fitted("_knn")
        X = check_X(X)
        return self._knn.predict_proba((X - self._mu) / self._sigma)

    def predict(self, X: Any) -> np.ndarray:
        self._check_fitted("_knn")
        X = check_X(X)
        return self._knn.predict((X - self._mu) / self._sigma)
