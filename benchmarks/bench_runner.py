"""Micro-benchmark of the parallel experiment scheduler.

Times a representative 12-cell grid (fig13-shaped: shared
``prepare_dataset`` upstream, one ``run_catdb``/``run_llm_baseline``
fan-out per cell) sequentially (``workers=1``) and on a 4-thread pool,
and records the speedup alongside the results.  On the single-core CI
container the speedup is expected to be roughly neutral (the simulated
LLM latency still overlaps, the numpy work does not); the recorded
number is the point — multi-core machines should see it well above 1.

A correctness gate rides along: both runs must produce identical rows
(the scheduler's parallel == sequential determinism contract).
"""

import time

from benchmarks.conftest import save_result
from repro.experiments import fig13_tokens

_DATASETS = ("wifi", "cmc", "etailing")  # x 4 systems = 12 cells
_SYSTEMS = ("catdb", "catdb-chain", "aide", "autogen")


def _run(workers: int):
    start = time.perf_counter()
    result = fig13_tokens.run(
        datasets=_DATASETS, llms=("gemini-1.5",), systems=_SYSTEMS,
        quick=True, workers=workers,
    )
    return result, time.perf_counter() - start


def test_runner_parallel_speedup(benchmark):
    sequential, sequential_seconds = _run(workers=1)
    parallel, parallel_seconds = benchmark.pedantic(
        lambda: _run(workers=4), rounds=1, iterations=1,
    )

    # determinism contract: identical tables at any worker count
    assert sequential.rows == parallel.rows
    assert sequential.render() == parallel.render()
    assert len(sequential.rows) == len(_DATASETS) * len(_SYSTEMS)

    speedup = sequential_seconds / max(parallel_seconds, 1e-9)
    save_result("runner_speedup", "\n".join([
        "Scheduler micro-benchmark: 12-cell fig13 grid",
        f"sequential (workers=1): {sequential_seconds:8.2f}s",
        f"parallel   (workers=4): {parallel_seconds:8.2f}s",
        f"speedup:                {speedup:8.2f}x",
    ]))
    # Neutral-or-better even on one core: the pool must not make the
    # grid meaningfully slower than the sequential replay.
    assert parallel_seconds <= sequential_seconds * 1.5
