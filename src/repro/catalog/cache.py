"""Content-fingerprint-keyed cache for per-column profiling artifacts.

Profiling derives two expensive per-column artifacts: the 300-dim hashed
bag-of-values embedding and the hashed value set (both cost one md5 per
cell).  ``pairwise_similarities`` and ``find_inclusion_dependencies``
each need them for every column, and catalog refinement re-profiles the
(mostly unchanged) table a second time.  Keying by a *content*
fingerprint — not column name or object identity — means any two columns
with identical values share one computation, across calls and across
tables.

The fingerprint hashes the raw storage buffers (numeric columns) or the
value tuple (object columns), which is one to two orders of magnitude
cheaper than the md5-per-cell work it saves.  Entries are evicted LRU so
the cache stays memory-bounded under sustained traffic.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable

import numpy as np

from repro.table.column import Column, ColumnKind

__all__ = [
    "ProfileCache",
    "column_fingerprint",
    "encode_object_values",
    "get_default_cache",
    "clear_default_cache",
]


def column_fingerprint(column: Column) -> tuple:
    """Stable, content-only key for a column's derived artifacts.

    Two columns with equal kind, length, missing mask, and values get the
    same fingerprint regardless of name or object identity.  Numeric
    columns hash their float64/bool buffers directly (C speed); object
    columns md5 the encoded values (length-prefixed, so concatenation
    ambiguities cannot collide) plus the missing mask.

    The object branch deliberately avoids built-in ``hash(tuple(...))``:
    string hashes are salted per process (``PYTHONHASHSEED``), so that
    key is unstable across processes — a persistent or process-pool-
    shared cache would miss spuriously — and a 64-bit collision would
    silently return another column's embeddings.

    Data and mask run through *separate* md5 digests combined at the
    end.  A single sequential digest would force any producer to see all
    data bytes before the first mask byte; the two-digest layout lets
    the streaming profiler feed both hashes chunk-by-chunk (see
    :class:`repro.sketch.accumulators.FingerprintAccumulator`) and land
    on the identical fingerprint without materializing the column.
    """
    data_digest = hashlib.md5()
    mask_digest = hashlib.md5()
    if column.kind is ColumnKind.NUMERIC:
        data_digest.update(column.data.tobytes())
    elif column.codes is not None:
        # encode once per distinct pool value, gather bytes by code
        pool_bytes = [_encode_one(value) for value in column.pool.tolist()]
        ext = np.empty(len(pool_bytes) + 1, dtype=object)
        ext[:-1] = pool_bytes
        ext[-1] = b"\xff\x00none"  # code -1 wraps here (missing cells)
        data_digest.update(b"".join(ext[column.codes].tolist()))
    else:
        data_digest.update(encode_object_values(column.data.tolist()))
    mask_digest.update(column.missing.tobytes())
    content: Any = hashlib.md5(
        data_digest.digest() + mask_digest.digest()
    ).hexdigest()
    return (column.kind.value, len(column), int(column.missing.sum()), content)


def _encode_one(value: Any) -> bytes:
    if value is None:
        return b"\xff\x00none"
    encoded = str(value).encode("utf-8", "surrogatepass")
    return len(encoded).to_bytes(4, "little") + encoded


def encode_object_values(values: list) -> bytes:
    """Length-prefixed byte encoding of object-column cells.

    Shared by the batch fingerprint above and the streaming per-chunk
    byte producer, so both paths hash exactly the same octets.  Repeated
    values are encoded once (factorize-then-gather); hash-equal values of
    different types (``1`` vs ``1.0`` vs ``True``) encode per cell so the
    byte stream stays identical to the per-cell definition.
    """
    try:
        distinct = list(dict.fromkeys(values))
    except TypeError:
        distinct = None
    if distinct is None or len(distinct) >= len(values):
        parts: list[bytes] = []
        for value in values:
            parts.append(_encode_one(value))
        return b"".join(parts)
    crossable = set()
    for t in set(map(type, distinct)):
        if t is type(None) or issubclass(t, str):
            continue  # str/None never compare equal across types
        if issubclass(t, (int, float, np.integer, np.floating, np.bool_)):
            crossable.add(t)
        else:
            # unknown type: no cross-type equality guarantees, encode per cell
            return b"".join(_encode_one(value) for value in values)
    if len(crossable) > 1:
        # e.g. 1 vs 1.0 share a dict slot but str() differently
        return b"".join(_encode_one(value) for value in values)
    encodings = {value: _encode_one(value) for value in distinct}
    return b"".join(map(encodings.__getitem__, values))


class ProfileCache:
    """LRU cache of per-column embeddings and value-hash sets.

    Thread-safe: profiling fans columns out over a worker pool, and all
    workers funnel through one cache instance.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def _get_or_compute(self, key: tuple, compute: Callable[[], Any]) -> Any:
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
        value = compute()
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return value

    def memo(self, key: tuple, compute: Callable[[], Any]) -> Any:
        """Public get-or-compute for externally fingerprinted artifacts.

        The streaming profiler keys its sketch-derived embeddings and
        hash sets by incremental column fingerprints through this hook —
        distinct key namespaces keep them apart from the batch entries,
        which are exact where the streaming ones are estimates.
        """
        return self._get_or_compute(key, compute)

    def _token_stats(self, column: Column, fingerprint: tuple) -> list:
        """Shared single-scan artifact behind embeddings and hash sets."""
        from repro.catalog.embeddings import _column_token_stats

        key = ("stats", *fingerprint)
        return self._get_or_compute(key, lambda: _column_token_stats(column))

    def embedding(self, column: Column, sample_cap: int | None = None) -> np.ndarray:
        """Cached :func:`repro.catalog.embeddings.column_embedding`."""
        from repro.catalog.embeddings import (
            EMBED_SAMPLE_CAP,
            _embedding_from_stats,
            column_embedding,
        )

        fingerprint = column_fingerprint(column)
        if sample_cap is not None and sample_cap != EMBED_SAMPLE_CAP:
            key = ("embedding", sample_cap, *fingerprint)
            return self._get_or_compute(
                key, lambda: column_embedding(column, sample_cap=sample_cap)
            )
        key = ("embedding", EMBED_SAMPLE_CAP, *fingerprint)
        return self._get_or_compute(
            key,
            lambda: _embedding_from_stats(self._token_stats(column, fingerprint)),
        )

    def hash_set(self, column: Column, sample_cap: int | None = None) -> set[int]:
        """Cached :func:`repro.catalog.embeddings._value_hash_set`."""
        from repro.catalog.embeddings import (
            HASH_SAMPLE_CAP,
            _hash_set_from_stats,
            _value_hash_set,
        )

        fingerprint = column_fingerprint(column)
        if sample_cap is not None and sample_cap != HASH_SAMPLE_CAP:
            key = ("hash_set", sample_cap, *fingerprint)
            return self._get_or_compute(
                key, lambda: _value_hash_set(column, sample_cap=sample_cap)
            )
        key = ("hash_set", HASH_SAMPLE_CAP, *fingerprint)
        return self._get_or_compute(
            key,
            lambda: _hash_set_from_stats(self._token_stats(column, fingerprint)),
        )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __repr__(self) -> str:
        return (
            f"ProfileCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_default_cache = ProfileCache()


def get_default_cache() -> ProfileCache:
    """Process-wide cache used when callers do not supply their own."""
    return _default_cache


def clear_default_cache() -> None:
    _default_cache.clear()
