"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.semantics import dedupe_categories, normalize_category
from repro.llm.tokenizer import count_tokens
from repro.ml.metrics import accuracy_score, r2_score, roc_auc_score
from repro.ml.preprocessing import MinMaxScaler, OneHotEncoder, StandardScaler
from repro.table.column import Column
from repro.table.table import Table

# -- strategies -----------------------------------------------------------------

cell_values = st.one_of(
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(min_size=0, max_size=12),
    st.booleans(),
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


class TestColumnProperties:
    @given(st.lists(cell_values, max_size=60))
    def test_length_preserved(self, values):
        assert len(Column("c", values)) == len(values)

    @given(st.lists(cell_values, max_size=60))
    def test_missing_plus_present_is_total(self, values):
        col = Column("c", values)
        assert col.n_missing + len(col.non_missing()) == len(col)

    @given(st.lists(cell_values, max_size=60))
    def test_unique_has_no_duplicates(self, values):
        uniques = Column("c", values).unique()
        assert len(uniques) == len(set(map(str, uniques)))

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_numeric_roundtrip(self, values):
        col = Column("c", values, kind="numeric")
        assert col.to_list() == pytest.approx(values)

    @given(st.lists(cell_values, min_size=1, max_size=40))
    def test_take_reverses(self, values):
        col = Column("c", values)
        reversed_col = col.take(list(range(len(values) - 1, -1, -1)))
        assert reversed_col.to_list() == col.to_list()[::-1]


class TestTableProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=40),
           st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40))
    def test_filter_then_count(self, nums, cats):
        n = min(len(nums), len(cats))
        t = Table.from_dict({"x": nums[:n], "c": cats[:n]})
        kept = t.filter(lambda row: row["c"] == "a")
        assert kept.n_rows == sum(1 for c in cats[:n] if c == "a")

    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_concat_rows_length_additive(self, values):
        t = Table.from_dict({"x": values})
        assert t.concat_rows(t).n_rows == 2 * len(values)

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    def test_roundtrip_through_rows(self, values):
        t = Table.from_dict({"x": values})
        assert Table.from_rows(t.to_rows()) == t


class TestMetricProperties:
    @given(st.lists(st.sampled_from(["a", "b"]), min_size=2, max_size=50))
    def test_accuracy_self_is_one(self, labels):
        assert accuracy_score(labels, labels) == 1.0

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_r2_self_is_one(self, values):
        assert r2_score(values, values) == 1.0

    @given(st.lists(st.tuples(st.booleans(), st.floats(0, 1, allow_nan=False)),
                    min_size=4, max_size=60))
    def test_auc_in_unit_interval(self, pairs):
        y = [int(b) for b, _ in pairs]
        scores = [s for _, s in pairs]
        auc = roc_auc_score(y, scores)
        assert 0.0 <= auc <= 1.0

    @given(st.lists(st.tuples(st.booleans(), st.floats(0, 1, allow_nan=False)),
                    min_size=4, max_size=60))
    def test_auc_complement_symmetry(self, pairs):
        y = [int(b) for b, _ in pairs]
        if len(set(y)) < 2:
            return
        scores = np.array([s for _, s in pairs])
        a = roc_auc_score(y, scores)
        b = roc_auc_score(y, -scores)  # exact order reversal, ties preserved
        assert a + b == pytest.approx(1.0, abs=1e-9)


class TestScalerProperties:
    @given(st.lists(finite_floats, min_size=3, max_size=50))
    def test_standard_scaler_output_stats(self, values):
        X = np.asarray(values).reshape(-1, 1)
        out = StandardScaler().fit_transform(X)
        if np.std(values) > 1e-9:
            assert abs(out.mean()) < 1e-6
            assert abs(out.std() - 1.0) < 1e-6

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_minmax_scaler_bounds(self, values):
        X = np.asarray(values).reshape(-1, 1)
        out = MinMaxScaler().fit_transform(X)
        assert out.min() >= -1e-9
        assert out.max() <= 1.0 + 1e-9

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=50))
    def test_onehot_row_sums(self, values):
        X = np.asarray(values, dtype=object).reshape(-1, 1)
        out = OneHotEncoder().fit_transform(X)
        assert (out.sum(axis=1) == 1.0).all()


class TestSemanticsProperties:
    @given(st.text(min_size=1, max_size=20))
    def test_normalize_idempotent(self, value):
        once = normalize_category(value)
        assert normalize_category(once) == once

    def test_normalize_idempotent_regression_0_underscore(self):
        # historical falsifying example: '0_' -> '0' -> 'No' when the
        # synonym lookup ran only before punctuation canonicalization
        once = normalize_category("0_")
        assert normalize_category(once) == once

    @given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=25))
    def test_dedupe_covers_all_inputs(self, values):
        mapping = dedupe_categories(values)
        assert set(mapping) == set(values)

    @given(st.text(max_size=300))
    def test_token_count_non_negative_and_bounded(self, text):
        tokens = count_tokens(text)
        assert 0 <= tokens <= max(1, 2 * len(text))


class TestSplitProperties:
    @settings(max_examples=25)
    @given(st.integers(min_value=10, max_value=200),
           st.integers(min_value=0, max_value=10_000))
    def test_train_test_split_partition(self, n, seed):
        from repro.ml.model_selection import train_test_split

        X = np.arange(n)
        train, test = train_test_split(X, test_size=0.3, random_state=seed)
        combined = sorted(np.concatenate([train, test]).tolist())
        assert combined == list(range(n))

    @settings(max_examples=25)
    @given(st.integers(min_value=12, max_value=100),
           st.integers(min_value=2, max_value=4))
    def test_kfold_partition(self, n, k):
        from repro.ml.model_selection import KFold

        seen = []
        for _train, test in KFold(k, random_state=0).split(n):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(n))
