"""The deterministic, offline LLM used throughout the reproduction.

``MockLLM`` consumes the same structured prompts CatDB builds for real
models (a human-readable prompt carrying one machine-readable payload
block) and answers them:

- ``pipeline`` tasks return runnable pipeline code between ``<CODE>`` tags
  (possibly corrupted with a fault drawn from the model profile's error
  distribution);
- ``error_fix`` tasks attempt a repair with the profile's repair skill;
- ``feature_type`` / ``dedupe`` tasks answer catalog-refinement questions
  through the deterministic semantic layer;
- ``caafe_features`` tasks emit feature-engineering snippets for the CAAFE
  baseline.

Prompts that exceed the profile's context limit lose schema entries and
(rule-following degrades first) their rules — reproducing the paper's
Figure 10(c) observation that very large prompts cause ignored rules.
"""

from __future__ import annotations

import json
import re
from typing import Any, Sequence

from repro.llm import semantics
from repro.llm.base import ChatMessage, LLMClient, LLMResponse, record_llm_call
from repro.obs.trace import get_tracer
from repro.llm.codegen import generate_pipeline_code
from repro.llm.faults import choose_error_type, inject_fault, repair_code, should_fail
from repro.llm.profiles import LLMProfile, get_profile
from repro.llm.rand import stable_hash
from repro.llm.tokenizer import count_tokens

__all__ = ["MockLLM", "PAYLOAD_OPEN", "PAYLOAD_CLOSE", "extract_payload", "embed_payload"]

PAYLOAD_OPEN = "<CATDB-PAYLOAD>"
PAYLOAD_CLOSE = "</CATDB-PAYLOAD>"

_PAYLOAD_RE = re.compile(
    re.escape(PAYLOAD_OPEN) + r"(.*?)" + re.escape(PAYLOAD_CLOSE), re.DOTALL
)


def embed_payload(payload: dict[str, Any]) -> str:
    """Serialize the machine-readable payload block for a prompt."""
    return f"{PAYLOAD_OPEN}\n{json.dumps(payload, default=str)}\n{PAYLOAD_CLOSE}"


def extract_payload(text: str) -> dict[str, Any] | None:
    """Parse the payload block out of a prompt, if present."""
    match = _PAYLOAD_RE.search(text)
    if match is None:
        return None
    return json.loads(match.group(1))


class MockLLM(LLMClient):
    """Deterministic simulated chat model.

    Parameters
    ----------
    model:
        Profile name or alias: ``gpt-4o``, ``gemini-1.5``, ``llama3.1-70b``.
    seed:
        Base seed mixed into every stochastic decision.
    fault_injection:
        Disable to always produce clean code (useful in tests).
    """

    def __init__(
        self,
        model: str = "gpt-4o",
        seed: int = 0,
        fault_injection: bool = True,
        error_rate_multiplier: float = 1.0,
    ) -> None:
        super().__init__()
        self.profile: LLMProfile = get_profile(model)
        self.model = self.profile.name
        self.seed = seed
        self.fault_injection = fault_injection
        # stress knob for error-trace collection (the paper's trace dataset
        # was gathered over an extended development period with far more
        # failures than a single polished run produces)
        self.error_rate_multiplier = error_rate_multiplier

    # -- public API ---------------------------------------------------------------

    def complete(self, messages: Sequence[ChatMessage] | str) -> LLMResponse:
        with get_tracer().span("llm.call", model=self.model) as span:
            messages = self._coerce_messages(messages)
            prompt_text = "\n\n".join(m.content for m in messages)
            prompt_tokens = count_tokens(prompt_text)
            payload = extract_payload(prompt_text)
            if payload is None:
                content = self._freeform_answer(prompt_text)
                metadata: dict[str, Any] = {"task": "freeform"}
            else:
                content, metadata = self._dispatch(payload, prompt_tokens)
            completion_tokens = count_tokens(content)
            metadata["latency_seconds"] = round(
                (prompt_tokens + completion_tokens)
                / 1000.0
                * self.profile.seconds_per_1k_tokens,
                4,
            )
            self.usage.add(prompt_tokens, completion_tokens)
            response = LLMResponse(
                content=content,
                prompt_tokens=prompt_tokens,
                completion_tokens=completion_tokens,
                model=self.model,
                metadata=metadata,
            )
            span.set(
                task=metadata.get("task", ""),
                prompt_tokens=prompt_tokens,
                completion_tokens=completion_tokens,
                latency_seconds=metadata["latency_seconds"],
            )
            if metadata.get("fault"):
                span.set(fault=metadata["fault"])
            record_llm_call(response)
            return response

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(
        self, payload: dict[str, Any], prompt_tokens: int
    ) -> tuple[str, dict[str, Any]]:
        task = payload.get("task", "pipeline")
        if task == "pipeline":
            return self._pipeline_answer(payload, prompt_tokens)
        if task == "error_fix":
            return self._error_fix_answer(payload)
        if task == "feature_type":
            return self._feature_type_answer(payload)
        if task == "dedupe":
            return self._dedupe_answer(payload)
        if task == "caafe_features":
            return self._caafe_answer(payload)
        return self._freeform_answer(json.dumps(payload)), {"task": task}

    # -- pipeline generation ----------------------------------------------------------

    def _pipeline_answer(
        self, payload: dict[str, Any], prompt_tokens: int
    ) -> tuple[str, dict[str, Any]]:
        payload = self._apply_context_limit(payload, prompt_tokens)
        iteration = int(payload.get("iteration", 0))
        salt = stable_hash(self.seed, iteration, payload.get("dataset", {}).get("name"))
        code = generate_pipeline_code(payload, self.profile, salt=salt)
        metadata: dict[str, Any] = {"task": "pipeline", "fault": None}
        rate_multiplier = self._guidance_multiplier(payload) * self.error_rate_multiplier
        if self.fault_injection and should_fail(
            self.profile, salt, rate_multiplier=rate_multiplier
        ):
            error_type = choose_error_type(self.profile, salt)
            code = inject_fault(code, error_type, salt=salt)
            metadata["fault"] = error_type.name
        return f"<CODE>\n{code}\n</CODE>", metadata

    @staticmethod
    def _guidance_multiplier(payload: dict[str, Any]) -> float:
        """How strongly the prompt grounds the model.

        Dataset-specific rules plus per-column metadata (missing ratios,
        categorical values) reduce hallucination; bare schema-only prompts
        raise it.  Calibrated so CatDB prompts land below the profile's
        base rate while AIDE/AutoGen-style prompts land above it.
        """
        multiplier = 1.0
        if not payload.get("rules"):
            multiplier *= 1.7
        schema = payload.get("schema", [])
        has_rich = any(
            "missing_percentage" in entry or "categorical_values" in entry
            for entry in schema
        )
        if has_rich:
            multiplier *= 0.75
        else:
            multiplier *= 1.2
        return multiplier

    def _apply_context_limit(
        self, payload: dict[str, Any], prompt_tokens: int
    ) -> dict[str, Any]:
        if prompt_tokens <= self.profile.context_limit:
            return payload
        schema = list(payload.get("schema", []))
        # keep the head of the schema proportional to the window that fits
        keep = max(5, int(len(schema) * self.profile.context_limit / prompt_tokens))
        truncated = dict(payload)
        truncated["schema"] = schema[:keep]
        truncated["rules"] = []  # over-long prompts lose rule-following first
        return truncated

    # -- error repair -------------------------------------------------------------------

    def _error_fix_answer(self, payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        code = payload.get("code", "")
        error = payload.get("error", {})
        error_type = error.get("type", "no_convergence")
        attempt = int(payload.get("attempt", 0))
        salt = stable_hash(self.seed, "fix", error_type, attempt, len(code))
        succeeded = (
            stable_hash("fix?", self.profile.name, salt) % 10_000
            < self.profile.repair_skill * 10_000
        )
        metadata = {"task": "error_fix", "repaired": False}
        if succeeded:
            fixed = repair_code(
                code,
                error_type,
                payload=payload.get("summary"),
                profile=self.profile,
                salt=salt,
            )
            if fixed is not None:
                metadata["repaired"] = True
                return f"<CODE>\n{fixed}\n</CODE>", metadata
        # failed repair: the model apologises and returns the code unchanged
        return f"<CODE>\n{code}\n</CODE>", metadata

    # -- catalog refinement -----------------------------------------------------------------

    def _feature_type_answer(self, payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        name = payload.get("column", "")
        samples = payload.get("samples", [])
        feature_type, details = semantics.infer_semantic_feature_type(name, samples)
        answer: dict[str, Any] = {"column": name, "feature_type": feature_type}
        if "delimiter" in details:
            answer["delimiter"] = details["delimiter"]
        if "composite" in details:
            answer["parts"] = list(details["composite"].parts)
        return json.dumps(answer), {"task": "feature_type"}

    def _dedupe_answer(self, payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        values = payload.get("values", [])
        mapping = semantics.dedupe_categories(values)
        return json.dumps({str(k): v for k, v in mapping.items()}), {"task": "dedupe"}

    # -- CAAFE-style feature engineering --------------------------------------------------------

    def _caafe_answer(self, payload: dict[str, Any]) -> tuple[str, dict[str, Any]]:
        schema = payload.get("schema", [])
        numeric = [
            e["name"] for e in schema
            if e.get("data_type") == "number" and e.get("feature_type") != "Categorical"
        ][:4]
        lines = [
            "# CAAFE feature engineering step",
            "def engineer_features(table):",
            '    """Add LLM-proposed derived features to the table."""',
            "    from repro.table import Column",
            "    import numpy as np",
        ]
        added = False
        for i in range(len(numeric) - 1):
            a, b = numeric[i], numeric[i + 1]
            lines.append(f"    if {a!r} in table and {b!r} in table:")
            lines.append(
                f"        _a = table[{a!r}].astype_numeric().numeric_values()"
            )
            lines.append(
                f"        _b = table[{b!r}].astype_numeric().numeric_values()"
            )
            lines.append(
                f"        table.set_column(Column({'%s_x_%s' % (a, b)!r}, _a * _b))"
            )
            added = True
        if not added:
            lines.append("    pass")
        lines.append("    return table")
        return "<CODE>\n" + "\n".join(lines) + "\n</CODE>", {"task": "caafe_features"}

    # -- fallback ----------------------------------------------------------------------------

    def _freeform_answer(self, prompt_text: str) -> str:
        head = prompt_text.strip().split("\n", 1)[0][:120]
        return (
            "I can help with that. Based on the request "
            f"({head!r}), here is a concise answer derived from the provided context."
        )
